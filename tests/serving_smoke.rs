//! Smoke test of the `reproduce serving` harness path: the same sweep the
//! binary runs with `--smoke`, checked end to end (this is what
//! `scripts/ci.sh` exercises through the binary as well).

use glp4nn_bench::serving::{glp4nn_dominates, serving_rates, serving_sweep, SERVING_MODES};

#[test]
fn smoke_sweep_is_deterministic_and_glp4nn_dominates() {
    let rows = serving_sweep(true);

    // 3 evaluation devices x 1 smoke rate, every backend at each point.
    assert_eq!(rows.len(), 3);
    let devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    assert!(devices.contains(&"Tesla K40C"));
    assert!(devices.contains(&"Tesla P100"));
    assert!(devices.contains(&"Titan XP"));

    for row in &rows {
        assert_eq!(row.reports.len(), SERVING_MODES.len());
        for (name, report) in &row.reports {
            assert!(report.completed > 0, "{name} served nothing");
            assert_eq!(report.completed + report.shed, 40);
            assert!(report.throughput_rps > 0.0);
            assert!(report.latency.p50_ns <= report.latency.p99_ns);
        }
    }

    // The acceptance property of the serving experiment.
    assert!(glp4nn_dominates(&rows));

    // Determinism: a second sweep reproduces every simulated number.
    let again = serving_sweep(true);
    for (a, b) in rows.iter().zip(&again) {
        for ((_, ra), (_, rb)) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.makespan_ns, rb.makespan_ns);
            assert_eq!(ra.latency, rb.latency);
            assert_eq!(ra.throughput_rps.to_bits(), rb.throughput_rps.to_bits());
        }
    }

    // The full (non-smoke) sweep covers >= 3 arrival rates.
    assert!(serving_rates(false).len() >= 3);
}
