//! End-to-end checks of the Fig. 6 workflow: profile → parse → analyze →
//! stream-pool dispatch, including the overhead accounting the paper
//! reports in Fig. 10 and Table 6.

use glp4nn::{CostBook, ExecMode, Phase};
use gpu_sim::DeviceProps;
use nn::models;
use nn::{DispatchMode, ExecCtx, Net};

fn forward_timing_only(ctx: &mut ExecCtx, spec: &nn::NetSpec) -> u64 {
    let mut net = Net::from_spec(spec);
    ctx.take_timings();
    net.forward(ctx);
    ctx.take_timings().iter().map(|t| t.elapsed_ns).sum()
}

#[test]
fn first_iteration_profiles_then_concurrent_kernels_run() {
    let spec = models::cifar10_quick(32, 1);
    let mut ctx = ExecCtx::glp4nn(DeviceProps::k40c()).timing_only();
    let mut net = Net::from_spec(&spec);

    net.forward(&mut ctx);
    let first = ctx.take_timings();
    let conv_first: Vec<_> = first
        .iter()
        .filter(|t| t.layer.starts_with("conv"))
        .collect();
    assert_eq!(conv_first.len(), 3);
    assert!(conv_first.iter().all(|t| t.mode == ExecMode::Profiling));

    net.forward(&mut ctx);
    let second = ctx.take_timings();
    let conv_second: Vec<_> = second
        .iter()
        .filter(|t| t.layer.starts_with("conv"))
        .collect();
    assert!(conv_second
        .iter()
        .all(|t| matches!(t.mode, ExecMode::Concurrent { .. })));

    // Concurrent conv execution is no slower overall.
    let t1: u64 = conv_first.iter().map(|t| t.elapsed_ns).sum();
    let t2: u64 = conv_second.iter().map(|t| t.elapsed_ns).sum();
    assert!(
        t2 <= t1,
        "steady-state convs should not be slower: {t2} vs {t1}"
    );
}

#[test]
fn overhead_report_matches_paper_structure() {
    let spec = models::cifar10_quick(16, 3);
    let mut ctx = ExecCtx::glp4nn(DeviceProps::p100()).timing_only();
    let mut net = Net::from_spec(&spec);
    net.forward(&mut ctx); // profiling iteration
    let glp = ctx.glp.as_ref().unwrap();
    let report = glp.cost_report(0);

    // Forward profiled 3 conv layers × 16 samples × 3 kernels.
    assert_eq!(report.kernels_recorded, 3 * 16 * 3);
    assert!(report.t_p.as_nanos() > 0, "T_p measured");
    assert!(report.t_a.as_nanos() > 0, "T_a measured");
    // Fig. 10: mem_cupti dominates mem_tt + mem_K.
    assert!(report.mem_cupti_bytes > report.mem_tt_bytes + report.mem_k_bytes);
    // Eq. 11: mem_tt = 16 bytes per kernel.
    assert_eq!(report.mem_tt_bytes, report.kernels_recorded * 16);

    // Table 6 ratio: after a few training iterations the one-time overhead
    // is far below the paper's 0.1% bound target shape (we just require
    // that the book computes a finite, small ratio).
    let mut book = CostBook::new();
    for _ in 0..5 {
        net.forward(&mut ctx);
        book.add_iteration(ctx.take_timings().iter().map(|t| t.elapsed_ns).sum());
    }
    let ratio = book.overhead_ratio(&report).unwrap();
    assert!(ratio.is_finite() && ratio > 0.0);
}

#[test]
fn plans_are_cached_per_layer_and_phase() {
    let spec = models::cifar10_quick(16, 5);
    let mut ctx = ExecCtx::glp4nn(DeviceProps::titan_xp()).timing_only();
    let mut net = Net::from_spec(&spec);
    net.forward(&mut ctx);
    net.backward(&mut ctx);
    let glp = ctx.glp.as_ref().unwrap();
    for layer in ["conv1", "conv2", "conv3"] {
        let f = glp.plan_for(
            0,
            &glp4nn::LayerKey::forward("CIFAR10", layer).with_chunks(16),
        );
        let b = glp4nn::LayerKey {
            net: "CIFAR10".into(),
            layer: layer.into(),
            phase: Phase::Backward,
            chunks: 16,
        };
        assert!(f.is_some(), "forward plan for {layer}");
        assert!(glp.plan_for(0, &b).is_some(), "backward plan for {layer}");
        let plan = f.unwrap();
        assert!(plan.streams >= 1);
        assert!(plan.streams <= DeviceProps::titan_xp().concurrency_degree());
    }
}

#[test]
fn fixed_stream_sweep_brackets_glp4nn_choice() {
    // The analytical model should land in the right ballpark: its steady
    // state must beat 1 stream on a conv-heavy forward pass.
    let spec = models::cifar10_quick(32, 9);

    let naive = {
        let mut ctx = ExecCtx::with_mode(DeviceProps::k40c(), DispatchMode::Naive).timing_only();
        forward_timing_only(&mut ctx, &spec)
    };
    let glp = {
        let mut ctx = ExecCtx::glp4nn(DeviceProps::k40c()).timing_only();
        let mut net = Net::from_spec(&spec);
        net.forward(&mut ctx); // profile
        ctx.take_timings();
        net.forward(&mut ctx); // steady state
        ctx.take_timings().iter().map(|t| t.elapsed_ns).sum::<u64>()
    };
    assert!(
        glp < naive,
        "GLP4NN steady state {glp} must beat naive {naive}"
    );
}

#[test]
fn googlenet_and_caffenet_run_timing_only() {
    for (spec, dev) in [
        (models::googlenet_subset(8, 1), DeviceProps::p100()),
        (models::caffenet(8, 1), DeviceProps::p100()),
    ] {
        let mut ctx = ExecCtx::glp4nn(dev).timing_only();
        let mut net = Net::from_spec(&spec);
        net.forward(&mut ctx);
        net.backward(&mut ctx);
        net.forward(&mut ctx);
        let timings = ctx.take_timings();
        assert!(!timings.is_empty());
        assert!(
            timings
                .iter()
                .any(|t| matches!(t.mode, ExecMode::Concurrent { .. })),
            "{}: some layer must reach concurrent dispatch",
            spec.name
        );
    }
}
