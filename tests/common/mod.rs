//! Helpers shared by the root integration-test binaries (pulled in via
//! `#[path = "common/mod.rs"] mod common;` — `autotests = false` keeps
//! this file from becoming a test binary of its own).

pub mod counting_alloc;
