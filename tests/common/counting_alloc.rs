//! A counting global allocator for allocation-budget assertions.
//!
//! Install it in the test binary's root —
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: common::counting_alloc::CountingAlloc =
//!     common::counting_alloc::CountingAlloc;
//! ```
//!
//! — then bracket the code under measurement with [`start`]/[`stop`].
//! Counting is off by default, so test-harness setup does not pollute
//! the counter; binaries using it should still keep the measured tests
//! in their own test binary for isolation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A `#[global_allocator]` that counts `alloc`/`realloc` calls while
/// armed via [`start`], delegating all actual work to [`System`].
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Zero the counter and start counting allocations.
pub fn start() {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
}

/// Stop counting and return the number of `alloc`/`realloc` calls since
/// [`start`].
pub fn stop() -> u64 {
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}
