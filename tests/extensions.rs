//! Integration tests for the paper's §6 future-work features implemented
//! in this reproduction: kernel fusion/reordering, dataflow dependency
//! graphs, and data-parallel multi-GPU training.

use glp4nn::{ExecMode, Glp4nn, KernelGraph, LayerKey, OptimConfig};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};
use nn::data::SyntheticDataset;
use nn::models;
use nn::solver::MomentumKind;
use nn::{DataParallelTrainer, ExecCtx, Net, SolverConfig};
use tensor::Blob;

fn small_kernel(name: &str, tag: u64) -> KernelDesc {
    KernelDesc::new(
        name,
        LaunchConfig::new(Dim3::linear(6), Dim3::linear(128), 24, 0),
        KernelCost::new(5.0e4, 2.0e4),
    )
    .with_tag(tag)
}

fn small_groups(n: u64) -> Vec<Vec<KernelDesc>> {
    (0..n)
        .map(|i| {
            vec![
                small_kernel("im2col", i),
                small_kernel("sgemm", i),
                small_kernel("gemmk", i),
            ]
        })
        .collect()
}

#[test]
fn fusion_reduces_launches_and_time_for_small_kernels() {
    let run = |optim: OptimConfig| -> (u64, usize) {
        let mut dev = Device::new(DeviceProps::k40c());
        let mut glp = Glp4nn::with_optim(1, optim);
        glp.register_device(0, dev.props());
        let key = LayerKey::forward("net", "tiny");
        glp.execute(&mut dev, 0, &key, small_groups(16)); // profile
        let before = dev.trace().len();
        let r = glp.execute(&mut dev, 0, &key, small_groups(16));
        (r.elapsed_ns, dev.trace().len() - before)
    };
    let (base_ns, base_launches) = run(OptimConfig::default());
    let (fused_ns, fused_launches) = run(OptimConfig {
        fusion: true,
        ..OptimConfig::default()
    });
    assert!(
        fused_launches < base_launches,
        "fusion must reduce launches: {fused_launches} vs {base_launches}"
    );
    assert!(
        fused_ns < base_ns,
        "launch-bound groups must get faster: {fused_ns} vs {base_ns}"
    );
}

#[test]
fn fusion_does_not_change_training_math() {
    let train = |optim: OptimConfig| -> Vec<u32> {
        let mut ctx = ExecCtx::glp4nn_with(DeviceProps::p100(), optim);
        let net = Net::from_spec(&models::cifar10_quick(8, 21));
        let mut solver = nn::Solver::new(net, SolverConfig::default());
        let ds = SyntheticDataset::cifar_like(21);
        (0..3)
            .map(|it| {
                let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
                let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
                ds.fill_batch(it * 8, &mut data, &mut label);
                *solver.net.blob_mut("data") = data;
                *solver.net.blob_mut("label") = label;
                solver.step(&mut ctx).to_bits()
            })
            .collect()
    };
    assert_eq!(
        train(OptimConfig::default()),
        train(OptimConfig::all()),
        "fusion/reordering only reschedule simulated kernels; math is unchanged"
    );
}

#[test]
fn graph_execution_profiles_then_accelerates() {
    let mut dev = Device::new(DeviceProps::p100());
    let mut glp = Glp4nn::new(1);
    glp.register_device(0, dev.props());
    let key = LayerKey::forward("net", "inception");

    // An inception-like fan-out/fan-in DAG: input -> 4 branches -> concat.
    let build = || {
        let mut g = KernelGraph::new();
        let stem = g
            .add(
                KernelDesc::new(
                    "stem",
                    LaunchConfig::new(Dim3::linear(20), Dim3::linear(256), 32, 4096),
                    KernelCost::new(8.0e6, 5.0e5),
                ),
                &[],
            )
            .unwrap();
        let branches: Vec<usize> = (0..4)
            .map(|b| {
                let chain = g
                    .add_chain(
                        vec![
                            KernelDesc::new(
                                "reduce1x1",
                                LaunchConfig::new(Dim3::linear(10), Dim3::linear(128), 32, 0),
                                KernelCost::new(3.0e6, 2.0e5),
                            )
                            .with_tag(b),
                            KernelDesc::new(
                                "conv3x3",
                                LaunchConfig::new(Dim3::linear(12), Dim3::linear(256), 64, 16384),
                                KernelCost::new(2.0e7, 8.0e5),
                            )
                            .with_tag(b),
                        ],
                        &[stem],
                    )
                    .unwrap();
                *chain.last().unwrap()
            })
            .collect();
        g.add(
            KernelDesc::new(
                "concat",
                LaunchConfig::new(Dim3::linear(8), Dim3::linear(128), 16, 0),
                KernelCost::new(1.0e5, 4.0e5),
            ),
            &branches,
        )
        .unwrap();
        g
    };

    let r1 = glp.execute_graph(&mut dev, 0, &key, &build());
    assert_eq!(r1.mode, ExecMode::Profiling);
    let r2 = glp.execute_graph(&mut dev, 0, &key, &build());
    assert!(matches!(r2.mode, ExecMode::Concurrent { .. }));
    assert!(
        r2.elapsed_ns < r1.elapsed_ns,
        "independent branches must overlap: {} vs {}",
        r2.elapsed_ns,
        r1.elapsed_ns
    );

    // Dependencies held: concat after every branch, branches after stem.
    let trace = dev.trace();
    let find = |name: &str, tag: u64| {
        trace
            .iter()
            .rev()
            .find(|t| t.name == name && t.tag == tag)
            .unwrap()
    };
    let stem_end = find("stem", 0).end_ns;
    let concat_start = find("concat", 0).start_ns;
    for b in 0..4u64 {
        let reduce = find("reduce1x1", b);
        let conv = find("conv3x3", b);
        assert!(reduce.start_ns >= stem_end, "branch {b} starts after stem");
        assert!(conv.start_ns >= reduce.end_ns, "chain order in branch {b}");
        assert!(concat_start >= conv.end_ns, "concat waits for branch {b}");
    }
}

#[test]
fn data_parallel_losses_independent_of_replica_count() {
    let ds = SyntheticDataset::cifar_like(5);
    let global = 16usize;
    let run = |gpus: usize| -> Vec<f32> {
        let per = global / gpus;
        let spec = models::cifar10_quick(per, 3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &vec![DeviceProps::p100(); gpus],
            false,
            SolverConfig {
                base_lr: 0.01,
                momentum: 0.9,
                momentum_kind: MomentumKind::Classical,
                weight_decay: 0.0,
                policy: nn::LrPolicy::Fixed,
            },
        );
        (0..3)
            .map(|it| {
                for r in 0..gpus {
                    let net = dp.replica_net(r);
                    let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
                    let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
                    ds.fill_batch(it * global + r * per, &mut data, &mut label);
                    *net.blob_mut("data") = data;
                    *net.blob_mut("label") = label;
                }
                dp.step().loss
            })
            .collect()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    for i in 0..3 {
        assert!((one[i] - two[i]).abs() < 2e-3, "1 vs 2 GPUs at iter {i}");
        assert!((one[i] - four[i]).abs() < 2e-3, "1 vs 4 GPUs at iter {i}");
    }
}
