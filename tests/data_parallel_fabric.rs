//! End-to-end multi-GPU data parallelism over the simulated fabric: real
//! gradients ride a real (simulated) ring all-reduce, communication
//! overlaps backward compute, the whole schedule passes the per-device
//! *and* cross-device sanitizers, and the collective layer's traffic
//! matches the analytic ring bound.

use collective::{Bucket, RingComm};
use gpu_sim::{Device, DeviceProps, Fabric, LinkProps};
use nn::data::SyntheticDataset;
use nn::models;
use nn::{DataParallelTrainer, DispatchMode, Net, SolverConfig};
use sanitizer::SanitizeMode;
use tensor::Blob;

fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
    let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
    let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
    ds.fill_batch(start, &mut data, &mut label);
    *net.blob_mut("data") = data;
    *net.blob_mut("label") = label;
}

/// Four replicas, overlap on, full sanitizing: training converges, the
/// replicas stay identical, communication is real fabric traffic, and
/// neither the per-device nor the merged cross-device checker objects.
#[test]
fn overlapped_training_is_clean_and_converges() {
    let batch = 8;
    let ds = SyntheticDataset::cifar_like(23);
    let spec = models::cifar10_quick(batch, 5);
    let devices = vec![DeviceProps::p100(); 4];
    let mut dp = DataParallelTrainer::new(&spec, &devices, false, SolverConfig::default())
        .with_link(LinkProps::nvlink())
        .with_dispatch(DispatchMode::FixedStreams(4))
        .with_overlap(true)
        .sanitize(SanitizeMode::Full);

    // Fixed sub-batches (replica r always sees the same samples): the
    // loss on the same data must fall monotonically enough to compare
    // endpoints, without fresh-sample noise.
    let mut first = None;
    let mut last = None;
    for _ in 0..6 {
        for r in 0..4 {
            fill(dp.replica_net(r), &ds, r * batch);
        }
        let rep = dp.step();
        assert!(rep.comm_ns > 0, "4 replicas must produce fabric traffic");
        assert!(rep.wall_ns > 0);
        first.get_or_insert(rep.loss);
        last = Some(rep.loss);
    }
    assert!(
        last.unwrap() < first.unwrap(),
        "loss must fall: {:?} -> {:?}",
        first,
        last
    );
    assert_eq!(
        dp.diagnostics(),
        vec![],
        "sanitizers must be silent on the overlapped schedule"
    );

    // Replicas remain bitwise identical after every synchronous step.
    let w0 = dp.replica_net(0).state_dict();
    for r in 1..4 {
        assert_eq!(w0, dp.replica_net(r).state_dict(), "replica {r} diverged");
    }

    // Per-replica observability: all four devices did comparable work.
    let stats = dp.device_stats();
    assert_eq!(stats.len(), 4);
    assert!(stats.iter().all(|s| s.kernels_completed > 0));
    let tl = dp.merged_timeline();
    assert!(!tl.is_empty());
}

/// The trainer's communication volume matches the collective layer run
/// standalone: 2(R-1) segment copies per device, R(R-1) fold kernels.
#[test]
fn trainer_traffic_matches_ring_bound() {
    let r = 3usize;
    let mut devices: Vec<Device> = (0..r).map(|_| Device::new(DeviceProps::p100())).collect();
    let mut fabric = Fabric::ring(r, LinkProps::pcie3());
    let mut devs: Vec<&mut Device> = devices.iter_mut().collect();
    let mut comm = RingComm::new(&mut devs);
    let rep = comm
        .all_reduce(&mut fabric, &mut devs, &Bucket::new("g", 12 * 1024))
        .unwrap();
    fabric.run(&mut devs);
    assert_eq!(rep.copies.len(), 2 * r * (r - 1));
    assert_eq!(rep.reduce_kernels as usize, r * (r - 1));
    assert!(rep.span(&fabric).is_some());
}
