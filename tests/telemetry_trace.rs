//! Golden-file and structural tests for the Chrome-trace export.
//!
//! The exported trace for a fixed (net, mode, seed) workload must be
//! **byte-stable**: all span timestamps come from the simulated clock,
//! registries are ordered, and flow ids are sequential — so the same
//! workload always serializes to the same bytes. The golden file lives at
//! `tests/golden/cifar10_glp4nn.trace.json`; regenerate it with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p integration --test telemetry_trace
//! ```
//!
//! after an intentional trace-format or instrumentation change, and
//! review the diff like any other code change.

use glp4nn_bench::trace::{trace_multi_gpu, trace_net, trace_net_with_stats};
use nn::DispatchMode;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/cifar10_glp4nn.trace.json")
}

/// The fixed workload the golden file pins: CIFAR10, GLP4NN dispatch,
/// smoke-sized batch, two iterations (profiled first, replayed second).
fn golden_trace() -> (telemetry::Telemetry, gpu_sim::DeviceStats) {
    trace_net_with_stats("CIFAR10", DispatchMode::Glp4nn, true)
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let (t, _) = golden_trace();
    let json = t.chrome_trace();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); run with UPDATE_GOLDEN=1 to create",
            path.display()
        )
    });
    assert!(
        json == golden,
        "exported trace diverged from {} — if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn export_is_byte_stable_across_runs() {
    let a = trace_net("CIFAR10", DispatchMode::Glp4nn, true).chrome_trace();
    let b = trace_net("CIFAR10", DispatchMode::Glp4nn, true).chrome_trace();
    assert!(a == b, "two identical runs exported different bytes");
}

#[test]
fn golden_trace_is_valid_and_strictly_nested() {
    let (t, _) = golden_trace();
    let json = t.chrome_trace();
    let summary = telemetry::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("structural validation failed: {e}"));
    assert_eq!(
        summary.spans,
        t.spans().len(),
        "every span exports one B/E pair"
    );
    assert_eq!(summary.instants, t.instants().len());
    assert_eq!(summary.flows, t.flows().len());
    assert!(
        summary.tracks >= 2,
        "expected at least a stream track and the host track"
    );
}

#[test]
fn kernel_span_total_reconciles_with_device_stats() {
    let (t, stats) = golden_trace();
    assert_eq!(
        t.span_time_ns(0, "kernel"),
        stats.total_kernel_time_ns,
        "sum of kernel span durations must equal DeviceStats::total_kernel_time_ns"
    );
    assert_eq!(
        t.spans().iter().filter(|s| s.cat == "kernel").count(),
        stats.kernels_completed,
        "one kernel span per completed kernel"
    );
    assert_eq!(
        t.metrics().counter("gpu.kernels_completed"),
        stats.kernels_completed as u64
    );
}

#[test]
fn all_reproduce_trace_outputs_validate() {
    // The same net x mode matrix the `reproduce trace --smoke` subcommand
    // emits, plus the multi-GPU overlap run — every export must pass the
    // structural validator (balanced, strictly nested B/E per track;
    // paired flow halves).
    for mode in [
        DispatchMode::Naive,
        DispatchMode::FixedStreams(8),
        DispatchMode::Glp4nn,
    ] {
        for net in ["CIFAR10", "Siamese"] {
            let t = trace_net(net, mode, true);
            let json = t.chrome_trace();
            telemetry::validate_chrome_trace(&json)
                .unwrap_or_else(|e| panic!("{net}/{mode:?}: {e}"));
        }
    }
    let t = trace_multi_gpu(true);
    let summary = telemetry::validate_chrome_trace(&t.chrome_trace())
        .unwrap_or_else(|e| panic!("multi-gpu: {e}"));
    assert_eq!(
        summary.flows,
        t.flows().len(),
        "P2P flow arrows survive export"
    );
    assert!(summary.flows > 0, "multi-GPU run must emit P2P flow arrows");
}
