//! Capture-once / replay-many equivalence (the ExecPlan IR contract).
//!
//! Replaying a frozen execution plan must be *observationally identical*
//! to the imperative dispatch loop it replaced: same simulated timeline
//! (every kernel's start/end timestamp, stream, and name) and bitwise
//! identical tensor outputs. The imperative baseline is plan reuse turned
//! off — each iteration then re-captures its schedule from scratch, which
//! is exactly what the old per-iteration loops did.
//!
//! Also proves the cache key is honest: batch size, chunk count, dispatch
//! mode, device, and `OptimConfig` each force a re-capture, while an
//! unchanged key replays without capturing (asserted with the
//! capture-count probes).

use glp4nn::analyzer::KernelAnalyzer;
use glp4nn::scheduler::RuntimeScheduler;
use glp4nn::streams::StreamManager;
use glp4nn::tracker::ResourceTracker;
use glp4nn::{LayerKey, OptimConfig, Phase};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};
use nn::data::SyntheticDataset;
use nn::{models, DispatchMode, ExecCtx, Net, Solver, SolverConfig};
use proptest::prelude::*;
use tensor::Blob;

/// A kernel's observable execution record.
type TraceRow = (String, u64, u32, u64, u64);

fn timeline(dev: &Device) -> Vec<TraceRow> {
    dev.trace()
        .iter()
        .map(|t| (t.name.clone(), t.tag, t.stream.raw(), t.start_ns, t.end_ns))
        .collect()
}

fn arb_device() -> impl Strategy<Value = DeviceProps> {
    prop::sample::select(vec![
        DeviceProps::k40c(),
        DeviceProps::p100(),
        DeviceProps::titan_xp(),
    ])
}

/// Random layer shapes: `n` independent chains of 1-3 kernels with varied
/// geometry (the per-sample groups of a conv-like layer).
fn arb_groups() -> impl Strategy<Value = Vec<Vec<KernelDesc>>> {
    (1usize..10, 1usize..4, 1u32..48, 1u32..9, 0u32..3).prop_map(
        |(n, chain, blocks, warps, smem_sel)| {
            (0..n as u64)
                .map(|i| {
                    (0..chain)
                        .map(|c| {
                            KernelDesc::new(
                                &format!("k{c}"),
                                LaunchConfig::new(
                                    Dim3::linear(blocks + c as u32),
                                    Dim3::linear(warps * 32),
                                    32,
                                    [0u32, 2048, 8192][smem_sel as usize],
                                ),
                                KernelCost::new(1.0e5 * (c as f64 + 1.0), 5.0e4),
                            )
                            .with_tag(i)
                        })
                        .collect()
                })
                .collect()
        },
    )
}

fn mode_ctx(props: DeviceProps, mode: DispatchMode) -> ExecCtx {
    match mode {
        DispatchMode::Glp4nn => ExecCtx::glp4nn(props),
        m => ExecCtx::with_mode(props, m),
    }
    .timing_only()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random layer shapes on every device preset and every dispatch
    /// mode, N iterations through the plan cache produce the identical
    /// simulated timeline to N iterations of fresh-capture-per-iteration
    /// (the imperative baseline).
    #[test]
    fn replay_timeline_matches_imperative(
        props in arb_device(),
        groups in arb_groups(),
    ) {
        for mode in [
            DispatchMode::Naive,
            DispatchMode::FixedStreams(4),
            DispatchMode::Glp4nn,
        ] {
            let mut replayed = mode_ctx(props.clone(), mode);
            let mut imperative = mode_ctx(props.clone(), mode).without_plan_reuse();
            for ctx in [&mut replayed, &mut imperative] {
                ctx.net_name = "propnet".to_string();
                ctx.batch = groups.len();
                for _ in 0..3 {
                    ctx.dispatch_groups("layer", Phase::Forward, groups.clone());
                }
            }
            prop_assert_eq!(
                timeline(&replayed.device),
                timeline(&imperative.device),
                "timelines diverge under {:?}",
                mode
            );
        }
    }
}

/// Training with plan reuse produces bitwise identical losses and
/// parameters to training with per-iteration capture, for every dispatch
/// mode — replay changes scheduling cost, never results.
#[test]
fn replayed_training_is_bitwise_identical() {
    let batch = 4;
    let iters = 3;
    let run = |mode: DispatchMode, reuse: bool| -> (Vec<u32>, Vec<u32>) {
        let mut ctx = mode_ctx(DeviceProps::p100(), mode);
        ctx.compute = true;
        if !reuse {
            ctx = ctx.without_plan_reuse();
        }
        let net = Net::from_spec(&models::cifar10_quick(batch, 42));
        let mut solver = Solver::new(net, SolverConfig::default());
        let ds = SyntheticDataset::cifar_like(42);
        let mut losses = Vec::new();
        for it in 0..iters {
            let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
            ds.fill_batch(it * batch, &mut data, &mut label);
            *solver.net.blob_mut("data") = data;
            *solver.net.blob_mut("label") = label;
            losses.push(solver.step(&mut ctx).to_bits());
        }
        let params: Vec<u32> = solver
            .net
            .params_mut()
            .iter()
            .flat_map(|p| p.data().iter().map(|v| v.to_bits()))
            .collect();
        (losses, params)
    };
    for mode in [
        DispatchMode::Naive,
        DispatchMode::FixedStreams(8),
        DispatchMode::Glp4nn,
    ] {
        let (replay_losses, replay_params) = run(mode, true);
        let (imp_losses, imp_params) = run(mode, false);
        assert_eq!(replay_losses, imp_losses, "losses diverge under {mode:?}");
        assert_eq!(replay_params, imp_params, "params diverge under {mode:?}");
    }
}

fn small_groups(n: u64) -> Vec<Vec<KernelDesc>> {
    (0..n)
        .map(|i| {
            vec![KernelDesc::new(
                "sgemm",
                LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 32, 2048),
                KernelCost::new(2.0e6, 1.0e5),
            )
            .with_tag(i)]
        })
        .collect()
}

/// The ExecCtx-level cache key: same (layer, phase, batch, chunks, mode)
/// replays; changing batch size, chunk count, or dispatch mode misses and
/// re-captures.
#[test]
fn ctx_plan_cache_keys_on_batch_chunks_and_mode() {
    let mut ctx =
        ExecCtx::with_mode(DeviceProps::p100(), DispatchMode::FixedStreams(4)).timing_only();
    ctx.net_name = "net".to_string();
    ctx.batch = 8;
    ctx.dispatch_groups("conv1", Phase::Forward, small_groups(8));
    assert_eq!(ctx.plan_captures(), 1, "first sight captures");
    ctx.dispatch_groups("conv1", Phase::Forward, small_groups(8));
    assert_eq!(ctx.plan_captures(), 1, "same key must hit");
    ctx.batch = 16;
    ctx.dispatch_groups("conv1", Phase::Forward, small_groups(8));
    assert_eq!(ctx.plan_captures(), 2, "batch-size change must miss");
    ctx.dispatch_groups("conv1", Phase::Forward, small_groups(4));
    assert_eq!(ctx.plan_captures(), 3, "chunk-count change must miss");
    ctx.mode = DispatchMode::Naive;
    ctx.dispatch_groups("conv1", Phase::Forward, small_groups(4));
    assert_eq!(ctx.plan_captures(), 4, "dispatch-mode change must miss");
    ctx.dispatch_groups("conv1", Phase::Backward, small_groups(4));
    assert_eq!(ctx.plan_captures(), 5, "phase change must miss");
    ctx.dispatch_groups("conv1", Phase::Backward, small_groups(4));
    assert_eq!(ctx.plan_captures(), 5, "warm key must keep hitting");
}

/// The scheduler-level cache key: the optimizer configuration is part of
/// it (fusion/reordering change the captured schedule), and each device's
/// analyzer caches privately.
#[test]
fn scheduler_plan_cache_keys_on_optim_and_device() {
    let props = DeviceProps::k40c();
    let mut dev = Device::new(props.clone());
    let tracker = ResourceTracker::new(1);
    let mut analyzer = KernelAnalyzer::new(props.clone());
    let streams = StreamManager::new(1);
    let key = LayerKey::forward("net", "conv1").with_chunks(8);

    let mut plain = RuntimeScheduler::with_optim(0, OptimConfig::default());
    let mut tuned = RuntimeScheduler::with_optim(0, OptimConfig::all());

    let exec = |s: &mut RuntimeScheduler, dev: &mut Device, an: &mut KernelAnalyzer| {
        s.execute(dev, &tracker, an, &streams, &key, small_groups(8), None)
            .unwrap()
    };

    exec(&mut plain, &mut dev, &mut analyzer); // profiling, no capture
    assert_eq!((analyzer.captures(), analyzer.solves()), (0, 1));
    exec(&mut plain, &mut dev, &mut analyzer); // capture + replay
    assert_eq!((analyzer.captures(), analyzer.solves()), (1, 1));
    exec(&mut plain, &mut dev, &mut analyzer); // pure replay
    exec(&mut plain, &mut dev, &mut analyzer);
    assert_eq!(
        (analyzer.captures(), analyzer.solves()),
        (1, 1),
        "steady state must not re-capture or re-solve"
    );

    // Same analyzer, different optimizer config: the concurrency plan is
    // shared but the execution plan must be re-captured.
    exec(&mut tuned, &mut dev, &mut analyzer);
    assert_eq!(
        (analyzer.captures(), analyzer.solves()),
        (2, 1),
        "OptimConfig change must miss the exec-plan cache"
    );

    // A different device gets a private analyzer (and its own stream
    // pool), so nothing is shared.
    let mut dev2 = Device::new(DeviceProps::titan_xp());
    let mut analyzer2 = KernelAnalyzer::new(DeviceProps::titan_xp());
    let streams2 = StreamManager::new(1);
    let exec2 = |s: &mut RuntimeScheduler, dev: &mut Device, an: &mut KernelAnalyzer| {
        s.execute(dev, &tracker, an, &streams2, &key, small_groups(8), None)
            .unwrap()
    };
    exec2(&mut plain, &mut dev2, &mut analyzer2);
    exec2(&mut plain, &mut dev2, &mut analyzer2);
    assert_eq!(
        (analyzer2.captures(), analyzer2.solves()),
        (1, 1),
        "new device must profile and capture afresh"
    );
    assert_eq!(
        (analyzer.captures(), analyzer.solves()),
        (2, 1),
        "first device's cache is untouched"
    );
}
