//! End-to-end schedule sanitizing of the paper's four networks.
//!
//! Two properties, checked per model at several batch sizes:
//! - the GLP4NN batch-split path declares pairwise-disjoint chunk output
//!   regions (the premise of convergence invariance), and
//! - a full training iteration under every dispatch mode survives both
//!   static plan validation and dynamic happens-before replay with zero
//!   diagnostics.
//!
//! `SanitizerStats` counters prove the checks actually ran rather than
//! silently skipping undeclared kernels.

use glp4nn_bench::{iteration_timings, net_spec_with_batch};
use gpu_sim::DeviceProps;
use nn::{DispatchMode, ExecCtx, Net};
use sanitizer::SanitizeMode;

const MODELS: [&str; 4] = ["CIFAR10", "Siamese", "CaffeNet", "GoogLeNet"];

fn sanitized_iteration(net: &str, batch: usize, mode: DispatchMode) -> ExecCtx {
    sanitized_iteration_with(net, batch, mode, false)
}

fn sanitized_iteration_with(
    net: &str,
    batch: usize,
    mode: DispatchMode,
    force_pairwise: bool,
) -> ExecCtx {
    let mut ctx = match mode {
        DispatchMode::Glp4nn => ExecCtx::glp4nn(DeviceProps::p100()),
        m => ExecCtx::with_mode(DeviceProps::p100(), m),
    }
    .timing_only()
    .sanitize(SanitizeMode::Full);
    ctx.sanitizer.set_force_pairwise(force_pairwise);
    let mut net_obj = Net::from_spec(&net_spec_with_batch(net, batch, 1));
    // Two iterations so GLP4NN reaches concurrent steady state (the first
    // profiles on the default stream).
    for _ in 0..2 {
        iteration_timings(&mut ctx, &mut net_obj);
    }
    ctx
}

#[test]
fn glp4nn_batch_split_regions_are_disjoint_for_all_models() {
    for net in MODELS {
        for batch in [2usize, 4, 8] {
            let ctx = sanitized_iteration(net, batch, DispatchMode::Glp4nn);
            let stats = ctx.sanitizer.stats();
            // Chunk disjointness is now established by symbolic certificates
            // (once per site, covering every chunk) with pairwise comparison
            // as the fallback; either counter proves the check ran.
            assert!(
                stats.symbolic_chunks + stats.chunk_pairs > 0,
                "{net}@{batch}: no chunks verified — layers stopped declaring accesses?"
            );
            assert!(
                stats.certified_captures > 0,
                "{net}@{batch}: no capture admitted by a symbolic certificate"
            );
            let overlaps: Vec<_> = ctx
                .sanitizer
                .reports()
                .iter()
                .filter(|d| d.kind == sanitizer::DiagnosticKind::OverlappingChunkRegions)
                .collect();
            assert!(
                overlaps.is_empty(),
                "{net}@{batch}: chunk regions overlap: {overlaps:?}"
            );
        }
    }
}

#[test]
fn full_iteration_is_race_free_under_every_dispatch_mode() {
    for net in MODELS {
        for mode in [
            DispatchMode::Naive,
            DispatchMode::FixedStreams(8),
            DispatchMode::Glp4nn,
        ] {
            let ctx = sanitized_iteration(net, 4, mode);
            let stats = ctx.sanitizer.stats();
            assert!(
                stats.plans_checked > 0 && stats.trace_kernels > 0,
                "{net} under {mode:?}: sanitizer did not run ({stats:?})"
            );
            assert!(
                ctx.sanitizer.reports().is_empty(),
                "{net} under {mode:?}: {:?}",
                ctx.sanitizer.reports()
            );
        }
    }
}

#[test]
fn larger_batches_scale_the_checked_pairs() {
    // Under the forced-pairwise baseline, chunk pairs grow quadratically
    // with the batch: a quick sanity check that per-sample declarations
    // track the batch size.
    let small = sanitized_iteration_with("CIFAR10", 2, DispatchMode::Glp4nn, true)
        .sanitizer
        .stats();
    let large = sanitized_iteration_with("CIFAR10", 8, DispatchMode::Glp4nn, true)
        .sanitizer
        .stats();
    assert!(
        large.chunk_pairs > small.chunk_pairs * 4,
        "chunk pairs: batch 8 = {} vs batch 2 = {}",
        large.chunk_pairs,
        small.chunk_pairs
    );
    // The symbolic path stays off in this baseline arm.
    assert_eq!(large.symbolic_chunks, 0);
}
