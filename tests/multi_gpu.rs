//! Multi-GPU architecture checks: "GLP4NN supports multiple GPUs on the
//! same machine. Each GPU device is assigned with a private kernel
//! analyzer and runtime scheduler, and all GPUs in the same machine share
//! a public resource tracker and stream manager" (paper §3.1).

use glp4nn::{Glp4nn, LayerKey};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

fn groups(n: u64, flops: f64) -> Vec<Vec<KernelDesc>> {
    (0..n)
        .map(|i| {
            vec![
                KernelDesc::new(
                    "im2col",
                    LaunchConfig::new(Dim3::linear(12), Dim3::linear(128), 33, 0),
                    KernelCost::new(flops / 10.0, flops / 40.0),
                )
                .with_tag(i),
                KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::linear(20), Dim3::linear(256), 64, 8192),
                    KernelCost::new(flops, flops / 4.0),
                )
                .with_tag(i),
            ]
        })
        .collect()
}

#[test]
fn two_gpus_profile_and_accelerate_independently() {
    let mut glp = Glp4nn::new(2);
    let mut k40 = Device::new(DeviceProps::k40c());
    let mut p100 = Device::new(DeviceProps::p100());
    glp.register_device(0, k40.props());
    glp.register_device(1, p100.props());
    let key = LayerKey::forward("net", "conv2");

    // Profile both.
    glp.execute(&mut k40, 0, &key, groups(16, 4.0e6));
    glp.execute(&mut p100, 1, &key, groups(16, 4.0e6));
    let plan_k40 = glp.plan_for(0, &key).expect("k40 plan");
    let plan_p100 = glp.plan_for(1, &key).expect("p100 plan");

    // Steady state beats naive serial time on both devices.
    let r_k40 = glp.execute(&mut k40, 0, &key, groups(16, 4.0e6));
    let r_p100 = glp.execute(&mut p100, 1, &key, groups(16, 4.0e6));
    assert!(matches!(r_k40.mode, glp4nn::ExecMode::Concurrent { .. }));
    assert!(matches!(r_p100.mode, glp4nn::ExecMode::Concurrent { .. }));

    // Pools were created on the right devices: pool size per GPU matches
    // the private analyzer's plan.
    assert_eq!(
        glp.stream_manager().pool_size(0).unwrap(),
        plan_k40.streams as usize
    );
    assert_eq!(
        glp.stream_manager().pool_size(1).unwrap(),
        plan_p100.streams as usize
    );
}

#[test]
fn shared_tracker_keeps_per_gpu_overheads_separate() {
    let mut glp = Glp4nn::new(2);
    let mut d0 = Device::new(DeviceProps::titan_xp());
    let mut d1 = Device::new(DeviceProps::titan_xp());
    glp.register_device(0, d0.props());
    glp.register_device(1, d1.props());

    glp.execute(&mut d0, 0, &LayerKey::forward("net", "a"), groups(4, 1.0e6));
    glp.execute(
        &mut d1,
        1,
        &LayerKey::forward("net", "b"),
        groups(10, 1.0e6),
    );

    let c0 = glp.cost_report(0);
    let c1 = glp.cost_report(1);
    assert_eq!(c0.kernels_recorded, 8);
    assert_eq!(c1.kernels_recorded, 20);
}

#[test]
fn per_gpu_plans_differ_across_device_generations() {
    // Observation 2 of the paper: the optimal stream count is
    // device-dependent. The same layer profiled on K40C and P100 may get
    // different plans; at minimum both are valid and within each device's
    // concurrency degree.
    let mut glp = Glp4nn::new(2);
    let mut k40 = Device::new(DeviceProps::k40c());
    let mut p100 = Device::new(DeviceProps::p100());
    glp.register_device(0, k40.props());
    glp.register_device(1, p100.props());
    let key = LayerKey::forward("net", "conv1");
    glp.execute(&mut k40, 0, &key, groups(8, 2.0e7));
    glp.execute(&mut p100, 1, &key, groups(8, 2.0e7));
    let pk = glp.plan_for(0, &key).unwrap();
    let pp = glp.plan_for(1, &key).unwrap();
    assert!(pk.streams <= DeviceProps::k40c().concurrency_degree());
    assert!(pp.streams <= DeviceProps::p100().concurrency_degree());
    assert!(pk.streams >= 1 && pp.streams >= 1);
}
