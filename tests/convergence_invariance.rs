//! The paper's central correctness claim (§3.3.1): GLP4NN is
//! **convergence-invariant** — it "neither changes the computation inside a
//! kernel nor breaks kernel dependencies. Thus, no network parameters will
//! be changed and the convergence rate will keep invariant between the
//! original and GLP4NN-based implementation."
//!
//! These tests verify the claim end-to-end, and more strongly than the
//! paper's empirical Fig. 11: training with GLP4NN produces **bitwise
//! identical** losses and parameters to naive training.

use gpu_sim::DeviceProps;
use nn::data::SyntheticDataset;
use nn::models;
use nn::{ExecCtx, Net, Solver, SolverConfig};
use tensor::Blob;

fn train_losses(mut ctx: ExecCtx, iters: usize, batch: usize) -> (Vec<u32>, Vec<u32>) {
    let net = Net::from_spec(&models::cifar10_quick(batch, 42));
    let mut solver = Solver::new(net, SolverConfig::default());
    let ds = SyntheticDataset::cifar_like(42);
    let mut losses = Vec::new();
    for it in 0..iters {
        let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
        let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
        ds.fill_batch(it * batch, &mut data, &mut label);
        *solver.net.blob_mut("data") = data;
        *solver.net.blob_mut("label") = label;
        losses.push(solver.step(&mut ctx).to_bits());
    }
    let params: Vec<u32> = solver
        .net
        .params_mut()
        .iter()
        .flat_map(|p| p.data().iter().map(|v| v.to_bits()))
        .collect();
    (losses, params)
}

#[test]
fn glp4nn_training_is_bitwise_identical_to_naive() {
    let batch = 8;
    let iters = 5;
    let (naive_losses, naive_params) =
        train_losses(ExecCtx::naive(DeviceProps::p100()), iters, batch);
    let (glp_losses, glp_params) = train_losses(ExecCtx::glp4nn(DeviceProps::p100()), iters, batch);

    assert_eq!(
        naive_losses, glp_losses,
        "per-iteration losses must be bitwise identical"
    );
    assert_eq!(
        naive_params, glp_params,
        "final parameters must be bitwise identical"
    );
}

#[test]
fn losses_decrease_during_training() {
    let (losses, _) = train_losses(ExecCtx::naive(DeviceProps::p100()), 12, 16);
    let first = f32::from_bits(losses[0]);
    let last = f32::from_bits(*losses.last().unwrap());
    assert!(
        last < first,
        "synthetic CIFAR training must make progress: {first} -> {last}"
    );
}

#[test]
fn different_devices_do_not_change_math() {
    // Simulated hardware affects *time*, never *values*.
    let (k40, _) = train_losses(ExecCtx::naive(DeviceProps::k40c()), 3, 8);
    let (p100, _) = train_losses(ExecCtx::naive(DeviceProps::p100()), 3, 8);
    let (xp, _) = train_losses(ExecCtx::glp4nn(DeviceProps::titan_xp()), 3, 8);
    assert_eq!(k40, p100);
    assert_eq!(k40, xp);
}

#[test]
fn siamese_training_is_invariant_too() {
    let run = |mut ctx: ExecCtx| -> Vec<u32> {
        let net = Net::from_spec(&models::siamese(8, 7));
        let mut solver = Solver::new(net, SolverConfig::default());
        let ds = SyntheticDataset::mnist_like(7);
        let mut losses = Vec::new();
        for it in 0..3 {
            let mut a = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut b = std::mem::replace(solver.net.blob_mut("data_p"), Blob::empty());
            let mut s = std::mem::replace(solver.net.blob_mut("sim"), Blob::empty());
            ds.fill_pair_batch(it * 16, &mut a, &mut b, &mut s);
            *solver.net.blob_mut("data") = a;
            *solver.net.blob_mut("data_p") = b;
            *solver.net.blob_mut("sim") = s;
            losses.push(solver.step(&mut ctx).to_bits());
        }
        losses
    };
    assert_eq!(
        run(ExecCtx::naive(DeviceProps::p100())),
        run(ExecCtx::glp4nn(DeviceProps::p100()))
    );
}
