//! Shape checks for the paper's headline results: concurrent kernel
//! execution speeds up convolution layers (Figs. 2, 7), the effect
//! saturates/plateaus as stream counts grow (Fig. 4), and very short
//! layers may not benefit (the paper's CIFAR10-conv1 / Siamese-conv1
//! observation, Fig. 9 discussion).

use gpu_sim::DeviceProps;
use nn::layer::Layer;
use nn::layers::conv::{ConvConfig, ConvLayer};
use nn::{DispatchMode, ExecCtx};
use tensor::Blob;

/// Forward one conv layer in timing-only mode; return simulated ns.
fn time_conv(
    dev: DeviceProps,
    mode: DispatchMode,
    cfg: ConvConfig,
    batch: usize,
    ci: usize,
    hw: usize,
) -> u64 {
    let mut ctx = ExecCtx::with_mode(dev, mode).timing_only();
    let mut layer = ConvLayer::new("conv", cfg, 1);
    let bottom = Blob::nchw(batch, ci, hw, hw);
    let mut top = vec![Blob::empty()];
    layer.reshape(&[&bottom], &mut top);
    layer.forward(&mut ctx, &[&bottom], &mut top);
    ctx.take_timings()[0].elapsed_ns
}

/// CaffeNet conv2 (a mid-sized layer that benefits in the paper).
fn caffenet_conv2() -> (ConvConfig, usize, usize, usize) {
    (
        ConvConfig {
            num_output: 256,
            kernel: 5,
            stride: 1,
            pad: 2,
        },
        64, // reduced batch for test speed; per-sample kernels unchanged
        96,
        27,
    )
}

#[test]
fn multi_stream_speedup_exists_on_p100() {
    let (cfg, n, ci, hw) = caffenet_conv2();
    let t1 = time_conv(DeviceProps::p100(), DispatchMode::Naive, cfg, n, ci, hw);
    let t4 = time_conv(
        DeviceProps::p100(),
        DispatchMode::FixedStreams(4),
        cfg,
        n,
        ci,
        hw,
    );
    let speedup = t1 as f64 / t4 as f64;
    assert!(
        speedup > 1.2,
        "4 streams should clearly beat 1: speedup = {speedup:.2}"
    );
}

#[test]
fn speedup_saturates_with_many_streams() {
    let (cfg, n, ci, hw) = caffenet_conv2();
    let t1 = time_conv(DeviceProps::p100(), DispatchMode::Naive, cfg, n, ci, hw) as f64;
    let speedups: Vec<f64> = [2u32, 4, 8, 16, 32]
        .iter()
        .map(|&k| {
            t1 / time_conv(
                DeviceProps::p100(),
                DispatchMode::FixedStreams(k),
                cfg,
                n,
                ci,
                hw,
            ) as f64
        })
        .collect();
    // Monotone-ish rise then plateau: the gain from 16 -> 32 streams must
    // be much smaller than from 1 -> 4.
    let early_gain = speedups[1] - 1.0;
    let late_gain = (speedups[4] - speedups[3]).abs();
    assert!(
        late_gain < early_gain,
        "saturation expected: speedups = {speedups:?}"
    );
}

#[test]
fn speedup_varies_across_devices() {
    // Observation 2: the benefit profile differs between K40C and P100.
    // Compare the speedup curve over several stream counts on a layer
    // whose grid underfills the 56-SM P100 but not the 15-SM K40C
    // (CaffeNet conv3: 3x3 on 13x13).
    let cfg = ConvConfig {
        num_output: 384,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let curve = |dev: fn() -> DeviceProps| -> Vec<f64> {
        let t1 = time_conv(dev(), DispatchMode::Naive, cfg, 64, 256, 13) as f64;
        [2u32, 8, 16]
            .iter()
            .map(|&k| t1 / time_conv(dev(), DispatchMode::FixedStreams(k), cfg, 64, 256, 13) as f64)
            .collect()
    };
    let k40 = curve(DeviceProps::k40c);
    let p100 = curve(DeviceProps::p100);
    let max_gap = k40
        .iter()
        .zip(&p100)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_gap > 0.05,
        "device-dependent speedups expected: K40C {k40:?} vs P100 {p100:?}"
    );
}

#[test]
fn tiny_fast_layers_gain_little() {
    // Siamese conv1: 1 input channel on 28x28 — kernels finish in ~the
    // launch overhead, so extra streams buy little (paper Fig. 9).
    let tiny = ConvConfig {
        num_output: 20,
        kernel: 5,
        stride: 1,
        pad: 0,
    };
    let t1 = time_conv(DeviceProps::p100(), DispatchMode::Naive, tiny, 64, 1, 28) as f64;
    let t8 = time_conv(
        DeviceProps::p100(),
        DispatchMode::FixedStreams(8),
        tiny,
        64,
        1,
        28,
    ) as f64;
    let tiny_speedup = t1 / t8;

    let (cfg, n, ci, hw) = caffenet_conv2();
    let b1 = time_conv(DeviceProps::p100(), DispatchMode::Naive, cfg, n, ci, hw) as f64;
    let b8 = time_conv(
        DeviceProps::p100(),
        DispatchMode::FixedStreams(8),
        cfg,
        n,
        ci,
        hw,
    ) as f64;
    let big_speedup = b1 / b8;

    assert!(
        big_speedup > tiny_speedup,
        "large layers must benefit more: tiny {tiny_speedup:.2} vs big {big_speedup:.2}"
    );
}

#[test]
fn speedups_bounded_by_reasonable_limits() {
    // Speedups in the paper top out around 4-5x per layer; our simulator
    // should not produce absurd values (> 32x would indicate a bug).
    let (cfg, n, ci, hw) = caffenet_conv2();
    for k in [2u32, 8, 32] {
        let t1 = time_conv(DeviceProps::titan_xp(), DispatchMode::Naive, cfg, n, ci, hw) as f64;
        let tk = time_conv(
            DeviceProps::titan_xp(),
            DispatchMode::FixedStreams(k),
            cfg,
            n,
            ci,
            hw,
        ) as f64;
        let s = t1 / tk;
        assert!(s > 0.3 && s < 32.0, "speedup {s:.2} out of plausible range");
    }
}
