//! Allocation probe for the replay hot path.
//!
//! The acceptance bar for capture-once / replay-many: a warm replay's
//! issue loop performs no per-kernel heap allocation — kernel descriptors
//! are shared `Arc`s, round-robin plans need zero events, and the
//! device's internal queues are amortized. A counting global allocator
//! measures the issue phase of a warm replay and asserts the allocation
//! count stays below the kernel count (i.e. strictly sub-per-kernel; the
//! handful that remain are amortized `Vec` growth inside the simulator).
//!
//! Lives in its own test binary so other tests' allocations cannot
//! pollute the counter.

use glp4nn::{ExecMode, ExecPlan};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn groups(n: u64, chain: usize) -> Vec<Vec<KernelDesc>> {
    (0..n)
        .map(|i| {
            (0..chain)
                .map(|c| {
                    KernelDesc::new(
                        &format!("k{c}"),
                        LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 32, 2048),
                        KernelCost::new(1.0e6, 1.0e5),
                    )
                    .with_tag(i)
                })
                .collect()
        })
        .collect()
}

#[test]
fn warm_replay_issue_loop_is_sub_per_kernel_allocation() {
    let mut dev = Device::new(DeviceProps::p100());
    let pool: Vec<_> = (0..4).map(|_| dev.create_stream()).collect();
    let g = groups(16, 4); // 64 kernels per iteration
    let plan = ExecPlan::capture_round_robin(
        "alloc-probe",
        &g,
        &pool,
        ExecMode::Concurrent { streams: 4 },
    );
    assert_eq!(plan.num_kernels(), 64);

    // Warm up: two full replays grow every device-internal Vec past the
    // per-iteration watermark.
    plan.replay(&mut dev);
    plan.replay(&mut dev);

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    plan.issue(&mut dev);
    COUNTING.store(false, Ordering::SeqCst);
    let issue_allocs = ALLOCS.load(Ordering::SeqCst);
    dev.run();

    assert!(
        issue_allocs < plan.num_kernels() as u64,
        "warm replay issued {} kernels with {} allocations — \
         the issue loop must be sub-per-kernel",
        plan.num_kernels(),
        issue_allocs
    );
}

#[test]
fn replay_is_deterministic_across_repeats() {
    // The same frozen plan replayed on two fresh devices yields the same
    // elapsed time and the same number of launches — replay carries no
    // hidden state between iterations.
    let pool_of = |dev: &mut Device| -> Vec<_> { (0..3).map(|_| dev.create_stream()).collect() };
    let g = groups(9, 2);
    let mut d1 = Device::new(DeviceProps::k40c());
    let p1 = pool_of(&mut d1);
    let plan = ExecPlan::capture_round_robin("det", &g, &p1, ExecMode::Concurrent { streams: 3 });
    let r1 = plan.replay(&mut d1);
    let r2 = plan.replay(&mut d1);
    assert_eq!(r1.elapsed_ns, r2.elapsed_ns);
    assert_eq!(r1.kernels, r2.kernels);
    assert_eq!(dev_trace_len(&d1), 2 * plan.num_kernels());
}

fn dev_trace_len(dev: &Device) -> usize {
    dev.trace().len()
}
