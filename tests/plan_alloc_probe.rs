//! Allocation probe for the replay hot path.
//!
//! The acceptance bar for capture-once / replay-many: a warm replay's
//! issue loop performs no per-kernel heap allocation — kernel descriptors
//! are shared `Arc`s, round-robin plans need zero events, and the
//! device's internal queues are amortized. The shared counting allocator
//! (`tests/common/counting_alloc.rs`) measures the issue phase of a warm
//! replay and the tests assert the allocation count stays below the
//! kernel count (i.e. strictly sub-per-kernel; the handful that remain
//! are amortized `Vec` growth inside the simulator).
//!
//! Telemetry must not change that: with no recorder attached — including
//! after one was attached and detached again — the instrumentation is a
//! `None` check and the same sub-per-kernel bound holds.
//!
//! Lives in its own test binary so other tests' allocations cannot
//! pollute the counter.

#[path = "common/mod.rs"]
mod common;

use common::counting_alloc;
use glp4nn::{ExecMode, ExecPlan};
use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

#[global_allocator]
static ALLOCATOR: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

fn groups(n: u64, chain: usize) -> Vec<Vec<KernelDesc>> {
    (0..n)
        .map(|i| {
            (0..chain)
                .map(|c| {
                    KernelDesc::new(
                        &format!("k{c}"),
                        LaunchConfig::new(Dim3::linear(16), Dim3::linear(128), 32, 2048),
                        KernelCost::new(1.0e6, 1.0e5),
                    )
                    .with_tag(i)
                })
                .collect()
        })
        .collect()
}

/// Warm `plan` on `dev`, then measure the allocations of one issue pass.
fn warm_issue_allocs(plan: &ExecPlan, dev: &mut Device) -> u64 {
    // Warm up: two full replays grow every device-internal Vec past the
    // per-iteration watermark.
    plan.replay(dev);
    plan.replay(dev);

    counting_alloc::start();
    plan.issue(dev);
    let issue_allocs = counting_alloc::stop();
    dev.run();
    issue_allocs
}

#[test]
fn warm_replay_issue_loop_is_sub_per_kernel_allocation() {
    let mut dev = Device::new(DeviceProps::p100());
    let pool: Vec<_> = (0..4).map(|_| dev.create_stream()).collect();
    let g = groups(16, 4); // 64 kernels per iteration
    let plan = ExecPlan::capture_round_robin(
        "alloc-probe",
        &g,
        &pool,
        ExecMode::Concurrent { streams: 4 },
    );
    assert_eq!(plan.num_kernels(), 64);

    let issue_allocs = warm_issue_allocs(&plan, &mut dev);
    assert!(
        issue_allocs < plan.num_kernels() as u64,
        "warm replay issued {} kernels with {} allocations — \
         the issue loop must be sub-per-kernel",
        plan.num_kernels(),
        issue_allocs
    );
}

#[test]
fn telemetry_off_path_keeps_replay_sub_per_kernel() {
    // Attach a recorder (so spans really record), then detach — the
    // device must return to the zero-cost off-path: the warm issue loop
    // stays strictly sub-per-kernel, exactly as if telemetry had never
    // existed.
    let mut dev = Device::new(DeviceProps::p100());
    let pool: Vec<_> = (0..4).map(|_| dev.create_stream()).collect();
    let g = groups(16, 4);
    let plan = ExecPlan::capture_round_robin(
        "alloc-probe-tel",
        &g,
        &pool,
        ExecMode::Concurrent { streams: 4 },
    );

    let rec = telemetry::shared(telemetry::Telemetry::new());
    dev.set_telemetry(rec.clone(), 0);
    plan.replay(&mut dev);
    dev.clear_telemetry();
    let recorded = rec
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .spans()
        .len();
    assert!(
        recorded >= plan.num_kernels(),
        "recorder attached but only {recorded} spans recorded"
    );

    let issue_allocs = warm_issue_allocs(&plan, &mut dev);
    assert!(
        issue_allocs < plan.num_kernels() as u64,
        "telemetry-off warm replay issued {} kernels with {} allocations — \
         detaching the recorder must restore the sub-per-kernel issue loop",
        plan.num_kernels(),
        issue_allocs
    );
}

#[test]
fn replay_is_deterministic_across_repeats() {
    // The same frozen plan replayed on two fresh devices yields the same
    // elapsed time and the same number of launches — replay carries no
    // hidden state between iterations.
    let pool_of = |dev: &mut Device| -> Vec<_> { (0..3).map(|_| dev.create_stream()).collect() };
    let g = groups(9, 2);
    let mut d1 = Device::new(DeviceProps::k40c());
    let p1 = pool_of(&mut d1);
    let plan = ExecPlan::capture_round_robin("det", &g, &p1, ExecMode::Concurrent { streams: 3 });
    let r1 = plan.replay(&mut d1);
    let r2 = plan.replay(&mut d1);
    assert_eq!(r1.elapsed_ns, r2.elapsed_ns);
    assert_eq!(r1.kernels, r2.kernels);
    assert_eq!(dev_trace_len(&d1), 2 * plan.num_kernels());
}

fn dev_trace_len(dev: &Device) -> usize {
    dev.trace().len()
}
