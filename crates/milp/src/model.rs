//! Problem builder: variables, linear constraints, objective.
//!
//! Mirrors the subset of GLPK's problem-object API that GLP4NN's kernel
//! analyzer needs: named variables with bounds and an integrality marker,
//! `≤` / `≥` / `=` row constraints, and a linear objective with a sense.

use std::fmt;

/// Handle to a variable inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the model's column order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Whether a variable is continuous or must take an integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable (branched on by branch & bound).
    Integer,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a row constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A variable definition.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Continuous or integer.
    pub kind: VarKind,
    /// Lower bound (may be 0; negative lower bounds are rejected — the
    /// GLP4NN model never needs them and non-negativity keeps the simplex
    /// in standard form).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Objective coefficient.
    pub objective: f64,
}

/// A linear row constraint `Σ coeff_j · x_j  (≤|≥|=)  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Sparse list of `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// Relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The model is malformed (e.g. negative lower bound, NaN coefficient).
    Invalid(String),
    /// Branch & bound exceeded its node budget without proving optimality.
    NodeLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "problem is unbounded"),
            SolveError::Invalid(msg) => write!(f, "invalid model: {msg}"),
            SolveError::NodeLimit => write!(f, "branch & bound node limit exceeded"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A [`VarId`] that does not belong to the solved model (e.g. a handle
/// from a different [`Model`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarOutOfRange {
    /// The offending variable index.
    pub var: usize,
    /// Number of variables in the solution.
    pub num_vars: usize,
}

impl fmt::Display for VarOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "variable index {} out of range: solution has {} variable(s)",
            self.var, self.num_vars
        )
    }
}

impl std::error::Error for VarOutOfRange {}

/// An optimal (or LP-relaxation) assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value at the assignment.
    pub objective: f64,
    /// Per-variable values in column order.
    pub values: Vec<f64>,
}

impl Solution {
    /// Value assigned to `var`.
    ///
    /// # Panics
    /// Panics if `var` is not from the solved model; schedulers on hot
    /// paths should prefer [`try_value`](Self::try_value).
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Value of `var` rounded to the nearest integer (for integer vars).
    ///
    /// # Panics
    /// Panics if `var` is not from the solved model; schedulers on hot
    /// paths should prefer [`try_int_value`](Self::try_int_value).
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.0].round() as i64
    }

    /// Value assigned to `var`, rejecting foreign handles.
    pub fn try_value(&self, var: VarId) -> Result<f64, VarOutOfRange> {
        self.values.get(var.0).copied().ok_or(VarOutOfRange {
            var: var.0,
            num_vars: self.values.len(),
        })
    }

    /// Rounded integer value of `var`, rejecting foreign handles.
    pub fn try_int_value(&self, var: VarId) -> Result<i64, VarOutOfRange> {
        self.try_value(var).map(|v| v.round() as i64)
    }
}

/// A linear program / mixed-integer program under construction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    sense: Option<Sense>,
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Create an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense: Some(sense),
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense.unwrap_or(Sense::Maximize)
    }

    /// Add a variable; returns its handle.
    ///
    /// `lower` must be finite and non-negative; `upper ≥ lower` (may be
    /// `+∞`). `objective` is the variable's objective coefficient.
    pub fn add_var(
        &mut self,
        name: &str,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.vars.push(Variable {
            name: name.to_string(),
            kind,
            lower,
            upper,
            objective,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add a `Σ terms ≤ rhs` constraint.
    pub fn add_le_constraint(&mut self, name: &str, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(name, terms, Relation::Le, rhs);
    }

    /// Add a `Σ terms ≥ rhs` constraint.
    pub fn add_ge_constraint(&mut self, name: &str, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(name, terms, Relation::Ge, rhs);
    }

    /// Add a `Σ terms = rhs` constraint.
    pub fn add_eq_constraint(&mut self, name: &str, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(name, terms, Relation::Eq, rhs);
    }

    /// Add a constraint with an explicit relation.
    pub fn add_constraint(
        &mut self,
        name: &str,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.to_string(),
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of row constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable definitions in column order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Row constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Mutable access to a variable (used by branch & bound to tighten
    /// bounds on node subproblems).
    pub(crate) fn var_mut(&mut self, var: VarId) -> &mut Variable {
        &mut self.vars[var.0]
    }

    /// Evaluate the objective at `values`.
    pub fn objective_at(&self, values: &[f64]) -> f64 {
        self.vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Check that `values` satisfies every bound and constraint within
    /// tolerance `eps`.
    pub fn is_feasible(&self, values: &[f64], eps: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lower - eps || x > v.upper + eps {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > eps {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * values[v.0]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + eps,
                Relation::Ge => lhs >= c.rhs - eps,
                Relation::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Validate structural well-formedness; returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), SolveError> {
        for v in &self.vars {
            if !v.lower.is_finite() || v.lower < 0.0 {
                return Err(SolveError::Invalid(format!(
                    "variable {} must have a finite non-negative lower bound",
                    v.name
                )));
            }
            if v.upper < v.lower {
                return Err(SolveError::Invalid(format!(
                    "variable {} has upper bound below lower bound",
                    v.name
                )));
            }
            if !v.objective.is_finite() {
                return Err(SolveError::Invalid(format!(
                    "variable {} has non-finite objective coefficient",
                    v.name
                )));
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(SolveError::Invalid(format!(
                    "constraint {} has non-finite rhs",
                    c.name
                )));
            }
            for &(v, a) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(SolveError::Invalid(format!(
                        "constraint {} references unknown variable",
                        c.name
                    )));
                }
                if !a.is_finite() {
                    return Err(SolveError::Invalid(format!(
                        "constraint {} has non-finite coefficient",
                        c.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 5.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 2.0);
        m.add_le_constraint("c", &[(x, 1.0), (y, 3.0)], 9.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.vars()[0].name, "x");
        assert_eq!(m.constraints()[0].terms.len(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn objective_evaluation() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 3.0);
        let _y = m.add_var("y", VarKind::Continuous, 0.0, 10.0, -1.0);
        assert!((m.objective_at(&[2.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 5.0, 1.0);
        m.add_le_constraint("c", &[(x, 2.0)], 6.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[3.5], 1e-9)); // fractional integer var & row violated
        assert!(!m.is_feasible(&[6.0], 1e-9)); // above upper bound
        assert!(!m.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn ge_and_eq_relations() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_ge_constraint("lo", &[(x, 1.0)], 2.0);
        m.add_eq_constraint("eq", &[(x, 2.0)], 8.0);
        assert!(m.is_feasible(&[4.0], 1e-9));
        assert!(!m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[3.0], 1e-9));
    }

    #[test]
    fn validate_rejects_bad_models() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, -1.0, 5.0, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::Invalid(_))));
        m.var_mut(x).lower = 0.0;
        assert!(m.validate().is_ok());
        m.var_mut(x).upper = -2.0;
        assert!(matches!(m.validate(), Err(SolveError::Invalid(_))));
        m.var_mut(x).upper = 5.0;
        m.add_le_constraint("bad", &[(x, f64::NAN)], 1.0);
        assert!(matches!(m.validate(), Err(SolveError::Invalid(_))));
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert!(SolveError::Invalid("x".into()).to_string().contains("x"));
    }

    #[test]
    fn try_value_rejects_foreign_var_ids() {
        let sol = Solution {
            objective: 1.0,
            values: vec![2.0, 3.6],
        };
        assert_eq!(sol.try_value(VarId(1)), Ok(3.6));
        assert_eq!(sol.try_int_value(VarId(1)), Ok(4));
        let err = sol.try_value(VarId(5)).unwrap_err();
        assert_eq!(
            err,
            VarOutOfRange {
                var: 5,
                num_vars: 2
            }
        );
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
