#![warn(missing_docs)]

//! A small, self-contained mixed-integer linear programming (MILP) solver.
//!
//! GLP4NN's analytical model (paper §3.2) is "a kind of mixed integer linear
//! programming problem, which can be solved easily with many modern
//! well-optimized libraries" — the authors used the GNU Linear Programming
//! Kit (GLPK). GLPK is unavailable in this environment, so this crate is a
//! from-scratch substitute scoped to the class of problems the framework
//! produces: *small* (a handful of variables), *bounded*, maximization
//! problems with `≤` constraints and non-negative integer variables.
//!
//! The solver is nonetheless a real LP/MILP stack:
//!
//! - [`model::Model`] — a variable/constraint/objective builder in the style
//!   of GLPK's problem object.
//! - [`simplex`] — a dense two-phase primal simplex solving the LP
//!   relaxation.
//! - [`branch`] — branch & bound over fractional integer variables, using
//!   the simplex for node relaxations.
//! - [`enumerate`] — an exhaustive oracle for small bounded programs, used
//!   by the test-suite (and property tests) to validate branch & bound.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2`, integer `x, y ≥ 0`:
//!
//! ```
//! use milp::{Model, Sense, VarKind};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! m.add_le_constraint("cap", &[(x, 1.0), (y, 1.0)], 4.0);
//! m.add_le_constraint("xcap", &[(x, 1.0)], 2.0);
//! let sol = milp::solve(&m).unwrap();
//! assert_eq!(sol.value(x).round() as i64, 2);
//! assert_eq!(sol.value(y).round() as i64, 2);
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! ```

pub mod branch;
pub mod enumerate;
pub mod model;
pub mod simplex;

pub use branch::{solve, BranchStats};
pub use model::{Model, Sense, Solution, SolveError, VarId, VarKind, VarOutOfRange};
