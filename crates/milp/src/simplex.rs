//! Dense two-phase primal simplex for the LP relaxation.
//!
//! Problems are brought into standard computational form
//! `max c·x  s.t.  A·x {≤,≥,=} b,  0 ≤ x ≤ u` by:
//!
//! - shifting out non-zero lower bounds (`x = x' + l`),
//! - turning finite upper bounds into explicit `x' ≤ u - l` rows
//!   (problems here have at most a dozen columns, so the simplicity of
//!   explicit rows beats a bounded-variable simplex),
//! - adding one slack/surplus per row and artificial variables where the
//!   canonical basis is not readily available (`≥`, `=` rows, negative rhs),
//! - running phase I to drive artificials to zero, then phase II on the
//!   true objective.
//!
//! Bland's rule is used for pivot selection, which guarantees termination
//! (no cycling) at the cost of speed — irrelevant at this scale.

use crate::model::{Model, Relation, Sense, Solution, SolveError};

const EPS: f64 = 1e-9;

/// Solve the LP relaxation of `model` (integrality ignored).
///
/// Returns the optimal solution of the relaxation, or
/// [`SolveError::Infeasible`] / [`SolveError::Unbounded`].
pub fn solve_relaxation(model: &Model) -> Result<Solution, SolveError> {
    model.validate()?;
    if model.num_vars() == 0 {
        return Ok(Solution {
            objective: 0.0,
            values: vec![],
        });
    }

    let n = model.num_vars();
    // Shift lower bounds: x_j = y_j + l_j with y_j >= 0.
    let lowers: Vec<f64> = model.vars().iter().map(|v| v.lower).collect();

    // Collect rows: model constraints with rhs adjusted for the shift,
    // plus upper-bound rows.
    struct Row {
        coeffs: Vec<f64>, // dense over the n structural columns
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for c in model.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for &(v, a) in &c.terms {
            coeffs[v.index()] += a;
            shift += a * lowers[v.index()];
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    for (j, v) in model.vars().iter().enumerate() {
        if v.upper.is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            rows.push(Row {
                coeffs,
                relation: Relation::Le,
                rhs: v.upper - v.lower,
            });
        }
    }

    // Normalize to non-negative rhs by flipping rows.
    for r in &mut rows {
        if r.rhs < 0.0 {
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.relation = match r.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural (n)] [slack/surplus (m, some unused)] [artificial (<=m)].
    // We build the full tableau with an objective row at the end.
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    for r in &rows {
        match r.relation {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Relation::Eq => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    // tableau[m][total+1]; last column is rhs.
    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(num_art);

    let mut s_idx = n;
    let mut a_idx = n + num_slack;
    for (i, r) in rows.iter().enumerate() {
        t[i][..n].copy_from_slice(&r.coeffs);
        t[i][total] = r.rhs;
        match r.relation {
            Relation::Le => {
                t[i][s_idx] = 1.0;
                basis[i] = s_idx;
                s_idx += 1;
            }
            Relation::Ge => {
                t[i][s_idx] = -1.0; // surplus
                s_idx += 1;
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
            Relation::Eq => {
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                art_cols.push(a_idx);
                a_idx += 1;
            }
        }
    }

    // Objective coefficients for phase II (always expressed as maximize).
    let sign = match model.sense() {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut obj = vec![0.0f64; total];
    for (j, v) in model.vars().iter().enumerate() {
        obj[j] = sign * v.objective;
    }

    // Phase I: minimize sum of artificials == maximize -(sum of artificials).
    if !art_cols.is_empty() {
        let mut p1 = vec![0.0f64; total];
        for &c in &art_cols {
            p1[c] = -1.0;
        }
        let val = run_simplex(&mut t, &mut basis, &p1, total)?;
        if val < -1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Pivot any artificial still (degenerately) in the basis out, if possible.
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                if let Some(j) = (0..n + num_slack).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j);
                }
            }
        }
        // Forbid artificials from re-entering: zero their columns.
        for &c in &art_cols {
            for row in t.iter_mut() {
                row[c] = 0.0;
            }
        }
    }

    // Phase II.
    let val = run_simplex(&mut t, &mut basis, &obj, total)?;

    // Extract structural values and undo the lower-bound shift.
    let mut values = lowers;
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] += t[i][total];
        }
    }
    // Clean tiny numerical noise.
    for x in &mut values {
        if x.abs() < EPS {
            *x = 0.0;
        }
    }
    let _ = val;
    Ok(Solution {
        objective: model.objective_at(&values),
        values,
    })
}

/// Run primal simplex iterations on an already-canonical tableau with basis
/// `basis` and (maximization) objective `obj`. Returns the objective value.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &[f64],
    total: usize,
) -> Result<f64, SolveError> {
    let m = t.len();
    // Guard: pathological cycling is prevented by Bland's rule, but cap
    // iterations as defense in depth.
    let max_iter = 200 * (total + m + 10);
    for _ in 0..max_iter {
        // Reduced costs: r_j = obj_j - c_B · B^-1 A_j (tableau is kept in
        // canonical form so c_B·(column) is computable directly).
        let mut entering = None;
        for j in 0..total {
            if basis.contains(&j) {
                continue;
            }
            let mut r = obj[j];
            for i in 0..m {
                r -= obj[basis[i]] * t[i][j];
            }
            if r > EPS {
                entering = Some(j); // Bland: first improving column
                break;
            }
        }
        let Some(j) = entering else {
            let mut val = 0.0;
            for i in 0..m {
                val += obj[basis[i]] * t[i][total];
            }
            return Ok(val);
        };
        // Ratio test (Bland: smallest basis index breaks ties).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][total] / t[i][j];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || ((ratio - lr).abs() <= EPS && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i, _)) = leave else {
            return Err(SolveError::Unbounded);
        };
        pivot(t, basis, i, j);
    }
    Err(SolveError::Invalid(
        "simplex iteration limit exceeded".to_string(),
    ))
}

/// Gauss-Jordan pivot on tableau element `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let m = t.len();
    let width = t[0].len();
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
    for v in t[row].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i != row {
            let f = t[i][col];
            if f.abs() > EPS {
                // Indexes two rows of `t` at once; an iterator would need a
                // split borrow or a pivot-row clone per elimination.
                #[allow(clippy::needless_range_loop)]
                for k in 0..width {
                    let delta = f * t[row][k];
                    t[i][k] -= delta;
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y, x<=4, 2y<=12, 3x+2y<=18 -> (2,6), obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 5.0);
        m.add_le_constraint("c1", &[(x, 1.0)], 4.0);
        m.add_le_constraint("c2", &[(y, 2.0)], 12.0);
        m.add_le_constraint("c3", &[(x, 3.0), (y, 2.0)], 18.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.objective, 36.0), "obj = {}", s.objective);
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 6.0));
    }

    #[test]
    fn upper_bounds_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 3.0, 1.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.value(x), 3.0));
        assert!(close(s.objective, 3.0));
    }

    #[test]
    fn lower_bound_shift() {
        // max -x with 2 <= x <= 7 -> x = 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 2.0, 7.0, -1.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.value(x), 2.0));
        assert!(close(s.objective, -2.0));
    }

    #[test]
    fn minimize_with_ge() {
        // min x + y s.t. x + y >= 4, x >= 1 -> obj 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_ge_constraint("c1", &[(x, 1.0), (y, 1.0)], 4.0);
        m.add_ge_constraint("c2", &[(x, 1.0)], 1.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.objective, 4.0), "obj = {}", s.objective);
    }

    #[test]
    fn equality_rows() {
        // max x + y s.t. x + y = 5, x <= 2 -> obj 5 with x<=2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_eq_constraint("c", &[(x, 1.0), (y, 1.0)], 5.0);
        m.add_le_constraint("xc", &[(x, 1.0)], 2.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.objective, 5.0));
        assert!(close(s.value(x) + s.value(y), 5.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_ge_constraint("c", &[(x, 1.0)], 5.0);
        assert_eq!(solve_relaxation(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        assert_eq!(solve_relaxation(&m), Err(SolveError::Unbounded));
    }

    #[test]
    fn empty_model() {
        let m = Model::new(Sense::Maximize);
        let s = solve_relaxation(&m).unwrap();
        assert_eq!(s.values.len(), 0);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 5.0, 1.0);
        m.add_le_constraint("c", &[(x, -1.0)], -2.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.value(x), 5.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_le_constraint("a", &[(x, 1.0), (y, 1.0)], 1.0);
        m.add_le_constraint("b", &[(x, 2.0), (y, 2.0)], 2.0);
        m.add_le_constraint("c", &[(x, 1.0)], 1.0);
        m.add_le_constraint("d", &[(y, 1.0)], 1.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(close(s.objective, 1.0));
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 1.0, 4.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 3.0, 1.0);
        m.add_le_constraint("c", &[(x, 1.0), (y, 2.0)], 6.0);
        let s = solve_relaxation(&m).unwrap();
        assert!(m.is_feasible(&s.values, 1e-6));
    }
}
