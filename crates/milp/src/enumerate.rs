//! Exhaustive-enumeration oracle for small bounded integer programs.
//!
//! Walks the full integer lattice inside the variable bounds and returns the
//! best feasible point. Exponential, so only usable when
//! `Π (upper - lower + 1)` is small — which is exactly the case for the
//! GLP4NN analyzer programs and for the randomized property tests that
//! cross-check [`crate::branch`].

use crate::model::{Model, Sense, Solution, SolveError, VarKind};

/// Maximum number of lattice points [`solve_exhaustive`] will visit.
pub const MAX_POINTS: u64 = 10_000_000;

/// Solve a *pure-integer*, fully-bounded program by exhaustive search.
///
/// Returns [`SolveError::Invalid`] if any variable is continuous or has an
/// infinite upper bound, or if the lattice exceeds [`MAX_POINTS`].
pub fn solve_exhaustive(model: &Model) -> Result<Solution, SolveError> {
    model.validate()?;
    let n = model.num_vars();
    if n == 0 {
        return Ok(Solution {
            objective: 0.0,
            values: vec![],
        });
    }

    let mut lows = Vec::with_capacity(n);
    let mut highs = Vec::with_capacity(n);
    let mut points: u64 = 1;
    for v in model.vars() {
        if v.kind != VarKind::Integer {
            return Err(SolveError::Invalid(format!(
                "enumeration requires integer variables, {} is continuous",
                v.name
            )));
        }
        if !v.upper.is_finite() {
            return Err(SolveError::Invalid(format!(
                "enumeration requires finite bounds, {} is unbounded",
                v.name
            )));
        }
        let lo = v.lower.ceil() as i64;
        let hi = v.upper.floor() as i64;
        if hi < lo {
            return Err(SolveError::Infeasible);
        }
        points = points.saturating_mul((hi - lo + 1) as u64);
        if points > MAX_POINTS {
            return Err(SolveError::Invalid(format!(
                "lattice too large for enumeration (> {MAX_POINTS} points)"
            )));
        }
        lows.push(lo);
        highs.push(hi);
    }

    let maximize = matches!(model.sense(), Sense::Maximize);
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut current: Vec<i64> = lows.clone();
    let values_of = |c: &[i64]| c.iter().map(|&x| x as f64).collect::<Vec<f64>>();

    loop {
        let vals = values_of(&current);
        if model.is_feasible(&vals, 1e-9) {
            let obj = model.objective_at(&vals);
            let take = match &best {
                None => true,
                Some((b, _)) => {
                    if maximize {
                        obj > *b + 1e-12
                    } else {
                        obj < *b - 1e-12
                    }
                }
            };
            if take {
                best = Some((obj, vals));
            }
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return match best {
                    Some((objective, values)) => Ok(Solution { objective, values }),
                    None => Err(SolveError::Infeasible),
                };
            }
            if current[k] < highs[k] {
                current[k] += 1;
                break;
            }
            current[k] = lows[k];
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    #[test]
    fn matches_hand_solution() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 4.0, 3.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 4.0, 2.0);
        m.add_le_constraint("c", &[(x, 1.0), (y, 1.0)], 4.0);
        let s = solve_exhaustive(&m).unwrap();
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.int_value(y), 0);
        assert!((s.objective - 12.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_continuous() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", VarKind::Continuous, 0.0, 4.0, 1.0);
        assert!(matches!(solve_exhaustive(&m), Err(SolveError::Invalid(_))));
    }

    #[test]
    fn rejects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        assert!(matches!(solve_exhaustive(&m), Err(SolveError::Invalid(_))));
    }

    #[test]
    fn infeasible_when_no_lattice_point_satisfies_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 3.0, 1.0);
        m.add_ge_constraint("c", &[(x, 1.0)], 10.0);
        assert_eq!(solve_exhaustive(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn empty_model_ok() {
        let m = Model::new(Sense::Minimize);
        let s = solve_exhaustive(&m).unwrap();
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn agrees_with_branch_and_bound_on_fixture() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 5.0, 7.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 5.0, 5.0);
        let c = m.add_var("c", VarKind::Integer, 1.0, 3.0, -2.0);
        m.add_le_constraint("r1", &[(a, 3.0), (b, 2.0), (c, 1.0)], 12.0);
        m.add_le_constraint("r2", &[(a, 1.0), (b, 4.0)], 10.0);
        let e = solve_exhaustive(&m).unwrap();
        let s = crate::branch::solve(&m).unwrap();
        assert!(
            (e.objective - s.objective).abs() < 1e-6,
            "enumerate {} vs b&b {}",
            e.objective,
            s.objective
        );
    }
}
