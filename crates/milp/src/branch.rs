//! Branch & bound over the integer variables.
//!
//! Depth-first search; each node tightens one integer variable's bounds
//! around the fractional relaxation value (`x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`) and
//! re-solves the LP relaxation. Nodes are pruned when the relaxation is
//! infeasible or cannot beat the incumbent.
//!
//! The GLP4NN analyzer's programs have ≤ ~10 bounded integer variables, so
//! this explores at most a few hundred nodes; a generous node cap turns a
//! pathological model into an explicit [`SolveError::NodeLimit`] instead of
//! a hang.

use crate::model::{Model, Sense, Solution, SolveError, VarKind};
use crate::simplex::solve_relaxation;

const INT_EPS: f64 = 1e-6;
const DEFAULT_NODE_LIMIT: usize = 100_000;

/// Statistics from a branch & bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// LP relaxations solved (nodes explored).
    pub nodes: usize,
    /// Nodes pruned by bound.
    pub pruned: usize,
    /// Incumbent improvements found.
    pub incumbents: usize,
}

/// Solve `model` to integer optimality with the default node limit.
pub fn solve(model: &Model) -> Result<Solution, SolveError> {
    solve_with_stats(model).map(|(s, _)| s)
}

/// Solve and return search statistics alongside the solution.
pub fn solve_with_stats(model: &Model) -> Result<(Solution, BranchStats), SolveError> {
    solve_with_limit(model, DEFAULT_NODE_LIMIT)
}

/// Solve with an explicit node budget.
pub fn solve_with_limit(
    model: &Model,
    node_limit: usize,
) -> Result<(Solution, BranchStats), SolveError> {
    model.validate()?;
    let mut stats = BranchStats::default();
    let mut incumbent: Option<Solution> = None;
    let mut work = model.clone();
    let maximize = matches!(model.sense(), Sense::Maximize);

    branch_node(&mut work, &mut incumbent, &mut stats, node_limit, maximize)?;

    match incumbent {
        Some(mut sol) => {
            // Snap integer variables exactly.
            for (j, v) in model.vars().iter().enumerate() {
                if v.kind == VarKind::Integer {
                    sol.values[j] = sol.values[j].round();
                }
            }
            sol.objective = model.objective_at(&sol.values);
            Ok((sol, stats))
        }
        None => Err(SolveError::Infeasible),
    }
}

fn better(candidate: f64, incumbent: f64, maximize: bool) -> bool {
    if maximize {
        candidate > incumbent + 1e-9
    } else {
        candidate < incumbent - 1e-9
    }
}

fn branch_node(
    work: &mut Model,
    incumbent: &mut Option<Solution>,
    stats: &mut BranchStats,
    node_limit: usize,
    maximize: bool,
) -> Result<(), SolveError> {
    if stats.nodes >= node_limit {
        return Err(SolveError::NodeLimit);
    }
    stats.nodes += 1;

    let relax = match solve_relaxation(work) {
        Ok(s) => s,
        Err(SolveError::Infeasible) => return Ok(()), // prune
        Err(e) => return Err(e),
    };

    // Bound pruning: relaxation is an upper (maximize) / lower (minimize)
    // bound for this subtree.
    if let Some(inc) = incumbent {
        if !better(relax.objective, inc.objective, maximize) {
            stats.pruned += 1;
            return Ok(());
        }
    }

    // Find a fractional integer variable.
    let frac = work
        .vars()
        .iter()
        .enumerate()
        .find(|(j, v)| {
            v.kind == VarKind::Integer
                && (relax.values[*j] - relax.values[*j].round()).abs() > INT_EPS
        })
        .map(|(j, _)| j);

    let Some(j) = frac else {
        // Integer-feasible: candidate incumbent.
        let is_better = incumbent
            .as_ref()
            .map(|inc| better(relax.objective, inc.objective, maximize))
            .unwrap_or(true);
        if is_better {
            stats.incumbents += 1;
            *incumbent = Some(relax);
        }
        return Ok(());
    };

    let v = relax.values[j];
    let floor = v.floor();
    let ceil = v.ceil();
    let var_id = crate::model::VarId(j);
    let (old_lo, old_hi) = {
        let var = &work.vars()[j];
        (var.lower, var.upper)
    };

    // Down branch: x_j <= floor(v).
    if floor >= old_lo - INT_EPS {
        work.var_mut(var_id).upper = floor.min(old_hi);
        branch_node(work, incumbent, stats, node_limit, maximize)?;
        work.var_mut(var_id).upper = old_hi;
    }
    // Up branch: x_j >= ceil(v).
    if ceil <= old_hi + INT_EPS {
        work.var_mut(var_id).lower = ceil.max(old_lo);
        branch_node(work, incumbent, stats, node_limit, maximize)?;
        work.var_mut(var_id).lower = old_lo;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn integer_knapsack() {
        // max 8a + 11b + 6c + 4d, 5a+7b+4c+3d <= 14, a..d in {0,1}.
        // Optimal: b=c=d=1 (obj 21).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1.0, 8.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1.0, 11.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1.0, 6.0);
        let d = m.add_var("d", VarKind::Integer, 0.0, 1.0, 4.0);
        m.add_le_constraint("w", &[(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], 14.0);
        let s = solve(&m).unwrap();
        assert!(close(s.objective, 21.0), "obj = {}", s.objective);
        assert_eq!(s.int_value(a), 0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(d), 1);
    }

    #[test]
    fn relaxation_fractional_integer_optimum_differs() {
        // max x + y, 2x + 2y <= 3, integers -> obj 1 (relaxation 1.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_le_constraint("c", &[(x, 2.0), (y, 2.0)], 3.0);
        let s = solve(&m).unwrap();
        assert!(close(s.objective, 1.0));
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer <= 2.5 constraint, y continuous <= 1.5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_le_constraint("cx", &[(x, 1.0)], 2.5);
        m.add_le_constraint("cy", &[(y, 1.0)], 1.5);
        let s = solve(&m).unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!(close(s.value(y), 1.5));
        assert!(close(s.objective, 5.5));
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 has no integer point.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_ge_constraint("lo", &[(x, 1.0)], 0.4);
        m.add_le_constraint("hi", &[(x, 1.0)], 0.6);
        assert_eq!(solve(&m), Err(SolveError::Infeasible));
    }

    #[test]
    fn minimization() {
        // min 3x + 4y s.t. x + 2y >= 3, 2x + y >= 3, integers -> x=y=1, obj 7.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 100.0, 3.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 100.0, 4.0);
        m.add_ge_constraint("c1", &[(x, 1.0), (y, 2.0)], 3.0);
        m.add_ge_constraint("c2", &[(x, 2.0), (y, 1.0)], 3.0);
        let s = solve(&m).unwrap();
        assert!(close(s.objective, 7.0), "obj = {}", s.objective);
    }

    #[test]
    fn node_limit_reported() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(&format!("x{i}"), VarKind::Integer, 0.0, 10.0, 1.0))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 3.0)).collect();
        m.add_le_constraint("c", &terms, 17.0);
        // With node_limit=1 only the root relaxation runs; any branching
        // attempt must report NodeLimit.
        match solve_with_limit(&m, 1) {
            Err(SolveError::NodeLimit) => {}
            other => panic!("expected NodeLimit, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_le_constraint("c", &[(x, 2.0), (y, 2.0)], 7.0);
        let (s, stats) = solve_with_stats(&m).unwrap();
        assert!(close(s.objective, 3.0));
        assert!(stats.nodes >= 1);
        assert!(stats.incumbents >= 1);
    }

    #[test]
    fn glp4nn_shaped_program() {
        // The exact shape the kernel analyzer emits: maximize
        // sum(#K_i * tau_i * beta_i) under smem/thread/block/C caps.
        // 2 kernel classes: tau=[256,128], beta=[2,4], smem=[4096,0],
        // sm_max=49152, tau_max=2048, beta_max=16, C=32, percap=[8,16].
        let mut m = Model::new(Sense::Maximize);
        let k0 = m.add_var("K0", VarKind::Integer, 0.0, 8.0, 256.0 * 2.0);
        let k1 = m.add_var("K1", VarKind::Integer, 0.0, 16.0, 128.0 * 4.0);
        m.add_le_constraint("smem", &[(k0, 4096.0 * 2.0), (k1, 0.0)], 49152.0);
        m.add_le_constraint("threads", &[(k0, 256.0 * 2.0), (k1, 128.0 * 4.0)], 2048.0);
        m.add_le_constraint("blocks", &[(k0, 2.0), (k1, 4.0)], 16.0);
        m.add_le_constraint("conc", &[(k0, 1.0), (k1, 1.0)], 32.0);
        m.add_ge_constraint("atleast1", &[(k0, 1.0), (k1, 1.0)], 1.0);
        let s = solve(&m).unwrap();
        // threads constraint caps total active threads at 2048; both kernel
        // classes have the same thread/block product 512, so any mix totaling
        // 4 instances is optimal.
        assert!(close(s.objective, 2048.0), "obj = {}", s.objective);
        assert_eq!(s.int_value(k0) + s.int_value(k1), 4);
        assert!(m.is_feasible(&s.values, 1e-6));
    }
}
