//! Property tests: branch & bound must agree with the exhaustive oracle on
//! random small bounded integer programs, and simplex solutions must be
//! feasible for their models.

use milp::enumerate::solve_exhaustive;
use milp::model::{Model, Sense, VarKind};
use milp::simplex::solve_relaxation;
use milp::SolveError;
use proptest::prelude::*;

/// A random small bounded integer program: 1-4 vars with bounds in [0, 4],
/// 0-3 `≤` constraints with small integer coefficients.
fn arb_small_ip() -> impl Strategy<Value = Model> {
    (
        prop::collection::vec((0u8..=4, -5i8..=5), 1..=4),
        prop::collection::vec((prop::collection::vec(-3i8..=3, 4), 0i8..=20), 0..=3),
        prop::bool::ANY,
    )
        .prop_map(|(vars, rows, maximize)| {
            let mut m = Model::new(if maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            });
            let ids: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &(ub, obj))| {
                    m.add_var(
                        &format!("x{i}"),
                        VarKind::Integer,
                        0.0,
                        ub as f64,
                        obj as f64,
                    )
                })
                .collect();
            for (r, (coeffs, rhs)) in rows.into_iter().enumerate() {
                let terms: Vec<_> = ids
                    .iter()
                    .zip(&coeffs)
                    .map(|(&id, &c)| (id, c as f64))
                    .collect();
                m.add_le_constraint(&format!("r{r}"), &terms, rhs as f64);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Branch & bound and exhaustive enumeration agree on the optimal
    /// objective (the argmax may differ when there are ties).
    #[test]
    fn branch_and_bound_matches_oracle(m in arb_small_ip()) {
        let oracle = solve_exhaustive(&m);
        let bb = milp::solve(&m);
        match (oracle, bb) {
            (Ok(o), Ok(s)) => {
                prop_assert!((o.objective - s.objective).abs() < 1e-6,
                    "oracle {} vs b&b {}", o.objective, s.objective);
                prop_assert!(m.is_feasible(&s.values, 1e-6));
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (o, b) => prop_assert!(false, "divergent outcomes: oracle {o:?}, b&b {b:?}"),
        }
    }

    /// The LP relaxation, when it exists, is feasible (ignoring
    /// integrality) and bounds the integer optimum from the correct side.
    #[test]
    fn relaxation_bounds_integer_optimum(m in arb_small_ip()) {
        if let (Ok(relax), Ok(int)) = (solve_relaxation(&m), milp::solve(&m)) {
            match m.sense() {
                Sense::Maximize => prop_assert!(relax.objective >= int.objective - 1e-6),
                Sense::Minimize => prop_assert!(relax.objective <= int.objective + 1e-6),
            }
            // Relaxation point satisfies rows and bounds (not integrality).
            for (v, &x) in m.vars().iter().zip(&relax.values) {
                prop_assert!(x >= v.lower - 1e-6 && x <= v.upper + 1e-6);
            }
        }
    }
}
