//! Property tests for the numeric substrate.

use proptest::prelude::*;
use tensor::gemm::{sgemm, Transpose};
use tensor::im2col::{col2im, im2col, ConvGeometry};

fn naive_gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sgemm agrees with a naive triple-loop within f32 tolerance.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..24, n in 1usize..24, k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let gen = |len: usize, s: u64| -> Vec<f32> {
            (0..len).map(|i| (((i as u64 * 2654435761 + s * 97) % 17) as f32 - 8.0) / 4.0).collect()
        };
        let a = gen(m * k, seed);
        let b = gen(k * n, seed + 1);
        let mut c = vec![0.0f32; m * n];
        sgemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        let r = naive_gemm(m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&r) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transposing inputs is equivalent to pre-transposing the matrices.
    #[test]
    fn gemm_transpose_consistency(
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        // Build A^T stored row-major (k×m) and ask for Transpose::Yes.
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c1);
        sgemm(Transpose::Yes, Transpose::No, m, n, k, 1.0, &at, &b, 0.0, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// im2col then col2im computes, per pixel, (pixel value × number of
    /// windows covering it) — verified against direct counting.
    #[test]
    fn im2col_col2im_multiplicity(
        h in 3usize..10, w in 3usize..10,
        kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        channels in 1usize..3,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let geom = ConvGeometry::square(kernel, stride, pad);
        let im: Vec<f32> = (0..channels * h * w).map(|i| (i % 11) as f32 * 0.5).collect();
        let out_h = geom.out_h(h);
        let out_w = geom.out_w(w);
        let mut col = vec![0.0f32; channels * kernel * kernel * out_h * out_w];
        im2col(&im, channels, h, w, &geom, &mut col);
        let mut back = vec![0.0f32; im.len()];
        col2im(&col, channels, h, w, &geom, &mut back);

        // Count window coverage per pixel directly.
        for c in 0..channels {
            for y in 0..h {
                for x in 0..w {
                    let mut cover = 0usize;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            // Window position (oh, ow) samples (y, x) at tap (kh, kw)
                            // iff oh*stride + kh - pad == y (same for x).
                            let ny = y as isize + pad as isize - kh as isize;
                            let nx = x as isize + pad as isize - kw as isize;
                            if ny >= 0 && nx >= 0
                                && ny % stride as isize == 0 && nx % stride as isize == 0
                                && (ny / stride as isize) < out_h as isize
                                && (nx / stride as isize) < out_w as isize
                            {
                                cover += 1;
                            }
                        }
                    }
                    let idx = (c * h + y) * w + x;
                    let expect = im[idx] * cover as f32;
                    prop_assert!((back[idx] - expect).abs() < 1e-3,
                        "pixel ({c},{y},{x}): got {} want {}", back[idx], expect);
                }
            }
        }
    }

    /// Column matrix rows are exactly the strided taps: reconstruct a conv
    /// output via col and via direct convolution; they must agree.
    #[test]
    fn conv_via_im2col_matches_direct(
        h in 3usize..8, w in 3usize..8,
        kernel in 1usize..4,
    ) {
        prop_assume!(h >= kernel && w >= kernel);
        let geom = ConvGeometry::square(kernel, 1, 0);
        let im: Vec<f32> = (0..h * w).map(|i| (i % 9) as f32 - 4.0).collect();
        let filt: Vec<f32> = (0..kernel * kernel).map(|i| (i % 3) as f32 - 1.0).collect();
        let out_h = geom.out_h(h);
        let out_w = geom.out_w(w);
        let mut col = vec![0.0f32; kernel * kernel * out_h * out_w];
        im2col(&im, 1, h, w, &geom, &mut col);
        // GEMM: 1×(k*k) by (k*k)×(out) = conv output.
        let mut out = vec![0.0f32; out_h * out_w];
        sgemm(Transpose::No, Transpose::No, 1, out_h * out_w, kernel * kernel,
              1.0, &filt, &col, 0.0, &mut out);
        // Direct convolution.
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f32;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        acc += filt[ky * kernel + kx] * im[(oy + ky) * w + (ox + kx)];
                    }
                }
                prop_assert!((out[oy * out_w + ox] - acc).abs() < 1e-3);
            }
        }
    }
}
