//! Weight initializers (Caffe's "fillers"), all seeded for reproducible
//! training runs — the convergence-invariance experiment (paper Fig. 11)
//! requires the naive and GLP4NN runs to start from identical parameters.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Filler {
    /// All elements set to the value.
    Constant(f32),
    /// Uniform on `[lo, hi]`.
    Uniform(f32, f32),
    /// Gaussian with mean 0 and the given standard deviation.
    Gaussian(f32),
    /// Xavier/Glorot: uniform on `±sqrt(3 / fan_in)`.
    Xavier,
}

impl Filler {
    /// Fill `data` in place. `fan_in` is the number of inputs feeding each
    /// output (used by Xavier); `seed` makes the fill deterministic.
    pub fn fill(&self, data: &mut [f32], fan_in: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            Filler::Constant(v) => data.iter_mut().for_each(|x| *x = v),
            Filler::Uniform(lo, hi) => {
                assert!(hi >= lo, "invalid uniform range");
                let d = rand::distributions::Uniform::new_inclusive(lo, hi);
                data.iter_mut().for_each(|x| *x = d.sample(&mut rng));
            }
            Filler::Gaussian(std) => {
                // Box-Muller transform; avoids needing rand_distr.
                let u = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
                let next_pair = |rng: &mut StdRng| {
                    let u1: f32 = u.sample(rng);
                    let u2: f32 = u.sample(rng);
                    let r = (-2.0 * u1.ln()).sqrt();
                    let theta = 2.0 * std::f32::consts::PI * u2;
                    (r * theta.cos() * std, r * theta.sin() * std)
                };
                let mut i = 0;
                while i < data.len() {
                    let (a, b) = next_pair(&mut rng);
                    data[i] = a;
                    if i + 1 < data.len() {
                        data[i + 1] = b;
                    }
                    i += 2;
                }
            }
            Filler::Xavier => {
                let scale = (3.0f32 / fan_in.max(1) as f32).sqrt();
                let d = rand::distributions::Uniform::new_inclusive(-scale, scale);
                data.iter_mut().for_each(|x| *x = d.sample(&mut rng));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let mut d = vec![0.0f32; 8];
        Filler::Constant(1.5).fill(&mut d, 1, 0);
        assert!(d.iter().all(|&v| v == 1.5));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut d = vec![0.0f32; 1000];
        Filler::Uniform(-0.5, 0.5).fill(&mut d, 1, 7);
        assert!(d.iter().all(|&v| (-0.5..=0.5).contains(&v)));
        // Not all equal (it is actually random).
        assert!(d.iter().any(|&v| v != d[0]));
    }

    #[test]
    fn gaussian_moments() {
        let mut d = vec![0.0f32; 20_000];
        Filler::Gaussian(0.1).fill(&mut d, 1, 13);
        let mean: f32 = d.iter().sum::<f32>() / d.len() as f32;
        let var: f32 = d.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d.len() as f32;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_scale_shrinks_with_fan_in() {
        let mut small = vec![0.0f32; 1000];
        let mut large = vec![0.0f32; 1000];
        Filler::Xavier.fill(&mut small, 10, 3);
        Filler::Xavier.fill(&mut large, 1000, 3);
        let max_s = small.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_l = large.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_s > max_l * 3.0);
        assert!(max_s <= (3.0f32 / 10.0).sqrt() + 1e-6);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        Filler::Gaussian(1.0).fill(&mut a, 1, 42);
        Filler::Gaussian(1.0).fill(&mut b, 1, 42);
        assert_eq!(a, b);
        let mut c = vec![0.0f32; 64];
        Filler::Gaussian(1.0).fill(&mut c, 1, 43);
        assert_ne!(a, c);
    }
}
