//! `im2col` / `col2im` — the layout transforms that turn convolution into
//! GEMM (the first kernel of every conv layer's forward pass in the
//! paper's workflow example: "there are three kernels needed to be
//! computed, i.e., im2col, sgemm and gemmk").

/// Static geometry of a convolution: filter size, stride, padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Filter height (`F_h`).
    pub kernel_h: usize,
    /// Filter width (`F_w`).
    pub kernel_w: usize,
    /// Stride (`S`, same in both dims as in the paper's Table 5).
    pub stride: usize,
    /// Zero padding (`P`, same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Square-filter geometry (the paper's layer configs are all square).
    pub fn square(kernel: usize, stride: usize, pad: usize) -> Self {
        ConvGeometry {
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            pad,
        }
    }

    /// Output spatial extent for an input of `in_dim` pixels.
    pub fn out_h(&self, in_h: usize) -> usize {
        conv_out_dim(in_h, self.kernel_h, self.stride, self.pad)
    }

    /// Output width for an input of `in_w` pixels.
    pub fn out_w(&self, in_w: usize) -> usize {
        conv_out_dim(in_w, self.kernel_w, self.stride, self.pad)
    }
}

/// `(in + 2·pad − kernel) / stride + 1`.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(input + 2 * pad >= kernel, "kernel larger than padded input");
    (input + 2 * pad - kernel) / stride + 1
}

/// Expand one image `(channels × height × width)` into a column matrix of
/// shape `(channels·kernel_h·kernel_w) × (out_h·out_w)`, row-major.
///
/// Out-of-bounds (padding) taps contribute zeros.
pub fn im2col(
    im: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geom: &ConvGeometry,
    col: &mut [f32],
) {
    let out_h = geom.out_h(height);
    let out_w = geom.out_w(width);
    assert_eq!(im.len(), channels * height * width, "image size mismatch");
    assert_eq!(
        col.len(),
        channels * geom.kernel_h * geom.kernel_w * out_h * out_w,
        "column buffer size mismatch"
    );

    let mut idx = 0usize;
    for c in 0..channels {
        let im_c = &im[c * height * width..(c + 1) * height * width];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.pad as isize;
                    if ih < 0 || ih >= height as isize {
                        for _ in 0..out_w {
                            col[idx] = 0.0;
                            idx += 1;
                        }
                        continue;
                    }
                    let row = &im_c[ih as usize * width..(ih as usize + 1) * width];
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.pad as isize;
                        col[idx] = if iw < 0 || iw >= width as isize {
                            0.0
                        } else {
                            row[iw as usize]
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`]: scatter-add a column matrix back into an image
/// (used by the conv backward pass to form the input gradient).
pub fn col2im(
    col: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geom: &ConvGeometry,
    im: &mut [f32],
) {
    let out_h = geom.out_h(height);
    let out_w = geom.out_w(width);
    assert_eq!(im.len(), channels * height * width, "image size mismatch");
    assert_eq!(
        col.len(),
        channels * geom.kernel_h * geom.kernel_w * out_h * out_w,
        "column buffer size mismatch"
    );
    im.iter_mut().for_each(|v| *v = 0.0);

    let mut idx = 0usize;
    for c in 0..channels {
        let im_c = &mut im[c * height * width..(c + 1) * height * width];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.pad as isize;
                    if ih < 0 || ih >= height as isize {
                        idx += out_w;
                        continue;
                    }
                    let row_base = ih as usize * width;
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.pad as isize;
                        if iw >= 0 && iw < width as isize {
                            im_c[row_base + iw as usize] += col[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        // The paper's CaffeNet conv1: 227 input, 11 kernel, stride 4, pad 0 -> 55.
        assert_eq!(conv_out_dim(227, 11, 4, 0), 55);
        // CIFAR10 conv1: 32 input, 5 kernel, stride 1, pad 2 -> 32.
        assert_eq!(conv_out_dim(32, 5, 1, 2), 32);
        // Siamese conv1: 28 input, 5 kernel, stride 1, pad 0 -> 24.
        assert_eq!(conv_out_dim(28, 5, 1, 0), 24);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn out_dim_rejects_oversized_kernel() {
        conv_out_dim(3, 7, 1, 0);
    }

    #[test]
    fn identity_1x1_kernel() {
        // 1x1 kernel, stride 1, no pad: col == im.
        let im: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let geom = ConvGeometry::square(1, 1, 0);
        let mut col = vec![0.0f32; 12];
        im2col(&im, 3, 2, 2, &geom, &mut col);
        assert_eq!(col, im);
    }

    #[test]
    fn known_3x3_patch() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad -> 4 cols of 4 taps.
        #[rustfmt::skip]
        let im = vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ];
        let geom = ConvGeometry::square(2, 1, 0);
        let mut col = vec![0.0f32; 4 * 4];
        im2col(&im, 1, 3, 3, &geom, &mut col);
        // Row layout: tap (kh,kw) major, output position minor.
        // tap(0,0): positions (0,0),(0,1),(1,0),(1,1) -> 1,2,4,5
        assert_eq!(&col[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // tap(0,1): 2,3,5,6
        assert_eq!(&col[4..8], &[2.0, 3.0, 5.0, 6.0]);
        // tap(1,0): 4,5,7,8
        assert_eq!(&col[8..12], &[4.0, 5.0, 7.0, 8.0]);
        // tap(1,1): 5,6,8,9
        assert_eq!(&col[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_contributes_zeros() {
        let im = vec![1.0f32; 4]; // 1ch 2x2
        let geom = ConvGeometry::square(3, 1, 1); // out 2x2
        let mut col = vec![9.9f32; 9 * 4];
        im2col(&im, 1, 2, 2, &geom, &mut col);
        // Corner tap (0,0) at output (0,0) reads padded (-1,-1) -> 0.
        assert_eq!(col[0], 0.0);
        // Center tap (1,1) reads the image everywhere -> all ones.
        let center_row = 4; // tap index kh=1,kw=1 -> (1*3+1)=4
        assert_eq!(&col[center_row * 4..center_row * 4 + 4], &[1.0; 4]);
    }

    #[test]
    fn col2im_counts_tap_multiplicity() {
        // col of all ones scattered back: each pixel accumulates the number
        // of kernel windows covering it.
        let geom = ConvGeometry::square(2, 1, 0);
        let col = vec![1.0f32; 4 * 4]; // from 3x3 image
        let mut im = vec![0.0f32; 9];
        col2im(&col, 1, 3, 3, &geom, &mut im);
        #[rustfmt::skip]
        let expected = vec![
            1.0, 2.0, 1.0,
            2.0, 4.0, 2.0,
            1.0, 2.0, 1.0,
        ];
        assert_eq!(im, expected);
    }

    #[test]
    fn stride_skips_pixels() {
        let im: Vec<f32> = (0..16).map(|i| i as f32).collect(); // 4x4
        let geom = ConvGeometry::square(2, 2, 0); // out 2x2
        let mut col = vec![0.0f32; 4 * 4];
        im2col(&im, 1, 4, 4, &geom, &mut col);
        // tap (0,0) samples (0,0),(0,2),(2,0),(2,2) -> 0,2,8,10
        assert_eq!(&col[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn multi_channel_layout() {
        // 2 channels: second channel's taps follow all of the first's.
        let im: Vec<f32> = (0..8).map(|i| i as f32).collect(); // 2ch 2x2
        let geom = ConvGeometry::square(1, 1, 0);
        let mut col = vec![0.0f32; 8];
        im2col(&im, 2, 2, 2, &geom, &mut col);
        assert_eq!(col, im);
    }
}
