//! A minimal scoped-thread `parallel_for`.
//!
//! Rayon is not in the sanctioned offline dependency set, so this module
//! provides the one primitive the GEMM and conv layers need: evenly split
//! an index range across scoped worker threads (crossbeam scope — no
//! `'static` bound, no allocation of long-lived pool state). Falls back to
//! sequential execution for small ranges where spawn overhead would
//! dominate.

use std::num::NonZeroUsize;

/// Minimum items per worker before going parallel.
const MIN_CHUNK: usize = 1024;

/// Number of worker threads to use (hardware parallelism, capped at 16).
pub fn num_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Run `f(start, end)` over disjoint sub-ranges covering `0..n`, possibly
/// in parallel. `f` must be safe to run concurrently on disjoint ranges.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let workers = num_workers();
    if n == 0 {
        return;
    }
    if workers <= 1 || n < MIN_CHUNK * 2 {
        f(0, n);
        return;
    }
    let chunks = workers.min(n.div_ceil(MIN_CHUNK));
    let chunk = n.div_ceil(chunks);
    crossbeam::scope(|scope| {
        for c in 0..chunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move |_| f(start, end));
        }
    })
    .expect("worker panicked in parallel_for");
}

/// Like [`parallel_for`] but hands each worker a mutable, disjoint slice of
/// `data` aligned to `stride`-sized rows: `f(row_start, rows_chunk)`.
pub fn parallel_for_rows<T, F>(data: &mut [T], stride: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(stride > 0, "stride must be positive");
    assert_eq!(data.len() % stride, 0, "data not a whole number of rows");
    let rows = data.len() / stride;
    let workers = num_workers();
    if rows == 0 {
        return;
    }
    if workers <= 1 || data.len() < MIN_CHUNK * 2 {
        f(0, data);
        return;
    }
    let chunks = workers.min(rows);
    let rows_per = rows.div_ceil(chunks);
    crossbeam::scope(|scope| {
        let mut rest = data;
        let mut row = 0;
        while !rest.is_empty() {
            let take = (rows_per * stride).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            let r0 = row;
            scope.spawn(move |_| f(r0, head));
            row += take / stride;
            rest = tail;
        }
    })
    .expect("worker panicked in parallel_for_rows");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_entire_range_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |a, b| {
            for h in &hits[a..b] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn small_range_runs_sequentially() {
        let count = AtomicUsize::new(0);
        parallel_for(10, |a, b| {
            count.fetch_add(b - a, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn rows_are_disjoint_and_complete() {
        let stride = 64;
        let rows = 100;
        let mut data = vec![0u32; stride * rows];
        parallel_for_rows(&mut data, stride, |row0, chunk| {
            for (r, rowbuf) in chunk.chunks_mut(stride).enumerate() {
                for v in rowbuf {
                    *v = (row0 + r) as u32 + 1;
                }
            }
        });
        for (r, rowbuf) in data.chunks(stride).enumerate() {
            assert!(rowbuf.iter().all(|&v| v == r as u32 + 1), "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rows_rejects_ragged_data() {
        let mut data = vec![0u8; 10];
        parallel_for_rows(&mut data, 3, |_, _| {});
    }

    #[test]
    fn workers_is_positive() {
        assert!(num_workers() >= 1);
    }
}
