#![warn(missing_docs)]

//! Numeric substrate for the Caffe-like framework: blobs, BLAS-style
//! kernels, im2col, fillers, and a small scoped-thread worker pool.
//!
//! The GLP4NN paper's host-side math (the computation *inside* each GPU
//! kernel) is provided by cuBLAS/cuDNN on real hardware. Here the same
//! operations run on the CPU in `f32`, so convergence experiments
//! (paper Fig. 11) are *real* training runs, while the corresponding
//! simulated kernels only account time on the simulated GPU device (the `gpu-sim` crate).
//!
//! Determinism matters: the GLP4NN execution path splits a batch into
//! chunks whose outputs land in disjoint regions of the same blob, so the
//! optimized and naive paths produce **bitwise identical** results — the
//! convergence-invariance property the paper proves in §3.3.1.

pub mod blob;
pub mod filler;
pub mod gemm;
pub mod im2col;
pub mod math;
pub mod pool;

pub use blob::Blob;
pub use filler::Filler;
pub use gemm::{sgemm, Transpose};
pub use im2col::{col2im, conv_out_dim, im2col, ConvGeometry};
pub use pool::parallel_for;
