//! Element-wise and reduction vector operations (the small "BLAS"
//! operations of the paper's Algorithms 1-2).

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `x *= alpha`.
pub fn scal(alpha: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Dot product.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place ReLU: `x = max(x, 0)`, with optional negative slope (leaky).
pub fn relu(x: &mut [f32], negative_slope: f32) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v *= negative_slope;
        }
    }
}

/// ReLU backward: `dx = dy · (x > 0 ? 1 : slope)` evaluated on the
/// *forward input* `x`.
pub fn relu_backward(x: &[f32], dy: &[f32], negative_slope: f32, dx: &mut [f32]) {
    assert_eq!(x.len(), dy.len());
    assert_eq!(x.len(), dx.len());
    for i in 0..x.len() {
        dx[i] = if x[i] > 0.0 {
            dy[i]
        } else {
            dy[i] * negative_slope
        };
    }
}

/// Numerically-stable softmax over each row of an `rows × cols` matrix.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols);
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Mean cross-entropy loss of row-softmax probabilities against integer
/// labels; `probs` is `rows × cols` post-softmax.
pub fn cross_entropy(probs: &[f32], labels: &[usize], rows: usize, cols: usize) -> f32 {
    assert_eq!(probs.len(), rows * cols);
    assert_eq!(labels.len(), rows);
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        debug_assert!(label < cols);
        let p = probs[r * cols + label].max(1e-12);
        loss -= p.ln();
    }
    loss / rows as f32
}

/// Max over a slice with its index.
pub fn argmax(x: &[f32]) -> usize {
    let mut best = 0;
    for (i, v) in x.iter().enumerate() {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_and_scal() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn relu_clamps_and_leaks() {
        let mut x = vec![-2.0, 3.0];
        relu(&mut x, 0.0);
        assert_eq!(x, vec![0.0, 3.0]);
        let mut y = vec![-2.0, 3.0];
        relu(&mut y, 0.1);
        assert!((y[0] + 0.2).abs() < 1e-6);
        assert_eq!(y[1], 3.0);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = vec![-1.0, 2.0, 0.0];
        let dy = vec![5.0, 5.0, 5.0];
        let mut dx = vec![0.0; 3];
        relu_backward(&x, &dy, 0.0, &mut dx);
        assert_eq!(dx, vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let probs = vec![1.0, 0.0, 0.0, 1.0];
        let loss = cross_entropy(&probs, &[0, 1], 2, 2);
        assert!(loss.abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let probs = vec![0.25f32; 4];
        let loss = cross_entropy(&probs, &[2], 1, 4);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn argmax_finds_first_max() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[3.0]), 0);
    }
}
