//! Caffe-style blobs: N-dimensional `f32` tensors with a paired gradient.
//!
//! A blob carries `data` (activations / weights) and `diff` (gradients),
//! both shaped `N × C × H × W` for 4-D blobs (batch, channels, height,
//! width) or arbitrary dims for others — the exact layout Caffe's layers
//! expect in Algorithms 1 and 2 of the paper (`bottom`, `top`, `weight`,
//! `bias` are all blobs).

/// An N-dimensional tensor with data and gradient storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    shape: Vec<usize>,
    data: Vec<f32>,
    diff: Vec<f32>,
}

impl Blob {
    /// A blob of the given shape, zero-filled.
    pub fn new(shape: &[usize]) -> Self {
        let count = shape.iter().product();
        Blob {
            shape: shape.to_vec(),
            data: vec![0.0; count],
            diff: vec![0.0; count],
        }
    }

    /// A 4-D `N×C×H×W` blob.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::new(&[n, c, h, w])
    }

    /// An empty (zero-dim) blob.
    pub fn empty() -> Self {
        Blob {
            shape: vec![],
            data: vec![],
            diff: vec![],
        }
    }

    /// Build from existing data with the given shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_data(shape: &[usize], data: Vec<f32>) -> Self {
        let count: usize = shape.iter().product();
        assert_eq!(data.len(), count, "data length does not match shape");
        let diff = vec![0.0; count];
        Blob {
            shape: shape.to_vec(),
            data,
            diff,
        }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// Batch dimension (dim 0; 1 for lower-rank blobs).
    pub fn num(&self) -> usize {
        self.shape.first().copied().unwrap_or(1)
    }

    /// Channel dimension (dim 1; 1 if absent).
    pub fn channels(&self) -> usize {
        self.shape.get(1).copied().unwrap_or(1)
    }

    /// Height (dim 2; 1 if absent).
    pub fn height(&self) -> usize {
        self.shape.get(2).copied().unwrap_or(1)
    }

    /// Width (dim 3; 1 if absent).
    pub fn width(&self) -> usize {
        self.shape.get(3).copied().unwrap_or(1)
    }

    /// Flat offset of `(n, c, h, w)` in NCHW layout.
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.channels() + c) * self.height() + h) * self.width() + w
    }

    /// Reshape in place; element count must be preserved.
    pub fn reshape(&mut self, shape: &[usize]) {
        let count: usize = shape.iter().product();
        assert_eq!(count, self.data.len(), "reshape must preserve count");
        self.shape = shape.to_vec();
    }

    /// Resize, reallocating and zero-filling if the count changes.
    pub fn resize(&mut self, shape: &[usize]) {
        let count: usize = shape.iter().product();
        if count != self.data.len() {
            self.data = vec![0.0; count];
            self.diff = vec![0.0; count];
        }
        self.shape = shape.to_vec();
    }

    /// Immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of the gradient.
    pub fn diff(&self) -> &[f32] {
        &self.diff
    }

    /// Mutable view of the gradient.
    pub fn diff_mut(&mut self) -> &mut [f32] {
        &mut self.diff
    }

    /// Simultaneous mutable access to data and diff (for in-place updates
    /// like `data -= lr * diff`).
    pub fn data_and_diff_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.data, &mut self.diff)
    }

    /// Zero the gradient.
    pub fn zero_diff(&mut self) {
        self.diff.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Zero the data.
    pub fn zero_data(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// L2 norm of the data (diagnostics).
    pub fn data_l2(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute data values (Caffe's `asum_data`).
    pub fn asum_data(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Apply `data -= rate * diff` (plain SGD step on this blob).
    pub fn sgd_step(&mut self, rate: f32) {
        for (d, g) in self.data.iter_mut().zip(&self.diff) {
            *d -= rate * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dims() {
        let b = Blob::nchw(2, 3, 4, 5);
        assert_eq!(b.count(), 120);
        assert_eq!(b.num(), 2);
        assert_eq!(b.channels(), 3);
        assert_eq!(b.height(), 4);
        assert_eq!(b.width(), 5);
        assert!(b.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn offset_is_row_major_nchw() {
        let b = Blob::nchw(2, 3, 4, 5);
        assert_eq!(b.offset(0, 0, 0, 0), 0);
        assert_eq!(b.offset(0, 0, 0, 1), 1);
        assert_eq!(b.offset(0, 0, 1, 0), 5);
        assert_eq!(b.offset(0, 1, 0, 0), 20);
        assert_eq!(b.offset(1, 0, 0, 0), 60);
        assert_eq!(b.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn lower_rank_blobs_default_dims() {
        let b = Blob::new(&[10]);
        assert_eq!(b.num(), 10);
        assert_eq!(b.channels(), 1);
        assert_eq!(b.height(), 1);
        assert_eq!(b.width(), 1);
        let e = Blob::empty();
        assert_eq!(e.count(), 0);
        assert_eq!(e.num(), 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut b = Blob::from_data(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        b.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data()[4], 5.0);
    }

    #[test]
    #[should_panic(expected = "preserve count")]
    fn reshape_rejects_count_change() {
        let mut b = Blob::new(&[4]);
        b.reshape(&[5]);
    }

    #[test]
    fn resize_reallocates_when_needed() {
        let mut b = Blob::from_data(&[2], vec![1.0, 2.0]);
        b.resize(&[2, 2]);
        assert_eq!(b.count(), 4);
        assert!(b.data().iter().all(|&v| v == 0.0));
        // Same-count resize keeps data.
        let mut c = Blob::from_data(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        c.resize(&[2, 2]);
        assert_eq!(c.data()[3], 4.0);
    }

    #[test]
    fn sgd_step_updates_data() {
        let mut b = Blob::from_data(&[3], vec![1.0, 2.0, 3.0]);
        b.diff_mut().copy_from_slice(&[0.5, 0.5, 0.5]);
        b.sgd_step(2.0);
        assert_eq!(b.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let b = Blob::from_data(&[2], vec![3.0, -4.0]);
        assert!((b.data_l2() - 5.0).abs() < 1e-6);
        assert!((b.asum_data() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn zeroing() {
        let mut b = Blob::from_data(&[2], vec![1.0, 2.0]);
        b.diff_mut().copy_from_slice(&[9.0, 9.0]);
        b.zero_diff();
        assert!(b.diff().iter().all(|&v| v == 0.0));
        b.zero_data();
        assert!(b.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_data_validates_length() {
        Blob::from_data(&[3], vec![1.0]);
    }
}
