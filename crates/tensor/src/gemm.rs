//! Blocked single-precision GEMM (the `sgemm` of the paper's Fig. 6).
//!
//! Row-major `C = α·op(A)·op(B) + β·C` with cache-blocked inner loops and
//! optional parallelism over row panels of `C`. This is the CPU stand-in
//! for cuBLAS: every convolutional and fully-connected layer bottoms out
//! here, exactly as Caffe's `forward_gpu` bottoms out in
//! `cublasSgemm`.
//!
//! The kernel is deterministic: accumulation order is fixed regardless of
//! thread count (each output element is accumulated by exactly one thread
//! in a fixed k-order), which underpins the framework's
//! convergence-invariance guarantee.

use crate::pool::parallel_for_rows;

/// Whether an operand is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Row-major GEMM: `C[m×n] = α · op(A)[m×k] · op(B)[k×n] + β · C`.
///
/// `a` is `m×k` when `ta == No`, else `k×m` (stored row-major either way);
/// likewise for `b`.
///
/// # Panics
/// Panics when slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn sgemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");

    // Scale C by beta first.
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    // Parallel over row-panels of C; each worker owns disjoint C rows, so
    // the computation is race-free and order-deterministic.
    parallel_for_rows(c, n, |row0, c_chunk| {
        let rows = c_chunk.len() / n;
        match (ta, tb) {
            (Transpose::No, Transpose::No) => {
                // C[i][j] += alpha * A[i][p] * B[p][j]  (ikj order, B streamed).
                for i in 0..rows {
                    let ai = row0 + i;
                    let crow = &mut c_chunk[i * n..(i + 1) * n];
                    for p in 0..k {
                        let av = alpha * a[ai * k + p];
                        if av != 0.0 {
                            let brow = &b[p * n..(p + 1) * n];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += av * bv;
                            }
                        }
                    }
                }
            }
            (Transpose::No, Transpose::Yes) => {
                // B stored n×k; C[i][j] += alpha * A[i][p] * B[j][p] (dot rows).
                for i in 0..rows {
                    let ai = row0 + i;
                    let arow = &a[ai * k..(ai + 1) * k];
                    for j in 0..n {
                        let brow = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (av, bv) in arow.iter().zip(brow) {
                            acc += av * bv;
                        }
                        c_chunk[i * n + j] += alpha * acc;
                    }
                }
            }
            (Transpose::Yes, Transpose::No) => {
                // A stored k×m; C[i][j] += alpha * A[p][i] * B[p][j].
                for p in 0..k {
                    let arow = &a[p * m..(p + 1) * m];
                    let brow = &b[p * n..(p + 1) * n];
                    for i in 0..rows {
                        let av = alpha * arow[row0 + i];
                        if av != 0.0 {
                            let crow = &mut c_chunk[i * n..(i + 1) * n];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += av * bv;
                            }
                        }
                    }
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                // C[i][j] += alpha * A[p][i] * B[j][p].
                for i in 0..rows {
                    let ai = row0 + i;
                    for j in 0..n {
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            acc += a[p * m + ai] * b[j * k + p];
                        }
                        c_chunk[i * n + j] += alpha * acc;
                    }
                }
            }
        }
    });
}

/// Row-major GEMV: `y = α · op(A)[m×n] · x + β · y`.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemv signature
pub fn sgemv(
    ta: Transpose,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    match ta {
        Transpose::No => {
            assert_eq!(a.len(), m * n);
            assert_eq!(x.len(), n);
            assert_eq!(y.len(), m);
            for (i, yv) in y.iter_mut().enumerate() {
                let row = &a[i * n..(i + 1) * n];
                let mut acc = 0.0f32;
                for (av, xv) in row.iter().zip(x) {
                    acc += av * xv;
                }
                *yv = alpha * acc + beta * *yv;
            }
        }
        Transpose::Yes => {
            assert_eq!(a.len(), m * n);
            assert_eq!(x.len(), m);
            assert_eq!(y.len(), n);
            if beta == 0.0 {
                y.iter_mut().for_each(|v| *v = 0.0);
            } else if beta != 1.0 {
                y.iter_mut().for_each(|v| *v *= beta);
            }
            for i in 0..m {
                let xv = alpha * x[i];
                if xv != 0.0 {
                    let row = &a[i * n..(i + 1) * n];
                    for (yv, av) in y.iter_mut().zip(row) {
                        *yv += xv * av;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference implementation. Mirrors the BLAS `sgemm` signature.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let av = match ta {
                        Transpose::No => a[i * k + p],
                        Transpose::Yes => a[p * m + i],
                    };
                    let bv = match tb {
                        Transpose::No => b[p * n + j],
                        Transpose::Yes => b[j * k + p],
                    };
                    acc += av * bv;
                }
                c[i * n + j] = alpha * acc + beta * c[i * n + j];
            }
        }
    }

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 13) as f32 - 6.0) * scale).collect()
    }

    #[test]
    fn matches_reference_all_transpose_combos() {
        let (m, n, k) = (7, 9, 11);
        let a = seq(m * k, 0.5);
        let b = seq(k * n, 0.25);
        for &ta in &[Transpose::No, Transpose::Yes] {
            for &tb in &[Transpose::No, Transpose::Yes] {
                let mut c1 = seq(m * n, 1.0);
                let mut c2 = c1.clone();
                sgemm(ta, tb, m, n, k, 1.5, &a, &b, 0.5, &mut c1);
                reference(ta, tb, m, n, k, 1.5, &a, &b, 0.5, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-3, "{ta:?}/{tb:?}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn identity_times_matrix() {
        let n = 4;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b = seq(n * n, 1.0);
        let mut c = vec![0.0f32; n * n];
        sgemm(
            Transpose::No,
            Transpose::No,
            n,
            n,
            n,
            1.0,
            &eye,
            &b,
            0.0,
            &mut c,
        );
        assert_eq!(c, b);
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta=0 must overwrite even if C held NaN (BLAS semantics).
        let mut c = vec![f32::NAN; 4];
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        sgemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        );
        assert!(c.iter().all(|v| (*v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn alpha_zero_scales_only() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![2.0f32; 4];
        sgemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            0.0,
            &a,
            &b,
            0.5,
            &mut c,
        );
        assert!(c.iter().all(|v| (*v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn large_parallel_matches_reference() {
        let (m, n, k) = (128, 96, 64);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, 0.2);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c1,
        );
        reference(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c2,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (m, n, k) = (64, 64, 64);
        let a = seq(m * k, 0.3);
        let b = seq(k * n, 0.7);
        let run = || {
            let mut c = vec![0.0f32; m * n];
            sgemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            );
            c
        };
        assert_eq!(run(), run()); // bitwise
    }

    #[test]
    fn gemv_no_trans() {
        // [1 2; 3 4] * [1, 1] = [3, 7]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0; 2];
        sgemv(Transpose::No, 2, 2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn gemv_trans() {
        // A^T * x with A=[1 2; 3 4], x=[1,1] -> [4, 6]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0; 2];
        sgemv(Transpose::Yes, 2, 2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "A size mismatch")]
    fn dimension_checked() {
        let mut c = vec![0.0f32; 4];
        sgemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &[1.0; 3],
            &[1.0; 4],
            0.0,
            &mut c,
        );
    }
}
