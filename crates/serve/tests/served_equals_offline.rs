//! Served batch outputs must be bitwise-equal to an offline `nn::Net`
//! forward over the same requests — serving adds batching and scheduling,
//! never arithmetic.

use gpu_sim::DeviceProps;
use nn::models::spec_by_name;
use nn::{DispatchMode, ExecCtx, Net};
use serve::{BatchPolicy, ServeConfig, ServingEngine};

fn config(mode: DispatchMode) -> ServeConfig {
    ServeConfig {
        device: DeviceProps::titan_xp(),
        mode,
        model: "CIFAR10".to_string(),
        rate_rps: 1000.0,
        num_requests: 32,
        policy: BatchPolicy::new(8, 1_000_000),
        queue_capacity: 64,
        seed: 1234,
    }
}

/// Offline reference: a fresh net from the same inference spec and seed,
/// forwarded naively over the same request ids.
fn offline_outputs(cfg: &ServeConfig, ids: &[u64]) -> Vec<Vec<f32>> {
    let spec = spec_by_name(&cfg.model, cfg.policy.max_batch, cfg.seed)
        .unwrap()
        .inference();
    let mut net = Net::from_spec(&spec);
    let mut ctx = ExecCtx::naive(cfg.device.clone());
    ServingEngine::fill_inputs(&mut net, &spec, ids);
    net.forward_inference(&mut ctx);
    let out = net.blob(spec.final_top().unwrap());
    let per = out.count() / ids.len();
    out.data().chunks(per).map(<[f32]>::to_vec).collect()
}

fn assert_bitwise_eq(a: &[Vec<f32>], b: &[Vec<f32>]) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn served_batches_match_offline_forward_in_every_mode() {
    let ids: Vec<u64> = (0..5).collect();
    for mode in [
        DispatchMode::Naive,
        DispatchMode::FixedStreams(4),
        DispatchMode::Glp4nn,
    ] {
        let cfg = config(mode);
        let mut engine = ServingEngine::new(&cfg).unwrap();
        let served = engine.forward_batch(&ids);
        assert_eq!(served.len(), ids.len());
        assert!(served.iter().all(|row| row.len() == 10)); // CIFAR10 classes
        assert_bitwise_eq(&served, &offline_outputs(&cfg, &ids));
    }
}

#[test]
fn varying_batch_sizes_reuse_one_net_without_drift() {
    // Feed the engine batches of varying size (as the dynamic batcher
    // does) and check every batch against an offline forward of exactly
    // those requests. Parameters must not drift across dispatches, and
    // the per-request outputs must not depend on which batch served them.
    let cfg = config(DispatchMode::Glp4nn);
    let mut engine = ServingEngine::new(&cfg).unwrap();
    engine.warmup(cfg.policy.max_batch);
    let mut next_id = 0u64;
    for k in [3usize, 8, 1, 5, 8, 2] {
        let ids: Vec<u64> = (next_id..next_id + k as u64).collect();
        next_id += k as u64;
        let served = engine.forward_batch(&ids);
        assert_bitwise_eq(&served, &offline_outputs(&cfg, &ids));
    }
}

#[test]
fn request_output_is_independent_of_batch_composition() {
    let cfg = config(DispatchMode::Glp4nn);
    let mut engine = ServingEngine::new(&cfg).unwrap();
    // Request 7 served alone...
    let alone = engine.forward_batch(&[7])[0].clone();
    // ...and inside a full batch of unrelated requests.
    let batch_ids: Vec<u64> = vec![3, 9, 7, 21, 4];
    let in_batch = engine.forward_batch(&batch_ids)[2].clone();
    for (x, y) in alone.iter().zip(&in_batch) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
