//! `ClassQueue` under continuous admission: interleaved admits, wave
//! pops, and deadline expiry — the access pattern the fleet event loop
//! drives. Includes the conservation property: no admitted request is
//! ever lost or double-executed.

use proptest::prelude::*;
use serve::{Admission, ClassQueue, ClassedRequest};
use std::collections::BTreeSet;

fn creq(id: u64, class: usize, arrival_ns: u64, deadline_ns: u64) -> ClassedRequest {
    ClassedRequest {
        id,
        class,
        arrival_ns,
        deadline_ns,
    }
}

#[test]
fn continuous_admission_interleaves_waves_and_arrivals() {
    let mut q = ClassQueue::new(2, 8);
    // Wave 1 forms from the first arrivals...
    q.admit(creq(0, 1, 10, u64::MAX));
    q.admit(creq(1, 0, 20, u64::MAX));
    let w1: Vec<u64> = q.pop_wave(2).iter().map(|r| r.id).collect();
    assert_eq!(w1, [1, 0]);
    // ...and requests arriving "while it executes" join the next wave
    // without waiting for a drain barrier.
    q.admit(creq(2, 1, 30, u64::MAX));
    q.admit(creq(3, 0, 35, u64::MAX));
    q.admit(creq(4, 1, 40, u64::MAX));
    let w2: Vec<u64> = q.pop_wave(8).iter().map(|r| r.id).collect();
    assert_eq!(w2, [3, 2, 4]);
    assert!(q.is_empty());
}

#[test]
fn shedding_order_protects_premium_lanes_under_overload() {
    let mut q = ClassQueue::new(3, 4);
    // Fill with best-effort (class 2) work.
    for id in 0..4 {
        assert_eq!(q.admit(creq(id, 2, id * 10, u64::MAX)), Admission::Admitted);
    }
    // Premium arrivals displace best-effort work youngest-first, so the
    // oldest best-effort requests keep their place the longest.
    assert_eq!(
        q.admit(creq(10, 0, 100, u64::MAX)),
        Admission::Preempted(creq(3, 2, 30, u64::MAX))
    );
    assert_eq!(
        q.admit(creq(11, 0, 110, u64::MAX)),
        Admission::Preempted(creq(2, 2, 20, u64::MAX))
    );
    // A mid-tier arrival also preempts best-effort...
    assert_eq!(
        q.admit(creq(12, 1, 120, u64::MAX)),
        Admission::Preempted(creq(1, 2, 10, u64::MAX))
    );
    // ...but best-effort arrivals can never displace anyone.
    assert_eq!(
        q.admit(creq(13, 2, 130, u64::MAX)),
        Admission::Shed(creq(13, 2, 130, u64::MAX))
    );
    assert_eq!(q.shed_count(), 4);
    // Waves still serve premium-first.
    let order: Vec<u64> = q.pop_wave(8).iter().map(|r| r.id).collect();
    assert_eq!(order, [10, 11, 12, 0]);
}

#[test]
fn deadline_expiry_runs_between_waves() {
    let mut q = ClassQueue::new(2, 8);
    q.admit(creq(0, 0, 0, 500));
    q.admit(creq(1, 1, 10, 200));
    q.admit(creq(2, 1, 20, u64::MAX));
    // Nothing dead yet at t=100.
    assert!(q.expire(100).is_empty());
    // By t=300 request 1 has expired; it must never occupy a wave slot.
    let dead: Vec<u64> = q.expire(300).iter().map(|r| r.id).collect();
    assert_eq!(dead, [1]);
    let wave: Vec<u64> = q.pop_wave(8).iter().map(|r| r.id).collect();
    assert_eq!(wave, [0, 2]);
    assert_eq!(q.expired_count(), 1);
}

/// One step of a randomized continuous-admission schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Admit a request of this class with this deadline slack (ns).
    Admit { class: usize, slack: u64 },
    /// Close a wave of up to this many requests.
    PopWave(usize),
    /// Advance time by this much and evict expired requests.
    Expire(u64),
}

fn arb_op(num_classes: usize) -> impl Strategy<Value = Op> {
    // Tagged tuple instead of `prop_oneof!` (not in the offline shim);
    // admits are twice as likely so queues actually fill up.
    (
        0u32..4,
        0..num_classes,
        1_000u64..2_000_000,
        1usize..12,
        10_000u64..600_000,
    )
        .prop_map(|(kind, class, slack, n, dt)| match kind {
            0 | 1 => Op::Admit { class, slack },
            2 => Op::PopWave(n),
            _ => Op::Expire(dt),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation under continuous admission: every admitted request
    /// ends up in exactly one of {executed, expired, preempted, still
    /// queued} — none lost, none double-executed — and the counters
    /// agree with the observed outcomes.
    #[test]
    fn no_admitted_request_is_lost_or_double_executed(
        ops in prop::collection::vec(arb_op(3), 1..200),
        capacity in 1usize..24,
    ) {
        let mut q = ClassQueue::new(3, capacity);
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut admitted = BTreeSet::new();
        let mut executed = BTreeSet::new();
        let mut expired = BTreeSet::new();
        let mut preempted = BTreeSet::new();
        let mut shed_on_arrival = 0usize;

        for op in &ops {
            match *op {
                Op::Admit { class, slack } => {
                    now += 1;
                    let r = creq(next_id, class, now, now + slack);
                    next_id += 1;
                    match q.admit(r) {
                        Admission::Admitted => {
                            prop_assert!(admitted.insert(r.id));
                        }
                        Admission::Preempted(victim) => {
                            prop_assert!(admitted.insert(r.id));
                            prop_assert!(
                                admitted.contains(&victim.id),
                                "preempted a request that was never admitted"
                            );
                            prop_assert!(victim.class > r.class);
                            prop_assert!(preempted.insert(victim.id));
                        }
                        Admission::Shed(back) => {
                            prop_assert_eq!(back.id, r.id);
                            shed_on_arrival += 1;
                        }
                    }
                }
                Op::PopWave(n) => {
                    for r in q.pop_wave(n) {
                        prop_assert!(admitted.contains(&r.id), "executed unadmitted request");
                        prop_assert!(r.deadline_ns > now, "executed an expired request");
                        prop_assert!(executed.insert(r.id), "double-executed request {}", r.id);
                    }
                }
                Op::Expire(dt) => {
                    now += dt;
                    for r in q.expire(now) {
                        prop_assert!(r.deadline_ns <= now);
                        prop_assert!(expired.insert(r.id), "double-expired request {}", r.id);
                    }
                }
            }
        }

        // Drain whatever is still queued; it must be exactly the admitted
        // requests with no other recorded fate.
        let queued: BTreeSet<u64> = q.pop_wave(usize::MAX).iter().map(|r| r.id).collect();

        // The four fates are disjoint...
        prop_assert!(executed.is_disjoint(&expired));
        prop_assert!(executed.is_disjoint(&preempted));
        prop_assert!(executed.is_disjoint(&queued));
        prop_assert!(expired.is_disjoint(&preempted));
        prop_assert!(expired.is_disjoint(&queued));
        prop_assert!(preempted.is_disjoint(&queued));
        // ...and together cover every admitted request exactly.
        let mut fates = BTreeSet::new();
        fates.extend(&executed);
        fates.extend(&expired);
        fates.extend(&preempted);
        fates.extend(&queued);
        prop_assert_eq!(&fates, &admitted);
        // Counter cross-checks.
        prop_assert_eq!(q.shed_count(), preempted.len() + shed_on_arrival);
        prop_assert_eq!(q.expired_count(), expired.len());
    }
}
