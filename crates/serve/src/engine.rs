//! The serving event loop: admission, batching, and inference dispatch in
//! simulated time.

use crate::arrivals::PoissonArrivals;
use crate::batcher::BatchDecision;
use crate::config::ServeConfig;
use crate::metrics::{throughput_rps, LatencyStats};
use crate::queue::BoundedQueue;
use crate::request::{fill_sample, Completion};
use gpu_sim::{Device, SimTime};
use nn::models::{spec_by_name, UnknownModelError};
use nn::{DispatchMode, ExecCtx, Net, NetSpec};
use sanitizer::{SanitizeMode, Sanitizer};

/// Summary of one serving run. All times come off the simulated device
/// clock, so two runs of the same [`ServeConfig`] are identical.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at admission (queue full).
    pub shed: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// First arrival to last completion (ns).
    pub makespan_ns: SimTime,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// End-to-end latency distribution (queueing + device time).
    pub latency: LatencyStats,
}

/// An inference server: one model instance on one simulated device,
/// forwarding dynamic batches through [`Net::forward_inference`].
///
/// The net is built once from the model's inference spec (trailing
/// loss/accuracy layers stripped), so parameters persist across batches
/// and match an offline net built from the same spec and seed. Input
/// blobs are resized to each batch's size before dispatch; under GLP4NN
/// the plan cache keys per layer x chunk count, so each batch size is
/// profiled once and then served from its cached concurrency plan.
pub struct ServingEngine {
    ctx: ExecCtx,
    net: Net,
    spec: NetSpec,
    output_blob: String,
    telemetry: telemetry::RecorderSlot,
}

/// Construction options beyond the [`ServeConfig`]: fleet replicas run
/// timing-only (latency/throughput studies don't need the real CPU math)
/// and optionally under the schedule sanitizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions {
    /// Skip layer arithmetic; simulate kernel timing only.
    pub timing_only: bool,
    /// Attach the schedule sanitizer in this mode.
    pub sanitize: Option<SanitizeMode>,
}

/// Timing of one dispatched wave (see [`ServingEngine::run_wave`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveTiming {
    /// When the wave's forward started on the device (ns).
    pub start_ns: SimTime,
    /// When the wave completed (ns).
    pub done_ns: SimTime,
}

impl ServingEngine {
    /// Build the engine for a configuration (device, mode, model, seed).
    pub fn new(config: &ServeConfig) -> Result<Self, UnknownModelError> {
        Self::new_with(config, EngineOptions::default())
    }

    /// Build the engine with explicit [`EngineOptions`].
    pub fn new_with(config: &ServeConfig, opts: EngineOptions) -> Result<Self, UnknownModelError> {
        let spec = spec_by_name(&config.model, config.policy.max_batch, config.seed)?.inference();
        let output_blob = spec
            .final_top()
            .expect("inference spec has no layers")
            .to_string();
        let mut ctx = match config.mode {
            DispatchMode::Glp4nn => ExecCtx::glp4nn(config.device.clone()),
            mode => ExecCtx::with_mode(config.device.clone(), mode),
        };
        if opts.timing_only {
            ctx = ctx.timing_only();
        }
        if let Some(mode) = opts.sanitize {
            ctx = ctx.sanitize(mode);
        }
        Ok(ServingEngine {
            net: Net::from_spec(&spec),
            ctx,
            spec,
            output_blob,
            telemetry: telemetry::RecorderSlot::empty(),
        })
    }

    /// Attach a shared telemetry recorder: the device records kernel spans
    /// under pid 0, and the serving loop records request/batch lifecycle
    /// spans under [`telemetry::SERVE_PID`]. Observation only.
    pub fn set_telemetry(&mut self, rec: telemetry::SharedRecorder) {
        self.set_telemetry_as(rec, 0);
    }

    /// Like [`set_telemetry`](Self::set_telemetry) with an explicit
    /// Chrome-trace process id for the device — the fleet gives every
    /// replica its own pid so traces render one process per replica.
    pub fn set_telemetry_as(&mut self, rec: telemetry::SharedRecorder, pid: u32) {
        self.ctx.set_telemetry(std::sync::Arc::clone(&rec), pid);
        self.telemetry.attach(rec);
    }

    /// Detach the shared telemetry recorder.
    pub fn clear_telemetry(&mut self) {
        self.ctx.clear_telemetry();
        self.telemetry.clear();
    }

    /// Name the processes/threads this engine records under (call once
    /// before export).
    pub fn annotate_telemetry(&self, t: &mut telemetry::Telemetry) {
        self.ctx.device.annotate_telemetry(t);
        t.set_process_name(telemetry::SERVE_PID, "serve");
        t.set_thread_name(telemetry::SERVE_PID, 0, "batches");
    }

    /// Fill `net`'s input blobs for a batch of request ids, resizing every
    /// input's leading (batch) dimension to the batch size. Sample
    /// payloads depend only on the request id and the input's position, so
    /// an offline net fed the same ids sees identical inputs.
    pub fn fill_inputs(net: &mut Net, spec: &NetSpec, ids: &[u64]) {
        for (ii, (name, shape)) in spec.inputs.iter().enumerate() {
            let mut dims = shape.clone();
            dims[0] = ids.len();
            let blob = net.blob_mut(name);
            blob.resize(&dims);
            if dims.len() > 1 {
                let per: usize = dims[1..].iter().product();
                for (s, &id) in ids.iter().enumerate() {
                    let slice = &mut blob.data_mut()[s * per..(s + 1) * per];
                    fill_sample(slice, id.wrapping_add((ii as u64) << 32));
                }
            } else {
                // Label-style inputs are unused by the inference spec.
                blob.data_mut().fill(0.0);
            }
        }
    }

    /// Forward one batch of requests; returns each request's output row
    /// (the final top blob, split per sample).
    pub fn forward_batch(&mut self, ids: &[u64]) -> Vec<Vec<f32>> {
        assert!(!ids.is_empty(), "empty batch");
        Self::fill_inputs(&mut self.net, &self.spec, ids);
        self.net.forward_inference(&mut self.ctx);
        let out = self.net.blob(&self.output_blob);
        let per = out.count() / ids.len();
        out.data().chunks(per).map(<[f32]>::to_vec).collect()
    }

    /// Profile every batch size the policy can produce (1..=max_batch)
    /// before measurement, so GLP4NN's one-time profiling pass per batch
    /// shape is excluded from steady-state serving metrics — the serving
    /// analogue of the paper's profile-once-then-concurrent workflow.
    ///
    /// Each size runs twice: the first pass profiles (under GLP4NN) and
    /// the second captures the frozen execution plan, so every
    /// steady-state batch of a warmed size is a pure plan replay (see
    /// [`plan_captures`](Self::plan_captures)).
    pub fn warmup(&mut self, max_batch: usize) {
        for k in 1..=max_batch {
            let ids: Vec<u64> = (0..k as u64).map(|i| u64::MAX - i).collect();
            let _ = self.forward_batch(&ids);
            let _ = self.forward_batch(&ids);
        }
    }

    /// How many execution plans the context has captured so far (see
    /// [`ExecCtx::plan_captures`]). After [`warmup`](Self::warmup) this
    /// stops moving: batches of already-seen sizes replay their cached
    /// plan without re-analysis or re-validation.
    pub fn plan_captures(&self) -> u64 {
        self.ctx.plan_captures()
    }

    /// Current simulated device time (ns).
    pub fn now(&self) -> SimTime {
        self.ctx.device.now()
    }

    /// Fast-forward the idle device clock (between batches).
    pub fn advance_to(&mut self, t: SimTime) {
        self.ctx.device.advance_to(t);
    }

    /// The inference spec the engine serves.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The incremental admission path: dispatch one wave of requests no
    /// earlier than `not_before` (a fleet event loop's global clock) and
    /// return its device-time span. The caller owns queueing — this is
    /// the half of continuous batching that belongs to the engine:
    /// accept whatever the admission queue closed into the wave, replay
    /// the warm plan for that batch size, and report exactly when the
    /// engine becomes free for the next wave.
    ///
    /// # Panics
    /// Panics on an empty wave.
    pub fn run_wave(&mut self, ids: &[u64], not_before: SimTime) -> WaveTiming {
        self.ctx.device.advance_to(not_before);
        let start_ns = self.now();
        let _ = self.forward_batch(ids);
        WaveTiming {
            start_ns,
            done_ns: self.now(),
        }
    }

    /// The simulated device this engine serves on (for fleet-level
    /// stats, merged timelines and cross-device sanitizing).
    pub fn device(&self) -> &Device {
        &self.ctx.device
    }

    /// The schedule sanitizer attached via [`EngineOptions::sanitize`]
    /// (its diagnostics accumulate during dispatch).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.ctx.sanitizer
    }
}

/// Run a full serving experiment: warmup, Poisson arrivals, dynamic
/// batching, and metrics over the simulated clock.
pub fn run_serving(config: &ServeConfig) -> Result<ServingReport, UnknownModelError> {
    run_serving_traced(config, None)
}

/// Like [`run_serving`], with an optional shared telemetry recorder
/// attached after warmup: kernel spans land under pid 0, request/batch
/// lifecycle spans under [`telemetry::SERVE_PID`], and queue/batch/latency
/// metrics in the registry. Attaching changes nothing about the schedule —
/// the report is identical either way.
pub fn run_serving_traced(
    config: &ServeConfig,
    rec: Option<telemetry::SharedRecorder>,
) -> Result<ServingReport, UnknownModelError> {
    let mut engine = ServingEngine::new(config)?;
    engine.warmup(config.policy.max_batch);
    if let Some(rec) = rec {
        // Attach after warmup so the trace covers steady-state serving.
        engine.set_telemetry(rec);
    }

    // Measurement starts after warmup; arrivals are offset to the warm
    // clock so queueing delays are never negative.
    let t0 = engine.now();
    let mut arrivals = PoissonArrivals::new(config.rate_rps, t0, config.seed);
    let pending = arrivals.take(config.num_requests);
    let mut next = 0usize;

    let mut queue = BoundedQueue::new(config.queue_capacity);
    let mut completions: Vec<Completion> = Vec::with_capacity(config.num_requests);
    let mut batches = 0usize;
    let mut batched_total = 0usize;

    loop {
        let now = engine.now();
        // Admit everything that has arrived by the current simulated time
        // (in arrival order; the queue sheds when full).
        while next < pending.len() && pending[next].arrival_ns <= now {
            queue.admit(pending[next]);
            next += 1;
        }

        match config.policy.decide(now, &queue) {
            BatchDecision::Fire(k) => {
                let depth = queue.len();
                let batch = queue.pop_batch(k);
                let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
                let start = engine.now();
                let _ = engine.forward_batch(&ids);
                let done = engine.now();
                batches += 1;
                batched_total += batch.len();
                engine.telemetry.with(|rec| {
                    use telemetry::SERVE_PID;
                    rec.span(
                        SERVE_PID,
                        0,
                        &format!("batch x{}", batch.len()),
                        "serve",
                        start,
                        done,
                    );
                    rec.counter_add("serve.batches", 1);
                    rec.gauge_set("serve.queue_depth", depth as f64);
                    rec.observe("serve.queue_depth", depth as u64);
                    rec.observe("serve.batch_size", batch.len() as u64);
                });
                for r in &batch {
                    engine.telemetry.with(|rec| {
                        use telemetry::SERVE_PID;
                        let tid = 1 + r.id;
                        let name = format!("request {}", r.id);
                        rec.span(SERVE_PID, tid, &name, "serve", r.arrival_ns, done);
                        if start > r.arrival_ns {
                            rec.span(SERVE_PID, tid, "queued", "serve", r.arrival_ns, start);
                        }
                        rec.span(SERVE_PID, tid, "exec", "serve", start, done);
                        rec.counter_add("serve.completed", 1);
                        rec.observe("serve.latency_ns", done - r.arrival_ns);
                    });
                    completions.push(Completion {
                        id: r.id,
                        arrival_ns: r.arrival_ns,
                        start_ns: start,
                        done_ns: done,
                    });
                }
            }
            BatchDecision::WaitUntil(deadline) => {
                // Wake at the delay deadline or the next arrival,
                // whichever is earlier.
                let mut t = deadline;
                if next < pending.len() {
                    t = t.min(pending[next].arrival_ns);
                }
                engine.advance_to(t.max(now + 1));
            }
            BatchDecision::Idle => {
                if next >= pending.len() {
                    break; // every request completed or shed
                }
                engine.advance_to(pending[next].arrival_ns);
            }
        }
    }

    let first_arrival = pending.first().map(|r| r.arrival_ns).unwrap_or(t0);
    let last_done = completions.iter().map(|c| c.done_ns).max().unwrap_or(t0);
    let makespan_ns = last_done.saturating_sub(first_arrival);
    // At least the first request is always admitted and served, so the
    // latency summary exists whenever num_requests > 0.
    let latency =
        LatencyStats::from_completions(&completions).expect("serving run with zero completions");
    engine.telemetry.with(|rec| {
        rec.counter_add("serve.shed", queue.shed_count() as u64);
        rec.gauge_set(
            "serve.throughput_rps",
            throughput_rps(completions.len(), makespan_ns),
        );
    });
    Ok(ServingReport {
        completed: completions.len(),
        shed: queue.shed_count(),
        batches,
        mean_batch: batched_total as f64 / batches.max(1) as f64,
        makespan_ns,
        throughput_rps: throughput_rps(completions.len(), makespan_ns),
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use gpu_sim::DeviceProps;

    fn smoke_config(mode: DispatchMode) -> ServeConfig {
        ServeConfig {
            device: DeviceProps::p100(),
            mode,
            model: "CIFAR10".to_string(),
            rate_rps: 2000.0,
            num_requests: 60,
            policy: BatchPolicy::new(4, 2_000_000),
            queue_capacity: 256,
            seed: 11,
        }
    }

    #[test]
    fn unknown_model_is_an_error() {
        let mut c = smoke_config(DispatchMode::Naive);
        c.model = "ResNet".to_string();
        assert!(run_serving(&c).is_err());
    }

    #[test]
    fn serving_completes_all_requests_when_not_overloaded() {
        let r = run_serving(&smoke_config(DispatchMode::Naive)).unwrap();
        assert_eq!(r.completed, 60);
        assert_eq!(r.shed, 0);
        assert!(r.batches > 0 && r.batches <= 60);
        assert!(r.mean_batch >= 1.0 && r.mean_batch <= 4.0);
        assert!(r.throughput_rps > 0.0);
        assert!(r.latency.p50_ns <= r.latency.p95_ns);
        assert!(r.latency.p95_ns <= r.latency.p99_ns);
        assert!(r.latency.p99_ns <= r.latency.max_ns);
    }

    #[test]
    fn serving_is_deterministic() {
        let cfg = smoke_config(DispatchMode::Glp4nn);
        let a = run_serving(&cfg).unwrap();
        let b = run_serving(&cfg).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.throughput_rps.to_bits(), b.throughput_rps.to_bits());
    }

    #[test]
    fn glp4nn_serves_no_slower_than_naive() {
        let naive = run_serving(&smoke_config(DispatchMode::Naive)).unwrap();
        let glp = run_serving(&smoke_config(DispatchMode::Glp4nn)).unwrap();
        assert_eq!(naive.completed, glp.completed);
        assert!(
            glp.throughput_rps >= naive.throughput_rps,
            "GLP4NN {} rps < naive {} rps",
            glp.throughput_rps,
            naive.throughput_rps
        );
    }

    #[test]
    fn steady_state_serving_is_pure_replay() {
        for mode in [
            DispatchMode::Naive,
            DispatchMode::FixedStreams(4),
            DispatchMode::Glp4nn,
        ] {
            let cfg = smoke_config(mode);
            let mut engine = ServingEngine::new(&cfg).unwrap();
            engine.warmup(4);
            let warm = engine.plan_captures();
            assert!(warm > 0, "warmup must capture plans ({mode:?})");
            for rep in 0..3u64 {
                for k in 1..=4usize {
                    let ids: Vec<u64> = (0..k as u64).map(|i| 1000 + rep * 10 + i).collect();
                    let _ = engine.forward_batch(&ids);
                }
            }
            assert_eq!(
                engine.plan_captures(),
                warm,
                "steady-state batches must be pure plan replays ({mode:?})"
            );
        }
    }

    #[test]
    fn overload_sheds_but_still_serves() {
        let mut c = smoke_config(DispatchMode::Naive);
        // A burst far beyond the queue: arrivals at 1M rps with a tiny
        // queue must shed most requests yet serve the admitted ones.
        c.rate_rps = 1_000_000.0;
        c.num_requests = 200;
        c.queue_capacity = 8;
        let r = run_serving(&c).unwrap();
        assert!(r.shed > 0, "overload must shed");
        assert_eq!(r.completed + r.shed, 200);
        assert!(r.completed >= 8);
    }
}
