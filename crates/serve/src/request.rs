//! Requests, completions, and deterministic request payloads.

use gpu_sim::SimTime;

/// One inference request: a single sample awaiting service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotonically increasing request id (doubles as the payload seed).
    pub id: u64,
    /// Simulated arrival time (ns).
    pub arrival_ns: SimTime,
}

/// A served request with its full timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Simulated arrival time (ns).
    pub arrival_ns: SimTime,
    /// When its batch started executing (ns).
    pub start_ns: SimTime,
    /// When its batch finished (ns).
    pub done_ns: SimTime,
}

impl Completion {
    /// End-to-end latency: queueing delay + device time (ns).
    pub fn latency_ns(&self) -> SimTime {
        self.done_ns - self.arrival_ns
    }
}

/// Fill one sample's input slice with the request's deterministic payload.
///
/// The pattern depends only on the request id, so an offline forward over
/// the same ids reproduces the served inputs exactly — the basis of the
/// served-equals-offline integration test.
pub fn fill_sample(sample: &mut [f32], id: u64) {
    for (j, v) in sample.iter_mut().enumerate() {
        let h = id.wrapping_mul(31).wrapping_add(j as u64 * 7) % 251;
        *v = (h as f32 - 125.0) * 0.01;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_done_minus_arrival() {
        let c = Completion {
            id: 0,
            arrival_ns: 100,
            start_ns: 150,
            done_ns: 400,
        };
        assert_eq!(c.latency_ns(), 300);
    }

    #[test]
    fn payloads_are_deterministic_and_id_dependent() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        let mut c = vec![0.0f32; 64];
        fill_sample(&mut a, 3);
        fill_sample(&mut b, 3);
        fill_sample(&mut c, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| v.abs() <= 1.26));
    }
}
