//! Bounded admission queues with load shedding: the original FIFO
//! [`BoundedQueue`], and the class-aware [`ClassQueue`] the serving fleet
//! uses under continuous admission — per-tenant priority lanes, shed
//! order that preempts the lowest class first, and deadline-expiry
//! eviction.

use crate::request::Request;
use gpu_sim::SimTime;
use std::collections::VecDeque;

/// A FIFO admission queue with a hard capacity. Requests arriving while
/// the queue is full are shed (rejected) rather than admitted — the
/// standard protection for a serving system against unbounded queueing
/// delay under overload.
#[derive(Debug)]
pub struct BoundedQueue {
    items: VecDeque<Request>,
    capacity: usize,
    shed: usize,
}

impl BoundedQueue {
    /// An empty queue admitting at most `capacity` requests.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            shed: 0,
        }
    }

    /// Admit a request, or shed it if the queue is full. Returns whether
    /// the request was admitted.
    pub fn admit(&mut self, r: Request) -> bool {
        if self.items.len() >= self.capacity {
            self.shed += 1;
            false
        } else {
            self.items.push_back(r);
            true
        }
    }

    /// The oldest waiting request, if any.
    pub fn head(&self) -> Option<&Request> {
        self.items.front()
    }

    /// Remove and return up to `n` requests in arrival order.
    pub fn pop_batch(&mut self, n: usize) -> Vec<Request> {
        let k = n.min(self.items.len());
        self.items.drain(..k).collect()
    }

    /// Waiting requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> usize {
        self.shed
    }
}

/// A request tagged with its tenant priority class and SLO deadline —
/// the admission unit of the serving fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassedRequest {
    /// Request id (unique within a run).
    pub id: u64,
    /// Priority class index: `0` is the *highest* priority.
    pub class: usize,
    /// Simulated arrival time (ns).
    pub arrival_ns: SimTime,
    /// Absolute completion deadline (ns); [`SimTime::MAX`] for none.
    /// A queued request past its deadline is evicted rather than served.
    pub deadline_ns: SimTime,
}

/// Outcome of a [`ClassQueue::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted; capacity was available.
    Admitted,
    /// The request was admitted by shedding a queued request of a
    /// strictly lower priority class (returned for accounting).
    Preempted(ClassedRequest),
    /// The queue was full of equal-or-higher-priority work; the request
    /// itself was shed (returned for accounting).
    Shed(ClassedRequest),
}

/// A bounded admission queue with per-class priority lanes.
///
/// Capacity is shared across classes. When full, an arriving request
/// preempts the *youngest* queued request of the *lowest* priority class
/// below its own — so under overload the best-effort lane drains first
/// and the premium lanes keep their capacity (shedding order). Waves pop
/// in `(class priority, FIFO)` order, and [`expire`](ClassQueue::expire)
/// evicts queued requests whose deadline has already passed.
#[derive(Debug, Clone)]
pub struct ClassQueue {
    /// `lanes[c]` holds class `c`'s waiting requests in arrival order.
    lanes: Vec<VecDeque<ClassedRequest>>,
    capacity: usize,
    len: usize,
    shed: usize,
    expired: usize,
}

impl ClassQueue {
    /// An empty queue with `num_classes` priority lanes sharing
    /// `capacity` slots.
    ///
    /// # Panics
    /// Panics if `num_classes` or `capacity` is zero.
    pub fn new(num_classes: usize, capacity: usize) -> Self {
        assert!(num_classes > 0, "need at least one priority class");
        assert!(capacity > 0, "queue capacity must be positive");
        ClassQueue {
            lanes: vec![VecDeque::new(); num_classes],
            capacity,
            len: 0,
            shed: 0,
            expired: 0,
        }
    }

    /// Admit a request, preempting lower-priority queued work when full.
    ///
    /// # Panics
    /// Panics if the request's class is outside the queue's lanes.
    pub fn admit(&mut self, r: ClassedRequest) -> Admission {
        assert!(
            r.class < self.lanes.len(),
            "class {} outside {} lanes",
            r.class,
            self.lanes.len()
        );
        if self.len < self.capacity {
            self.lanes[r.class].push_back(r);
            self.len += 1;
            return Admission::Admitted;
        }
        // Full: shed the youngest request of the lowest-priority
        // non-empty lane strictly below the newcomer's class.
        for lane in (r.class + 1..self.lanes.len()).rev() {
            if let Some(victim) = self.lanes[lane].pop_back() {
                self.shed += 1;
                self.lanes[r.class].push_back(r);
                return Admission::Preempted(victim);
            }
        }
        self.shed += 1;
        Admission::Shed(r)
    }

    /// Evict every queued request whose deadline has passed at `now`,
    /// returning them (oldest class lane first, FIFO within a lane) for
    /// SLO accounting.
    pub fn expire(&mut self, now: SimTime) -> Vec<ClassedRequest> {
        let mut evicted = Vec::new();
        for lane in &mut self.lanes {
            lane.retain(|r| {
                if r.deadline_ns <= now {
                    evicted.push(*r);
                    false
                } else {
                    true
                }
            });
        }
        self.len -= evicted.len();
        self.expired += evicted.len();
        evicted
    }

    /// Remove and return up to `n` requests: highest-priority lane first,
    /// arrival order within a lane. Call [`expire`](ClassQueue::expire)
    /// first so dead requests never occupy a wave slot.
    pub fn pop_wave(&mut self, n: usize) -> Vec<ClassedRequest> {
        let mut wave = Vec::with_capacity(n.min(self.len));
        for lane in &mut self.lanes {
            while wave.len() < n {
                match lane.pop_front() {
                    Some(r) => wave.push(r),
                    None => break,
                }
            }
        }
        self.len -= wave.len();
        wave
    }

    /// Arrival time of the oldest waiting request, if any (drives the
    /// batcher's delay trigger).
    pub fn oldest_arrival(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(|l| l.front().map(|r| r.arrival_ns))
            .min()
    }

    /// Waiting requests across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Waiting requests of one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.lanes.get(class).map_or(0, VecDeque::len)
    }

    /// Number of priority lanes.
    pub fn num_classes(&self) -> usize {
        self.lanes.len()
    }

    /// Shared capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests shed so far (at admission or by preemption).
    pub fn shed_count(&self) -> usize {
        self.shed
    }

    /// Requests evicted past their deadline so far.
    pub fn expired_count(&self) -> usize {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, t: u64) -> Request {
        Request { id, arrival_ns: t }
    }

    #[test]
    fn sheds_when_full() {
        let mut q = BoundedQueue::new(2);
        assert!(q.admit(req(0, 10)));
        assert!(q.admit(req(1, 20)));
        assert!(!q.admit(req(2, 30)), "third request must be shed");
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed_count(), 1);
        // Draining frees capacity again.
        q.pop_batch(1);
        assert!(q.admit(req(3, 40)));
        assert_eq!(q.shed_count(), 1);
    }

    #[test]
    fn pop_batch_preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.admit(req(i, i * 10));
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(q.head().unwrap().id, 3);
        // Requesting more than available returns what's left.
        assert_eq!(q.pop_batch(10).len(), 2);
        assert!(q.is_empty());
    }

    fn creq(id: u64, class: usize, t: u64) -> ClassedRequest {
        ClassedRequest {
            id,
            class,
            arrival_ns: t,
            deadline_ns: SimTime::MAX,
        }
    }

    #[test]
    fn waves_pop_by_class_then_fifo() {
        let mut q = ClassQueue::new(3, 16);
        q.admit(creq(0, 2, 10));
        q.admit(creq(1, 0, 20));
        q.admit(creq(2, 1, 30));
        q.admit(creq(3, 0, 40));
        let wave = q.pop_wave(3);
        assert_eq!(wave.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 3, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_wave(8).iter().map(|r| r.id).collect::<Vec<_>>(), [0]);
    }

    #[test]
    fn full_queue_preempts_lowest_class_youngest_first() {
        let mut q = ClassQueue::new(3, 3);
        q.admit(creq(0, 1, 10));
        q.admit(creq(1, 2, 20));
        q.admit(creq(2, 2, 30));
        // Queue full. A class-0 arrival preempts the *youngest* class-2
        // request (id 2), not the older one.
        assert_eq!(
            q.admit(creq(3, 0, 40)),
            Admission::Preempted(creq(2, 2, 30))
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed_count(), 1);
        // Another class-0 arrival takes the remaining class-2 slot.
        assert_eq!(
            q.admit(creq(4, 0, 50)),
            Admission::Preempted(creq(1, 2, 20))
        );
        // Then the class-1 slot.
        assert_eq!(
            q.admit(creq(5, 0, 60)),
            Admission::Preempted(creq(0, 1, 10))
        );
        // With only class-0 work queued, a class-0 arrival is shed itself.
        assert_eq!(q.admit(creq(6, 0, 70)), Admission::Shed(creq(6, 0, 70)));
        // And a lower-class arrival can never displace higher-class work.
        assert_eq!(q.admit(creq(7, 2, 80)), Admission::Shed(creq(7, 2, 80)));
        assert_eq!(q.shed_count(), 5);
        assert_eq!(
            q.pop_wave(8).iter().map(|r| r.id).collect::<Vec<_>>(),
            [3, 4, 5]
        );
    }

    #[test]
    fn expiry_evicts_past_deadline_requests() {
        let mut q = ClassQueue::new(2, 8);
        q.admit(ClassedRequest {
            id: 0,
            class: 0,
            arrival_ns: 0,
            deadline_ns: 100,
        });
        q.admit(ClassedRequest {
            id: 1,
            class: 1,
            arrival_ns: 10,
            deadline_ns: 50,
        });
        q.admit(creq(2, 0, 20));
        assert_eq!(q.expire(40), vec![]);
        let dead = q.expire(100);
        assert_eq!(dead.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(q.expired_count(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_wave(4).iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn oldest_arrival_spans_all_lanes() {
        let mut q = ClassQueue::new(2, 8);
        assert_eq!(q.oldest_arrival(), None);
        q.admit(creq(0, 1, 30));
        q.admit(creq(1, 0, 50));
        assert_eq!(q.oldest_arrival(), Some(30));
        q.pop_wave(1); // pops the class-0 request (id 1)
        assert_eq!(q.oldest_arrival(), Some(30));
    }
}
