//! Bounded admission queue with load shedding.

use crate::request::Request;
use std::collections::VecDeque;

/// A FIFO admission queue with a hard capacity. Requests arriving while
/// the queue is full are shed (rejected) rather than admitted — the
/// standard protection for a serving system against unbounded queueing
/// delay under overload.
#[derive(Debug)]
pub struct BoundedQueue {
    items: VecDeque<Request>,
    capacity: usize,
    shed: usize,
}

impl BoundedQueue {
    /// An empty queue admitting at most `capacity` requests.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            shed: 0,
        }
    }

    /// Admit a request, or shed it if the queue is full. Returns whether
    /// the request was admitted.
    pub fn admit(&mut self, r: Request) -> bool {
        if self.items.len() >= self.capacity {
            self.shed += 1;
            false
        } else {
            self.items.push_back(r);
            true
        }
    }

    /// The oldest waiting request, if any.
    pub fn head(&self) -> Option<&Request> {
        self.items.front()
    }

    /// Remove and return up to `n` requests in arrival order.
    pub fn pop_batch(&mut self, n: usize) -> Vec<Request> {
        let k = n.min(self.items.len());
        self.items.drain(..k).collect()
    }

    /// Waiting requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> usize {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, t: u64) -> Request {
        Request { id, arrival_ns: t }
    }

    #[test]
    fn sheds_when_full() {
        let mut q = BoundedQueue::new(2);
        assert!(q.admit(req(0, 10)));
        assert!(q.admit(req(1, 20)));
        assert!(!q.admit(req(2, 30)), "third request must be shed");
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed_count(), 1);
        // Draining frees capacity again.
        q.pop_batch(1);
        assert!(q.admit(req(3, 40)));
        assert_eq!(q.shed_count(), 1);
    }

    #[test]
    fn pop_batch_preserves_fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.admit(req(i, i * 10));
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(q.head().unwrap().id, 3);
        // Requesting more than available returns what's left.
        assert_eq!(q.pop_batch(10).len(), 2);
        assert!(q.is_empty());
    }
}
