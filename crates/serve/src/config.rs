//! Serving-run configuration.

use crate::batcher::BatchPolicy;
use gpu_sim::DeviceProps;
use nn::DispatchMode;

/// Everything a serving run needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated device to serve on.
    pub device: DeviceProps,
    /// Kernel dispatch mode (naive / fixed streams / GLP4NN).
    pub mode: DispatchMode,
    /// Model name resolved through [`nn::models::spec_by_name`].
    pub model: String,
    /// Mean request arrival rate (requests per simulated second).
    pub rate_rps: f64,
    /// Number of requests to generate.
    pub num_requests: usize,
    /// Dynamic batching policy.
    pub policy: BatchPolicy,
    /// Admission queue capacity (requests beyond it are shed).
    pub queue_capacity: usize,
    /// Seed for the arrival process and model parameters.
    pub seed: u64,
}

impl ServeConfig {
    /// A small CIFAR10-quick configuration useful as a starting point.
    pub fn cifar10(mode: DispatchMode, device: DeviceProps, rate_rps: f64) -> Self {
        ServeConfig {
            device,
            mode,
            model: "CIFAR10".to_string(),
            rate_rps,
            num_requests: 400,
            policy: BatchPolicy::new(8, 2_000_000),
            queue_capacity: 1024,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_well_formed() {
        let c = ServeConfig::cifar10(DispatchMode::Naive, DeviceProps::p100(), 1000.0);
        assert_eq!(c.model, "CIFAR10");
        assert!(c.policy.max_batch > 0);
        assert!(c.queue_capacity >= c.policy.max_batch);
    }
}
