//! Latency and throughput metrics from the simulated clock.

use crate::request::Completion;
use gpu_sim::SimTime;

/// Latency distribution summary (nearest-rank percentiles, ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median end-to-end latency.
    pub p50_ns: SimTime,
    /// 95th percentile.
    pub p95_ns: SimTime,
    /// 99th percentile.
    pub p99_ns: SimTime,
    /// Worst observed latency.
    pub max_ns: SimTime,
}

impl LatencyStats {
    /// Summarize a set of completions. Returns `None` if empty.
    pub fn from_completions(completions: &[Completion]) -> Option<Self> {
        let mut lat: Vec<SimTime> = completions.iter().map(|c| c.latency_ns()).collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        Some(LatencyStats {
            p50_ns: percentile(&lat, 50.0),
            p95_ns: percentile(&lat, 95.0),
            p99_ns: percentile(&lat, 99.0),
            max_ns: *lat.last().unwrap(),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
/// Panics on an empty slice or a percentile outside `(0, 100]`.
pub fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Completed requests per simulated second over `span_ns`.
pub fn throughput_rps(completed: usize, span_ns: SimTime) -> f64 {
    if span_ns == 0 {
        return 0.0;
    }
    completed as f64 / (span_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<SimTime> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        let small = vec![7];
        assert_eq!(percentile(&small, 50.0), 7);
        assert_eq!(percentile(&small, 99.0), 7);
    }

    #[test]
    fn stats_from_completions() {
        let comps: Vec<Completion> = (0..10)
            .map(|i| Completion {
                id: i,
                arrival_ns: 0,
                start_ns: 0,
                done_ns: (i + 1) * 100,
            })
            .collect();
        let s = LatencyStats::from_completions(&comps).unwrap();
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 1000);
        assert_eq!(s.max_ns, 1000);
        assert!(LatencyStats::from_completions(&[]).is_none());
    }

    #[test]
    fn throughput_is_completions_over_span() {
        assert_eq!(throughput_rps(500, 1_000_000_000), 500.0);
        assert_eq!(throughput_rps(500, 500_000_000), 1000.0);
        assert_eq!(throughput_rps(500, 0), 0.0);
    }
}
