//! Latency and throughput metrics from the simulated clock — a thin view
//! over the shared [`telemetry`] histogram/percentile machinery.

use crate::request::Completion;
use gpu_sim::SimTime;
use telemetry::Histogram;

/// Latency distribution summary (nearest-rank percentiles, ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median end-to-end latency.
    pub p50_ns: SimTime,
    /// 95th percentile.
    pub p95_ns: SimTime,
    /// 99th percentile.
    pub p99_ns: SimTime,
    /// Worst observed latency.
    pub max_ns: SimTime,
}

impl LatencyStats {
    /// Summarize a set of completions. Returns `None` if empty.
    pub fn from_completions(completions: &[Completion]) -> Option<Self> {
        let mut hist = Histogram::new();
        for c in completions {
            hist.record(c.latency_ns());
        }
        Self::from_histogram(&hist)
    }

    /// Summarize a latency histogram. Returns `None` if empty.
    pub fn from_histogram(hist: &Histogram) -> Option<Self> {
        if hist.is_empty() {
            return None;
        }
        Some(LatencyStats {
            p50_ns: hist.percentile(50.0),
            p95_ns: hist.percentile(95.0),
            p99_ns: hist.percentile(99.0),
            max_ns: hist.max()?,
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (delegates to
/// [`telemetry::percentile_of_sorted`]).
///
/// # Panics
/// Panics on an empty slice or a percentile outside `(0, 100]`.
pub fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    telemetry::percentile_of_sorted(sorted, p)
}

/// Completed requests per simulated second over `span_ns`.
pub fn throughput_rps(completed: usize, span_ns: SimTime) -> f64 {
    if span_ns == 0 {
        return 0.0;
    }
    completed as f64 / (span_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<SimTime> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        let small = vec![7];
        assert_eq!(percentile(&small, 50.0), 7);
        assert_eq!(percentile(&small, 99.0), 7);
    }

    #[test]
    fn histogram_percentiles_match_direct_percentile() {
        // Same known-quantile inputs through both paths: the raw
        // nearest-rank helper and the histogram it is folded into.
        let mut hist = Histogram::new();
        let mut v: Vec<SimTime> = (1..=100).rev().collect();
        for &x in &v {
            hist.record(x);
        }
        v.sort_unstable();
        for p in [1.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(hist.percentile(p), percentile(&v, p), "p{p}");
        }
        assert_eq!(hist.percentile(50.0), 50);
        assert_eq!(hist.max(), Some(100));
        let s = LatencyStats::from_histogram(&hist).unwrap();
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert!(LatencyStats::from_histogram(&Histogram::new()).is_none());
    }

    #[test]
    fn stats_from_completions() {
        let comps: Vec<Completion> = (0..10)
            .map(|i| Completion {
                id: i,
                arrival_ns: 0,
                start_ns: 0,
                done_ns: (i + 1) * 100,
            })
            .collect();
        let s = LatencyStats::from_completions(&comps).unwrap();
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 1000);
        assert_eq!(s.max_ns, 1000);
        assert!(LatencyStats::from_completions(&[]).is_none());
    }

    #[test]
    fn throughput_is_completions_over_span() {
        assert_eq!(throughput_rps(500, 1_000_000_000), 500.0);
        assert_eq!(throughput_rps(500, 500_000_000), 1000.0);
        assert_eq!(throughput_rps(500, 0), 0.0);
    }
}
