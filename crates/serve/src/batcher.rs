//! The dynamic batching policy.

use crate::queue::BoundedQueue;
use gpu_sim::SimTime;

/// When to close a batch and dispatch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are waiting.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest waiting request has
    /// queued this long (ns).
    pub max_delay_ns: SimTime,
}

impl BatchPolicy {
    /// A size-and-delay policy.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_delay_ns: SimTime) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        BatchPolicy {
            max_batch,
            max_delay_ns,
        }
    }

    /// Decide what to do at simulated time `now` given the current queue.
    pub fn decide(&self, now: SimTime, queue: &BoundedQueue) -> BatchDecision {
        let oldest = queue.head().map(|r| r.arrival_ns);
        self.decide_continuous(now, queue.len(), oldest, false)
    }

    /// The continuous-batching decision: admission is incremental, so the
    /// policy sees only the queue's aggregate state, and `just_drained`
    /// marks the instant a wave completed on the engine.
    ///
    /// Waves still close on the size trigger (`max_batch` waiting) or the
    /// delay trigger (oldest request waited `max_delay_ns`) — but at a
    /// wave boundary the policy is *work-conserving*: requests that
    /// arrived while the previous wave executed form the next wave
    /// immediately, whatever their count, instead of waiting out the
    /// delay timer behind an idle engine. That is what "admit into the
    /// next wave instead of draining the batch" buys: an engine under
    /// load never sits idle while work is queued.
    pub fn decide_continuous(
        &self,
        now: SimTime,
        queued: usize,
        oldest_arrival_ns: Option<SimTime>,
        just_drained: bool,
    ) -> BatchDecision {
        let Some(oldest) = oldest_arrival_ns else {
            return BatchDecision::Idle;
        };
        if queued >= self.max_batch {
            return BatchDecision::Fire(self.max_batch);
        }
        if just_drained {
            return BatchDecision::Fire(queued);
        }
        let deadline = oldest + self.max_delay_ns;
        if now >= deadline {
            BatchDecision::Fire(queued)
        } else {
            BatchDecision::WaitUntil(deadline)
        }
    }
}

/// Outcome of a batching decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDecision {
    /// Dispatch a batch of this many requests now.
    Fire(usize),
    /// Nothing to dispatch yet; re-decide at this time (or on the next
    /// arrival, whichever is earlier).
    WaitUntil(SimTime),
    /// The queue is empty.
    Idle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn queue_with(arrivals: &[u64]) -> BoundedQueue {
        let mut q = BoundedQueue::new(64);
        for (i, &t) in arrivals.iter().enumerate() {
            q.admit(Request {
                id: i as u64,
                arrival_ns: t,
            });
        }
        q
    }

    #[test]
    fn size_trigger_fires_a_full_batch() {
        let p = BatchPolicy::new(4, 1_000_000);
        let q = queue_with(&[10, 20, 30, 40, 50]);
        // Five waiting, max_batch 4: fire exactly 4 immediately, even
        // though the delay deadline is far away.
        assert_eq!(p.decide(60, &q), BatchDecision::Fire(4));
    }

    #[test]
    fn delay_trigger_fires_a_partial_batch() {
        let p = BatchPolicy::new(8, 1_000);
        let q = queue_with(&[100, 200]);
        // Before the head's deadline: wait for it.
        assert_eq!(p.decide(500, &q), BatchDecision::WaitUntil(1_100));
        // At/after the deadline: fire what is waiting (partial batch).
        assert_eq!(p.decide(1_100, &q), BatchDecision::Fire(2));
        assert_eq!(p.decide(5_000, &q), BatchDecision::Fire(2));
    }

    #[test]
    fn empty_queue_is_idle() {
        let p = BatchPolicy::new(4, 1_000);
        let q = BoundedQueue::new(4);
        assert_eq!(p.decide(0, &q), BatchDecision::Idle);
    }

    #[test]
    fn zero_delay_fires_singletons_immediately() {
        let p = BatchPolicy::new(8, 0);
        let q = queue_with(&[42]);
        assert_eq!(p.decide(42, &q), BatchDecision::Fire(1));
    }

    #[test]
    fn continuous_is_work_conserving_at_wave_boundaries() {
        let p = BatchPolicy::new(8, 1_000_000);
        // Mid-wave arrivals (3 queued, far from both triggers): an idle
        // engine would wait for the delay deadline...
        assert_eq!(
            p.decide_continuous(500, 3, Some(100), false),
            BatchDecision::WaitUntil(1_000_100)
        );
        // ...but at the instant a wave drains, they fire immediately.
        assert_eq!(
            p.decide_continuous(500, 3, Some(100), true),
            BatchDecision::Fire(3)
        );
        // The size trigger still caps the wave.
        assert_eq!(
            p.decide_continuous(500, 11, Some(100), true),
            BatchDecision::Fire(8)
        );
        // And an empty queue is idle even at a wave boundary.
        assert_eq!(p.decide_continuous(500, 0, None, true), BatchDecision::Idle);
    }

    #[test]
    fn continuous_matches_batch_decide_when_not_draining() {
        let p = BatchPolicy::new(4, 1_000);
        let q = queue_with(&[100, 200]);
        for now in [100, 500, 1_100, 5_000] {
            assert_eq!(
                p.decide(now, &q),
                p.decide_continuous(now, q.len(), q.head().map(|r| r.arrival_ns), false),
                "at t={now}"
            );
        }
    }
}
