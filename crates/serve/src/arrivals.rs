//! Seeded Poisson request arrivals in simulated time.

use crate::request::Request;
use gpu_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Poisson arrival process: exponential inter-arrival times at a given
/// mean rate, drawn from a seeded RNG. Arrival times are simulated
/// nanoseconds offset from a configurable origin.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: StdRng,
    rate_rps: f64,
    clock_ns: f64,
    next_id: u64,
}

impl PoissonArrivals {
    /// An arrival process at `rate_rps` requests per (simulated) second,
    /// starting at `origin_ns`.
    ///
    /// # Panics
    /// Panics unless `rate_rps` is finite and positive.
    pub fn new(rate_rps: f64, origin_ns: SimTime, seed: u64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "arrival rate must be positive, got {rate_rps}"
        );
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_rps,
            clock_ns: origin_ns as f64,
            next_id: 0,
        }
    }

    /// Draw the next arrival.
    pub fn next_request(&mut self) -> Request {
        // Inverse-CDF exponential sample; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = self.rng.gen();
        let gap_s = -(1.0 - u).ln() / self.rate_rps;
        self.clock_ns += gap_s * 1e9;
        let r = Request {
            id: self.next_id,
            arrival_ns: self.clock_ns.ceil() as SimTime,
        };
        self.next_id += 1;
        r
    }

    /// Draw `n` arrivals in order.
    pub fn take(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

/// Summary of an arrival trace: how many requests it holds and how they
/// spread over simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArrivalSummary {
    /// Number of requests in the trace.
    pub count: usize,
    /// Earliest arrival (ns); zero for an empty trace.
    pub first_ns: SimTime,
    /// Latest arrival (ns); zero for an empty trace.
    pub last_ns: SimTime,
    /// `last_ns - first_ns`; zero for an empty or single-request trace.
    pub span_ns: SimTime,
}

impl ArrivalSummary {
    /// Mean inter-arrival gap in ns (`span / (count - 1)`), or zero when
    /// fewer than two requests arrived.
    pub fn mean_gap_ns(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.span_ns as f64 / (self.count - 1) as f64
        }
    }
}

/// Summarize an arrival trace. An empty list yields the zero-span empty
/// summary rather than panicking, so callers can summarize whatever a
/// (possibly empty) generation step produced.
pub fn summarize(reqs: &[Request]) -> ArrivalSummary {
    let (Some(first), Some(last)) = (reqs.first(), reqs.last()) else {
        return ArrivalSummary::default();
    };
    ArrivalSummary {
        count: reqs.len(),
        first_ns: first.arrival_ns,
        last_ns: last.arrival_ns,
        span_ns: last.arrival_ns.saturating_sub(first.arrival_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let a = PoissonArrivals::new(1000.0, 0, 7).take(500);
        let b = PoissonArrivals::new(1000.0, 0, 7).take(500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
    }

    #[test]
    fn different_seeds_differ() {
        let a = PoissonArrivals::new(1000.0, 0, 7).take(100);
        let b = PoissonArrivals::new(1000.0, 0, 8).take(100);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_gap_approximates_rate() {
        // 2000 req/s -> mean gap 0.5 ms = 500_000 ns.
        let reqs = PoissonArrivals::new(2000.0, 0, 3).take(4000);
        let mean_gap = summarize(&reqs).mean_gap_ns();
        assert!(
            (mean_gap - 500_000.0).abs() < 50_000.0,
            "mean inter-arrival drifted: {mean_gap}"
        );
    }

    #[test]
    fn empty_trace_summarizes_to_zero_span_instead_of_panicking() {
        // Regression: summarizing an empty request list used to reach a
        // `reqs.last().unwrap()` and panic; it must yield the empty
        // summary instead.
        let s = summarize(&[]);
        assert_eq!(s, ArrivalSummary::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.span_ns, 0);
        assert_eq!(s.mean_gap_ns(), 0.0);
        // A single request also has a zero span and no mean gap.
        let one = summarize(&[Request {
            id: 0,
            arrival_ns: 77,
        }]);
        assert_eq!(one.count, 1);
        assert_eq!(one.first_ns, 77);
        assert_eq!(one.last_ns, 77);
        assert_eq!(one.span_ns, 0);
        assert_eq!(one.mean_gap_ns(), 0.0);
    }

    #[test]
    fn summary_matches_trace_extremes() {
        let reqs = PoissonArrivals::new(1000.0, 500, 11).take(64);
        let s = summarize(&reqs);
        assert_eq!(s.count, 64);
        assert_eq!(s.first_ns, reqs[0].arrival_ns);
        assert_eq!(s.last_ns, reqs[63].arrival_ns);
        assert_eq!(s.span_ns, s.last_ns - s.first_ns);
        assert!(s.mean_gap_ns() > 0.0);
    }

    #[test]
    fn origin_offsets_all_arrivals() {
        let base = PoissonArrivals::new(1000.0, 0, 9).take(10);
        let offset = PoissonArrivals::new(1000.0, 1_000_000, 9).take(10);
        for (a, b) in base.iter().zip(&offset) {
            assert_eq!(a.arrival_ns + 1_000_000, b.arrival_ns);
        }
    }
}
