//! Seeded Poisson request arrivals in simulated time.

use crate::request::Request;
use gpu_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Poisson arrival process: exponential inter-arrival times at a given
/// mean rate, drawn from a seeded RNG. Arrival times are simulated
/// nanoseconds offset from a configurable origin.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: StdRng,
    rate_rps: f64,
    clock_ns: f64,
    next_id: u64,
}

impl PoissonArrivals {
    /// An arrival process at `rate_rps` requests per (simulated) second,
    /// starting at `origin_ns`.
    ///
    /// # Panics
    /// Panics unless `rate_rps` is finite and positive.
    pub fn new(rate_rps: f64, origin_ns: SimTime, seed: u64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "arrival rate must be positive, got {rate_rps}"
        );
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_rps,
            clock_ns: origin_ns as f64,
            next_id: 0,
        }
    }

    /// Draw the next arrival.
    pub fn next_request(&mut self) -> Request {
        // Inverse-CDF exponential sample; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = self.rng.gen();
        let gap_s = -(1.0 - u).ln() / self.rate_rps;
        self.clock_ns += gap_s * 1e9;
        let r = Request {
            id: self.next_id,
            arrival_ns: self.clock_ns.ceil() as SimTime,
        };
        self.next_id += 1;
        r
    }

    /// Draw `n` arrivals in order.
    pub fn take(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let a = PoissonArrivals::new(1000.0, 0, 7).take(500);
        let b = PoissonArrivals::new(1000.0, 0, 7).take(500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
    }

    #[test]
    fn different_seeds_differ() {
        let a = PoissonArrivals::new(1000.0, 0, 7).take(100);
        let b = PoissonArrivals::new(1000.0, 0, 8).take(100);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_gap_approximates_rate() {
        // 2000 req/s -> mean gap 0.5 ms = 500_000 ns.
        let reqs = PoissonArrivals::new(2000.0, 0, 3).take(4000);
        let span = reqs.last().unwrap().arrival_ns - reqs[0].arrival_ns;
        let mean_gap = span as f64 / (reqs.len() - 1) as f64;
        assert!(
            (mean_gap - 500_000.0).abs() < 50_000.0,
            "mean inter-arrival drifted: {mean_gap}"
        );
    }

    #[test]
    fn origin_offsets_all_arrivals() {
        let base = PoissonArrivals::new(1000.0, 0, 9).take(10);
        let offset = PoissonArrivals::new(1000.0, 1_000_000, 9).take(10);
        for (a, b) in base.iter().zip(&offset) {
            assert_eq!(a.arrival_ns + 1_000_000, b.arrival_ns);
        }
    }
}
