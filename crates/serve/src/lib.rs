#![warn(missing_docs)]

//! An inference serving engine with dynamic batching on top of the GLP4NN
//! runtime.
//!
//! Training throughput is the paper's subject, but the same property that
//! makes GLP4NN attractive there — per-sample kernel groups dispatched
//! concurrently after a one-time profiling pass — matters at least as much
//! for online inference, where request batches are small, arrive at
//! unpredictable times, and vary in size from one dispatch to the next.
//! This crate closes that loop:
//!
//! - [`arrivals`]: seeded Poisson request arrivals in **simulated time**
//!   (the gpu-sim clock), so every run is deterministic and two runs of
//!   the same configuration are byte-identical.
//! - [`queue`]: a bounded admission queue that sheds load when full.
//! - [`batcher`]: the dynamic batching policy — fire when `max_batch`
//!   requests are waiting *or* when the oldest request has waited
//!   `max_delay`, whichever comes first.
//! - [`engine`]: the event loop tying it together. Batches run through an
//!   inference-only [`nn::Net`] forward under any
//!   [`DispatchMode`](nn::DispatchMode); under GLP4NN each distinct batch
//!   size is profiled once (plans are keyed per layer x chunk count) and
//!   every later batch of that shape reuses its cached concurrency plan.
//! - [`metrics`]: throughput and p50/p95/p99 end-to-end latency
//!   (queueing + device time), all read off the simulated clock.
//!
//! ```no_run
//! use serve::{BatchPolicy, ServeConfig, run_serving};
//! use gpu_sim::DeviceProps;
//! use nn::DispatchMode;
//!
//! let report = run_serving(&ServeConfig {
//!     device: DeviceProps::p100(),
//!     mode: DispatchMode::Glp4nn,
//!     model: "CIFAR10".into(),
//!     rate_rps: 2000.0,
//!     num_requests: 400,
//!     policy: BatchPolicy { max_batch: 8, max_delay_ns: 2_000_000 },
//!     queue_capacity: 256,
//!     seed: 42,
//! }).unwrap();
//! println!("{:.0} req/s, p99 {} ns", report.throughput_rps, report.latency.p99_ns);
//! ```

pub mod arrivals;
pub mod batcher;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod request;

pub use arrivals::{summarize, ArrivalSummary, PoissonArrivals};
pub use batcher::{BatchDecision, BatchPolicy};
pub use config::ServeConfig;
pub use engine::{run_serving, EngineOptions, ServingEngine, ServingReport, WaveTiming};
pub use metrics::LatencyStats;
pub use queue::{Admission, BoundedQueue, ClassQueue, ClassedRequest};
pub use request::{fill_sample, Completion, Request};
