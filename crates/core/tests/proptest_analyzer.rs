//! Property tests for the kernel analyzer: every plan the analytical
//! model emits must be hardware-feasible, bounded, and monotone in the
//! ways the paper's constraints imply.

use glp4nn::analyzer::{analyze_profiles, KernelProfile};
use gpu_sim::DeviceProps;
use proptest::prelude::*;

fn arb_profile(i: usize) -> impl Strategy<Value = KernelProfile> {
    (
        1u64..2000,           // grid blocks
        1u32..9,              // warps per block (threads = w * 32)
        0u32..3,              // smem selector
        1_000u64..10_000_000, // duration ns
    )
        .prop_map(move |(grid, warps, smem_sel, dur)| KernelProfile {
            name: format!("k{i}"),
            grid_blocks: grid,
            threads_per_block: warps * 32,
            regs_per_thread: 32,
            smem_per_block: [0u32, 4096, 16384][smem_sel as usize],
            avg_duration_ns: dur,
            instances: 8,
        })
}

fn arb_profiles() -> impl Strategy<Value = Vec<KernelProfile>> {
    prop::collection::vec(any::<u8>(), 1..5).prop_flat_map(|v| {
        let strategies: Vec<_> = (0..v.len()).map(arb_profile).collect();
        strategies
    })
}

fn arb_device() -> impl Strategy<Value = DeviceProps> {
    prop::sample::select(vec![
        DeviceProps::k40c(),
        DeviceProps::p100(),
        DeviceProps::titan_xp(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Plans always exist, stay within 1..=C streams, and per-kernel
    /// counts respect the Eq. 7 launch cap.
    #[test]
    fn plans_are_always_feasible(dev in arb_device(), profiles in arb_profiles()) {
        let plan = analyze_profiles(&dev, &profiles);
        prop_assert!(plan.streams >= 1);
        prop_assert!(plan.streams <= dev.concurrency_degree());
        prop_assert_eq!(plan.per_kernel.len(), profiles.len());
        let total: u32 = plan.per_kernel.iter().map(|&(_, k)| k).sum();
        prop_assert!(total <= dev.concurrency_degree());
        for (p, &(_, k)) in profiles.iter().zip(&plan.per_kernel) {
            let launch_cap = (p.avg_duration_ns as f64
                / dev.launch_overhead_ns as f64)
                .ceil()
                .max(1.0) as u32;
            prop_assert!(
                k <= launch_cap.max(1),
                "class {} got {} > launch cap {}",
                p.name, k, launch_cap
            );
        }
        // Every class's duration is recorded for the optimizer passes.
        for p in &profiles {
            prop_assert_eq!(plan.class_durations.get(&p.name), Some(&p.avg_duration_ns));
        }
    }

    /// Stretching every kernel's duration (slower device / bigger work)
    /// never *reduces* the planned concurrency: longer kernels leave more
    /// launch-overhead headroom (Eq. 7 is monotone in T_K).
    #[test]
    fn longer_kernels_never_reduce_streams(
        dev in arb_device(),
        profiles in arb_profiles(),
        factor in 2u64..10,
    ) {
        let short = analyze_profiles(&dev, &profiles);
        let stretched: Vec<KernelProfile> = profiles
            .iter()
            .map(|p| KernelProfile {
                avg_duration_ns: p.avg_duration_ns.saturating_mul(factor),
                ..p.clone()
            })
            .collect();
        let long = analyze_profiles(&dev, &stretched);
        prop_assert!(
            long.streams >= short.streams,
            "stretching durations x{} dropped streams {} -> {}",
            factor, short.streams, long.streams
        );
    }

    /// The objective never exceeds what the thread constraint permits.
    #[test]
    fn objective_bounded_by_thread_capacity(dev in arb_device(), profiles in arb_profiles()) {
        let plan = analyze_profiles(&dev, &profiles);
        prop_assert!(plan.objective_threads_per_sm <= dev.max_threads_per_sm as f64 + 1e-6);
        prop_assert!(plan.objective_threads_per_sm >= 0.0);
    }

    /// Determinism: the same inputs always give the same plan.
    #[test]
    fn analysis_is_deterministic(dev in arb_device(), profiles in arb_profiles()) {
        let a = analyze_profiles(&dev, &profiles);
        let b = analyze_profiles(&dev, &profiles);
        prop_assert_eq!(a.per_kernel, b.per_kernel);
        prop_assert_eq!(a.streams, b.streams);
    }
}
