//! The stream manager: default stream + concurrent stream pool (§3.1).
//!
//! "To support concurrent kernel execution without consuming too many
//! system thread or process resources on the host side, a stream manager
//! is designed within the GLP4NN framework." The pool pre-creates CUDA
//! streams on each device and hands out round-robin assignments; the
//! default stream is reserved for profiling runs and synchronization.
//! Growing the pool is monotonic — plans for different layers reuse the
//! same streams, so a device never accumulates more streams than the
//! largest `C_out` seen.

use gpu_sim::{Device, StreamId};
use parking_lot::Mutex;

/// Error from stream-manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A GPU index outside the managed range was requested.
    UnknownGpu {
        /// The requested GPU index.
        gpu: usize,
        /// How many GPUs the manager was built for.
        num_gpus: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownGpu { gpu, num_gpus } => write!(
                f,
                "unknown GPU index {gpu}: stream manager holds {num_gpus} pool(s)"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Shared stream manager: one pool per GPU.
#[derive(Debug)]
pub struct StreamManager {
    pools: Mutex<Vec<Vec<StreamId>>>,
}

impl StreamManager {
    /// Manager for `num_gpus` devices, all pools initially empty.
    pub fn new(num_gpus: usize) -> Self {
        StreamManager {
            pools: Mutex::new(vec![Vec::new(); num_gpus]),
        }
    }

    /// Number of managed GPUs.
    pub fn num_gpus(&self) -> usize {
        self.pools.lock().len()
    }

    /// Current pool size on `gpu`.
    pub fn pool_size(&self, gpu: usize) -> Result<usize, StreamError> {
        let pools = self.pools.lock();
        pools.get(gpu).map(Vec::len).ok_or(StreamError::UnknownGpu {
            gpu,
            num_gpus: pools.len(),
        })
    }

    /// Ensure the pool on `gpu` holds at least `n` streams (creating them
    /// on `dev` as needed) and return the first `n` of them.
    pub fn pool(
        &self,
        dev: &mut Device,
        gpu: usize,
        n: usize,
    ) -> Result<Vec<StreamId>, StreamError> {
        let mut pools = self.pools.lock();
        let num_gpus = pools.len();
        let pool = pools
            .get_mut(gpu)
            .ok_or(StreamError::UnknownGpu { gpu, num_gpus })?;
        while pool.len() < n {
            pool.push(dev.create_stream());
        }
        Ok(pool[..n].to_vec())
    }

    /// The synchronization stream (CUDA default stream).
    pub fn default_stream(&self, dev: &Device) -> StreamId {
        dev.default_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    #[test]
    fn pool_grows_monotonically_and_reuses() {
        let mut dev = Device::new(DeviceProps::p100());
        let mgr = StreamManager::new(1);
        let a = mgr.pool(&mut dev, 0, 3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(mgr.pool_size(0).unwrap(), 3);
        let b = mgr.pool(&mut dev, 0, 2).unwrap();
        assert_eq!(b, a[..2].to_vec(), "smaller requests reuse the pool");
        let c = mgr.pool(&mut dev, 0, 5).unwrap();
        assert_eq!(c[..3], a[..], "growth preserves existing streams");
        assert_eq!(mgr.pool_size(0).unwrap(), 5);
        // Device: default stream + 5 pool streams.
        assert_eq!(dev.num_streams(), 6);
    }

    #[test]
    fn pool_streams_are_not_the_default() {
        let mut dev = Device::new(DeviceProps::k40c());
        let mgr = StreamManager::new(1);
        for s in mgr.pool(&mut dev, 0, 4).unwrap() {
            assert!(!s.is_default());
        }
        assert!(mgr.default_stream(&dev).is_default());
    }

    #[test]
    fn pool_never_exceeds_largest_request() {
        // A varying-C_out request sequence (as a serving batcher produces
        // when batch shapes vary) must leave the pool sized at the largest
        // C_out seen, never at the running total.
        let mut dev = Device::new(DeviceProps::titan_xp());
        let mgr = StreamManager::new(1);
        let requests = [4usize, 2, 7, 1, 7, 3, 6];
        let mut largest = 0;
        for n in requests {
            let pool = mgr.pool(&mut dev, 0, n).unwrap();
            assert_eq!(pool.len(), n);
            largest = largest.max(n);
            assert_eq!(mgr.pool_size(0).unwrap(), largest);
        }
        assert_eq!(mgr.pool_size(0).unwrap(), 7);
        assert_eq!(dev.num_streams(), 8, "default stream + 7 pool streams");
    }

    #[test]
    fn interleaved_multi_gpu_requests_grow_pools_independently() {
        let mut d0 = Device::new(DeviceProps::k40c());
        let mut d1 = Device::new(DeviceProps::p100());
        let mgr = StreamManager::new(2);
        // Interleave growth across the two devices; each pool must follow
        // only its own request history.
        for (gpu, n) in [(0usize, 2usize), (1, 3), (0, 4), (1, 1), (0, 3), (1, 5)] {
            if gpu == 0 {
                mgr.pool(&mut d0, 0, n).unwrap();
            } else {
                mgr.pool(&mut d1, 1, n).unwrap();
            }
        }
        assert_eq!(mgr.pool_size(0).unwrap(), 4);
        assert_eq!(mgr.pool_size(1).unwrap(), 5);
        // Stream IDs on each device stay dense and device-local.
        assert_eq!(d0.num_streams(), 5);
        assert_eq!(d1.num_streams(), 6);
        let p0 = mgr.pool(&mut d0, 0, 4).unwrap();
        let p1 = mgr.pool(&mut d1, 1, 5).unwrap();
        assert!(p0.iter().all(|s| !s.is_default()));
        assert!(p1.iter().all(|s| !s.is_default()));
    }

    #[test]
    fn unknown_gpu_is_a_typed_error() {
        let mut dev = Device::new(DeviceProps::p100());
        let mgr = StreamManager::new(2);
        let err = mgr.pool(&mut dev, 5, 3).unwrap_err();
        assert_eq!(
            err,
            StreamError::UnknownGpu {
                gpu: 5,
                num_gpus: 2
            }
        );
        assert!(err.to_string().contains("unknown GPU index 5"));
        assert_eq!(
            mgr.pool_size(2),
            Err(StreamError::UnknownGpu {
                gpu: 2,
                num_gpus: 2
            })
        );
        assert_eq!(dev.num_streams(), 1, "failed requests create no streams");
    }

    #[test]
    fn per_gpu_pools_are_independent() {
        let mut d0 = Device::new(DeviceProps::k40c());
        let mut d1 = Device::new(DeviceProps::p100());
        let mgr = StreamManager::new(2);
        mgr.pool(&mut d0, 0, 2).unwrap();
        mgr.pool(&mut d1, 1, 4).unwrap();
        assert_eq!(mgr.pool_size(0).unwrap(), 2);
        assert_eq!(mgr.pool_size(1).unwrap(), 4);
        assert_eq!(mgr.num_gpus(), 2);
    }
}
