//! The top-level GLP4NN framework object (the paper's Fig. 5).
//!
//! "GLP4NN supports multiple GPUs on the same machine. Each GPU device is
//! assigned with a private kernel analyzer and runtime scheduler, and all
//! GPUs in the same machine share a public resource tracker and stream
//! manager."

use crate::analyzer::KernelAnalyzer;
use crate::cost::CostReport;
use crate::optim::OptimConfig;
use crate::scheduler::RuntimeScheduler;
use crate::streams::{StreamError, StreamManager};
use crate::tracker::ResourceTracker;
use gpu_sim::{Device, DeviceProps, KernelDesc, SimTime};
use sanitizer::Sanitizer;
use std::sync::Arc;

/// Error from framework-level execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Glp4nnError {
    /// The GPU slot exists but [`Glp4nn::register_device`] was never
    /// called for it (or the index is out of range).
    DeviceNotRegistered {
        /// The requested GPU index.
        gpu: usize,
    },
    /// The shared stream manager rejected the request.
    Stream(StreamError),
}

impl std::fmt::Display for Glp4nnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Glp4nnError::DeviceNotRegistered { gpu } => {
                write!(f, "device {gpu} not registered with Glp4nn")
            }
            Glp4nnError::Stream(e) => write!(f, "stream manager: {e}"),
        }
    }
}

impl std::error::Error for Glp4nnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Glp4nnError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for Glp4nnError {
    fn from(e: StreamError) -> Self {
        Glp4nnError::Stream(e)
    }
}

/// Which pass of training a layer execution belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward propagation (paper Algorithm 1).
    Forward,
    /// Backward propagation (paper Algorithm 2).
    Backward,
}

/// Identity of a layer execution site, keying the concurrency maintainer's
/// plan cache.
///
/// The key is `net x layer x phase x chunks`: `chunks` is the number of
/// kernel groups the layer dispatches (the batch size under per-sample
/// batch-level parallelism). Keeping it in the key lets a serving engine
/// feed batches of varying size through one framework instance — each
/// batch shape is profiled once and then reuses its own cached plan, since
/// the analytical model's `C_out` depends on how many groups compete for
/// the device.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerKey {
    /// Network name.
    pub net: String,
    /// Layer name within the network.
    pub layer: String,
    /// Forward or backward pass.
    pub phase: Phase,
    /// Number of kernel groups dispatched (0 = shape-agnostic site).
    pub chunks: usize,
}

impl LayerKey {
    /// Key for a forward-pass execution.
    pub fn forward(net: &str, layer: &str) -> Self {
        LayerKey {
            net: net.to_string(),
            layer: layer.to_string(),
            phase: Phase::Forward,
            chunks: 0,
        }
    }

    /// Key for a backward-pass execution.
    pub fn backward(net: &str, layer: &str) -> Self {
        LayerKey {
            net: net.to_string(),
            layer: layer.to_string(),
            phase: Phase::Backward,
            chunks: 0,
        }
    }

    /// Same site, keyed to a specific chunk (group) count.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks;
        self
    }

    /// String form used by the plan cache.
    pub fn cache_key(&self) -> String {
        let phase = match self.phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
        };
        format!("{}/{}/{}/c{}", self.net, self.layer, phase, self.chunks)
    }

    /// Shape-independent dispatch-site key (`net/layer/phase`), used by
    /// the sanitizer's symbolic-certificate cache: one disjointness proof
    /// covers every chunk count the site is captured at.
    pub fn site_key(&self) -> String {
        let phase = match self.phase {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
        };
        format!("{}/{}/{}", self.net, self.layer, phase)
    }
}

/// How a layer execution was carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// First sight of the layer: serial run on the default stream with the
    /// resource tracker recording.
    Profiling,
    /// Dispatched round-robin over a pool of `streams` concurrent streams.
    Concurrent {
        /// Pool size used (`C_out` from the analytical model).
        streams: u32,
    },
}

/// Result of one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Profiling or concurrent.
    pub mode: ExecMode,
    /// Simulated device time the layer took (ns).
    pub elapsed_ns: SimTime,
    /// Kernels launched.
    pub kernels: usize,
}

struct GpuRuntime {
    analyzer: KernelAnalyzer,
    scheduler: RuntimeScheduler,
}

/// The GLP4NN framework: shared tracker + stream manager, per-GPU analyzer
/// + scheduler.
pub struct Glp4nn {
    tracker: ResourceTracker,
    streams: StreamManager,
    gpus: Vec<Option<GpuRuntime>>,
    optim: OptimConfig,
}

impl Glp4nn {
    /// Framework managing `num_gpus` devices. Each device must be
    /// registered with [`register_device`](Self::register_device) before
    /// use.
    pub fn new(num_gpus: usize) -> Self {
        Self::with_optim(num_gpus, OptimConfig::default())
    }

    /// Framework with the paper's §6 kernel fusion / reordering
    /// extensions configured.
    pub fn with_optim(num_gpus: usize, optim: OptimConfig) -> Self {
        Glp4nn {
            tracker: ResourceTracker::new(num_gpus),
            streams: StreamManager::new(num_gpus),
            gpus: (0..num_gpus).map(|_| None).collect(),
            optim,
        }
    }

    /// Register device `gpu` with its hardware properties, creating its
    /// private kernel analyzer and runtime scheduler.
    pub fn register_device(&mut self, gpu: usize, props: &DeviceProps) {
        self.gpus[gpu] = Some(GpuRuntime {
            analyzer: KernelAnalyzer::new(props.clone()),
            scheduler: RuntimeScheduler::with_optim(gpu, self.optim),
        });
    }

    /// Number of GPU slots.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Enable or disable execution-plan reuse on every registered GPU.
    /// With reuse off each iteration re-captures (and re-validates) its
    /// schedule — the behaviour of the old imperative dispatch loops,
    /// kept as the baseline for replay-equivalence checks and benchmarks.
    pub fn set_plan_reuse(&mut self, on: bool) {
        for rt in self.gpus.iter_mut().flatten() {
            rt.scheduler.set_plan_reuse(on);
        }
    }

    /// How many execution plans device `gpu` has captured so far (cache
    /// misses; a steady-state workload should stop incrementing this).
    pub fn plan_captures(&self, gpu: usize) -> u64 {
        self.gpus[gpu]
            .as_ref()
            .map_or(0, |rt| rt.analyzer.captures())
    }

    /// How many analytical-model (MILP) solves device `gpu` has run.
    pub fn plan_solves(&self, gpu: usize) -> u64 {
        self.gpus[gpu].as_ref().map_or(0, |rt| rt.analyzer.solves())
    }

    /// Execute one layer's kernel groups on device `gpu` following the
    /// runtime-scheduler workflow (profile once, then dispatch over the
    /// model-sized stream pool).
    ///
    /// # Panics
    /// Panics if `gpu` was not registered; fallible callers should use
    /// [`try_execute`](Self::try_execute).
    pub fn execute(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        groups: Vec<Vec<KernelDesc>>,
    ) -> ExecReport {
        self.try_execute(dev, gpu, key, groups, None)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`execute`](Self::execute), but with typed errors instead of
    /// panics and an optional schedule [`Sanitizer`]: when attached, the
    /// exact dispatch plan is validated before launch and (in full mode)
    /// the executed command trace is replayed afterwards.
    pub fn try_execute(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        groups: Vec<Vec<KernelDesc>>,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, Glp4nnError> {
        let rt = self
            .gpus
            .get_mut(gpu)
            .and_then(Option::as_mut)
            .ok_or(Glp4nnError::DeviceNotRegistered { gpu })?;
        rt.scheduler
            .execute(
                dev,
                &self.tracker,
                &mut rt.analyzer,
                &self.streams,
                key,
                groups,
                sanitizer,
            )
            .map_err(Glp4nnError::from)
    }

    /// Like [`try_execute`](Self::try_execute), but builds the kernel
    /// groups lazily: on a plan-cache hit the frozen [`crate::ExecPlan`]
    /// is replayed and the closure is never called, so steady-state
    /// iterations skip group construction entirely.
    pub fn try_execute_with(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, Glp4nnError> {
        let rt = self
            .gpus
            .get_mut(gpu)
            .and_then(Option::as_mut)
            .ok_or(Glp4nnError::DeviceNotRegistered { gpu })?;
        rt.scheduler
            .execute_with(
                dev,
                &self.tracker,
                &mut rt.analyzer,
                &self.streams,
                key,
                make_groups,
                sanitizer,
            )
            .map_err(Glp4nnError::from)
    }

    /// Like [`try_execute_with`](Self::try_execute_with), with an optional
    /// symbolic access-set declaration: when the layer supplies a
    /// [`sanitizer::SymGroupSpec`], capture-time chunk checking uses a
    /// cached symbolic disjointness certificate (one proof per
    /// `key.site_key()`) plus an O(chunks) conformance check instead of
    /// O(chunks²) pairwise comparisons. `make_spec` is only called on a
    /// plan-cache miss with a sanitizer attached.
    pub fn try_execute_spec(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        make_spec: impl FnOnce() -> Option<sanitizer::SymGroupSpec>,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, Glp4nnError> {
        let rt = self
            .gpus
            .get_mut(gpu)
            .and_then(Option::as_mut)
            .ok_or(Glp4nnError::DeviceNotRegistered { gpu })?;
        rt.scheduler
            .execute_spec(
                dev,
                &self.tracker,
                &mut rt.analyzer,
                &self.streams,
                key,
                make_spec,
                make_groups,
                sanitizer,
            )
            .map_err(Glp4nnError::from)
    }

    /// Execute a dataflow-style [`crate::KernelGraph`] (the §6 extension)
    /// with the same profile-once-then-concurrent workflow as
    /// [`execute`](Self::execute). Cross-stream dependencies are enforced
    /// with events, so the dependency structure is preserved exactly.
    ///
    /// # Panics
    /// Panics if `gpu` was not registered; fallible callers should use
    /// [`try_execute_graph`](Self::try_execute_graph).
    pub fn execute_graph(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        graph: &crate::KernelGraph,
    ) -> ExecReport {
        self.try_execute_graph(dev, gpu, key, graph, None)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`execute_graph`](Self::execute_graph), with typed errors and
    /// an optional [`Sanitizer`]: the dependency closure is statically
    /// checked against the declared access sets and the stream-assignment
    /// plan is validated before launch.
    pub fn try_execute_graph(
        &mut self,
        dev: &mut Device,
        gpu: usize,
        key: &LayerKey,
        graph: &crate::KernelGraph,
        mut sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, Glp4nnError> {
        let rt = self
            .gpus
            .get_mut(gpu)
            .and_then(Option::as_mut)
            .ok_or(Glp4nnError::DeviceNotRegistered { gpu })?;
        let key_str = key.cache_key();

        // Replay path: this graph's schedule was captured and validated
        // before — tight issue loop, no analysis, no plan validation.
        let graph_key = format!("{}#graph", rt.scheduler.exec_plan_key(key));
        if rt.scheduler.plan_reuse() {
            if let Some(plan) = rt.analyzer.exec_plan_for(&graph_key) {
                crate::scheduler::tel_instant(dev, "plan", "plan.cache_hits", || {
                    format!("plan.replay {key_str}")
                });
                let report = plan.replay(dev);
                if let Some(san) = sanitizer {
                    san.check_device(dev);
                }
                return Ok(report);
            }
        }

        if let Some(san) = sanitizer.as_deref_mut() {
            // Stream-agnostic: deps alone must cover every conflict, or
            // some legal stream assignment races. Checked once per
            // capture, not per iteration.
            san.check_graph(&key_str, graph.nodes(), graph.all_deps());
        }
        if let Some(cplan) = rt.analyzer.plan_for(&key_str).cloned() {
            // Capture path: freeze the stream assignment and event edges
            // over the C_out-sized pool, validate once, cache, replay.
            let pool = self.streams.pool(dev, gpu, cplan.streams as usize)?;
            let plan = graph.capture(&key_str, &pool);
            if let Some(san) = sanitizer.as_deref_mut() {
                plan.validate(san);
            }
            let plan = Arc::new(plan);
            rt.analyzer.store_exec_plan(&graph_key, Arc::clone(&plan));
            crate::scheduler::tel_instant(dev, "plan", "plan.captures", || {
                format!("plan.capture {key_str}")
            });
            let report = plan.replay(dev);
            if let Some(san) = sanitizer {
                san.check_device(dev);
            }
            return Ok(report);
        }

        // Profiling path: serial capture on the default stream, recorded
        // by the tracker and fed to the analyzer — transient, runs once.
        let profile_start = dev.now();
        self.tracker.ingest(gpu, dev.trace());
        self.tracker.enable(gpu);
        let plan = graph.capture(&key_str, &[dev.default_stream()]);
        let report = plan.replay(dev);
        if let Some(san) = sanitizer {
            san.check_device(dev);
        }
        self.tracker.ingest(gpu, dev.trace());
        self.tracker.disable(gpu);
        crate::scheduler::tel_span(dev, "profile", profile_start, dev.now(), || {
            format!("profile {key_str}")
        });
        let profiles = self.tracker.parse(gpu);
        crate::scheduler::tel_instant(dev, "cupti", "cupti.flushes", || {
            format!("cupti.flush gpu{gpu}")
        });
        rt.analyzer.analyze(&key_str, &profiles);
        crate::scheduler::tel_instant(dev, "milp", "milp.solves", || {
            format!("milp.solve {key_str}")
        });
        Ok(report)
    }

    /// The cached concurrency plan for a layer, if analyzed.
    pub fn plan_for(&self, gpu: usize, key: &LayerKey) -> Option<crate::ConcurrencyPlan> {
        self.gpus[gpu]
            .as_ref()
            .and_then(|rt| rt.analyzer.plan_for(&key.cache_key()).cloned())
    }

    /// One-time overhead report for device `gpu` (Table 6 / Fig. 10 data).
    pub fn cost_report(&self, gpu: usize) -> CostReport {
        let o = self.tracker.overhead(gpu);
        let t_a = self.gpus[gpu]
            .as_ref()
            .map(|rt| rt.analyzer.total_analysis_time())
            .unwrap_or_default();
        CostReport {
            t_p: o.t_p,
            t_a,
            mem_tt_bytes: o.mem_tt_bytes,
            mem_k_bytes: o.mem_k_bytes,
            mem_cupti_bytes: o.mem_cupti_bytes,
            kernels_recorded: o.kernels_recorded,
        }
    }

    /// Shared resource tracker (for direct inspection).
    pub fn tracker(&self) -> &ResourceTracker {
        &self.tracker
    }

    /// Shared stream manager (for direct inspection).
    pub fn stream_manager(&self) -> &StreamManager {
        &self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, KernelCost, LaunchConfig};

    fn groups(n: u64) -> Vec<Vec<KernelDesc>> {
        (0..n)
            .map(|i| {
                vec![KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::linear(20), Dim3::linear(128), 48, 4096),
                    KernelCost::new(4.0e6, 2.0e5),
                )
                .with_tag(i)]
            })
            .collect()
    }

    #[test]
    fn layer_key_cache_keys_are_distinct() {
        assert_ne!(
            LayerKey::forward("n", "l").cache_key(),
            LayerKey::backward("n", "l").cache_key()
        );
        assert_ne!(
            LayerKey::forward("n", "l1").cache_key(),
            LayerKey::forward("n", "l2").cache_key()
        );
        assert_ne!(
            LayerKey::forward("n1", "l").cache_key(),
            LayerKey::forward("n2", "l").cache_key()
        );
        assert_ne!(
            LayerKey::forward("n", "l").with_chunks(8).cache_key(),
            LayerKey::forward("n", "l").with_chunks(16).cache_key()
        );
    }

    #[test]
    fn multi_gpu_runtimes_are_private() {
        let mut glp = Glp4nn::new(2);
        let mut d0 = Device::new(DeviceProps::k40c());
        let mut d1 = Device::new(DeviceProps::p100());
        glp.register_device(0, d0.props());
        glp.register_device(1, d1.props());
        let key = LayerKey::forward("net", "conv1");

        // Profile on GPU 0 only.
        glp.execute(&mut d0, 0, &key, groups(4));
        assert!(glp.plan_for(0, &key).is_some());
        assert!(glp.plan_for(1, &key).is_none(), "analyzers are per-GPU");

        // GPU 1 profiles independently.
        let r = glp.execute(&mut d1, 1, &key, groups(4));
        assert_eq!(r.mode, ExecMode::Profiling);
        assert!(glp.plan_for(1, &key).is_some());
    }

    #[test]
    fn cost_report_populates_after_profiling() {
        let mut glp = Glp4nn::new(1);
        let mut dev = Device::new(DeviceProps::titan_xp());
        glp.register_device(0, dev.props());
        let key = LayerKey::forward("net", "conv1");
        glp.execute(&mut dev, 0, &key, groups(6));
        let c = glp.cost_report(0);
        assert_eq!(c.kernels_recorded, 6);
        assert!(c.t_a.as_nanos() > 0);
        assert!(c.mem_total_bytes() > c.mem_tt_bytes + c.mem_k_bytes);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_device_panics() {
        let mut glp = Glp4nn::new(1);
        let mut dev = Device::new(DeviceProps::p100());
        let key = LayerKey::forward("net", "l");
        glp.execute(&mut dev, 0, &key, groups(1));
    }

    #[test]
    fn try_execute_returns_typed_error() {
        let mut glp = Glp4nn::new(1);
        let mut dev = Device::new(DeviceProps::p100());
        let key = LayerKey::forward("net", "l");
        let err = glp
            .try_execute(&mut dev, 0, &key, groups(1), None)
            .unwrap_err();
        assert_eq!(err, Glp4nnError::DeviceNotRegistered { gpu: 0 });
        assert!(err.to_string().contains("not registered"), "{err}");
        // Out-of-range index is the same error, not a panic.
        assert_eq!(
            glp.try_execute(&mut dev, 9, &key, groups(1), None),
            Err(Glp4nnError::DeviceNotRegistered { gpu: 9 })
        );
    }

    #[test]
    fn stream_pool_sized_by_plan() {
        let mut glp = Glp4nn::new(1);
        let mut dev = Device::new(DeviceProps::k40c());
        glp.register_device(0, dev.props());
        let key = LayerKey::forward("net", "conv1");
        glp.execute(&mut dev, 0, &key, groups(8));
        let plan = glp.plan_for(0, &key).unwrap();
        glp.execute(&mut dev, 0, &key, groups(8));
        assert_eq!(
            glp.stream_manager().pool_size(0).unwrap(),
            plan.streams as usize
        );
    }
}
