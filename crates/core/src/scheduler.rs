//! The runtime scheduler: the Fig. 6 workflow.
//!
//! "At the beginning, the runtime scheduler checks whether configurations
//! of these kernels have been collected. If not, it will invoke the
//! resource tracker to gather the profiling information of these kernels
//! ... Then the information gathered is parsed by the kernel parser and
//! further analyzed by the kernel analyzer ... The runtime scheduler will
//! take the result into account to dispatch kernels in the following
//! iterations." Dispatch policy is round-robin over the stream pool, as in
//! the paper.

use crate::analyzer::KernelAnalyzer;
use crate::framework::{ExecMode, ExecReport, LayerKey};
use crate::optim::{fuse_group, reorder_groups, OptimConfig};
use crate::streams::{StreamError, StreamManager};
use crate::tracker::ResourceTracker;
use gpu_sim::{Device, KernelDesc};
use sanitizer::{DispatchPlan, Sanitizer};

/// Per-GPU runtime scheduler.
#[derive(Debug)]
pub struct RuntimeScheduler {
    gpu: usize,
    optim: OptimConfig,
}

impl RuntimeScheduler {
    /// Scheduler for device index `gpu` with the default (paper-faithful,
    /// optimizations off) configuration.
    pub fn new(gpu: usize) -> Self {
        Self::with_optim(gpu, OptimConfig::default())
    }

    /// Scheduler with explicit fusion/reordering configuration (the
    /// paper's §6 extensions).
    pub fn with_optim(gpu: usize, optim: OptimConfig) -> Self {
        RuntimeScheduler { gpu, optim }
    }

    /// Execute one layer's kernel groups on `dev`.
    ///
    /// Each *group* is an ordered chain of dependent kernels (e.g. one
    /// sample's `im2col → sgemm → bias`); groups are mutually independent.
    /// First execution of a `key` runs everything on the default stream
    /// with profiling enabled, then feeds the tracker's parsed profiles to
    /// the analyzer. Later executions dispatch groups round-robin over a
    /// pool of `C_out` streams.
    ///
    /// With a [`Sanitizer`] attached, the exact schedule about to execute
    /// is validated first (chunk-region disjointness + plan hazards), and
    /// in full mode the executed command trace is replayed afterwards.
    // One parameter per Fig. 5 module plus the optional sanitizer; a
    // params struct would just rename the modules.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        dev: &mut Device,
        tracker: &ResourceTracker,
        analyzer: &mut KernelAnalyzer,
        streams: &StreamManager,
        key: &LayerKey,
        groups: Vec<Vec<KernelDesc>>,
        mut sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, StreamError> {
        let key_str = key.cache_key();
        let kernels: usize = groups.iter().map(Vec::len).sum();
        let t0 = dev.now();

        if let Some(plan) = analyzer.plan_for(&key_str).cloned() {
            // Optional §6 extensions, using the plan's profiled durations.
            let overhead = dev.props().launch_overhead_ns;
            let mut groups = groups;
            if self.optim.fusion {
                groups = groups
                    .into_iter()
                    .map(|g| {
                        fuse_group(
                            g,
                            &plan.class_durations,
                            overhead,
                            self.optim.fusion_threshold_x,
                        )
                    })
                    .collect();
            }
            if self.optim.reordering {
                groups = reorder_groups(groups, &plan.class_durations, overhead);
            }
            // Concurrent path: round-robin groups over the pool.
            let pool = streams.pool(dev, self.gpu, plan.streams as usize)?;
            if let Some(san) = sanitizer.as_deref_mut() {
                san.check_chunks(&key_str, &groups);
                san.check_plan(&DispatchPlan::round_robin(&key_str, &groups, pool.len()));
            }
            for (i, group) in groups.into_iter().enumerate() {
                let sid = pool[i % pool.len()];
                for k in group {
                    dev.launch(sid, k);
                }
            }
            // Inter-layer synchronization (paper §2.1): the layer ends with
            // a device-wide barrier.
            let end = dev.run();
            if let Some(san) = sanitizer {
                san.check_device(dev);
            }
            return Ok(ExecReport {
                mode: ExecMode::Concurrent {
                    streams: plan.streams,
                },
                elapsed_ns: end - t0,
                kernels,
            });
        }

        // Profiling path: default stream, tracker enabled. Skip any trace
        // entries produced since the last profiling window (kernels of
        // layers GLP4NN does not manage) before turning recording on.
        if let Some(san) = sanitizer.as_deref_mut() {
            // Chunks must be disjoint whatever the dispatch; the serial
            // profiling plan itself is trivially race-free.
            san.check_chunks(&key_str, &groups);
        }
        tracker.ingest(self.gpu, dev.trace());
        tracker.enable(self.gpu);
        let sid = streams.default_stream(dev);
        for group in groups {
            for k in group {
                dev.launch(sid, k);
            }
        }
        let end = dev.run();
        if let Some(san) = sanitizer {
            san.check_device(dev);
        }
        tracker.ingest(self.gpu, dev.trace());
        tracker.disable(self.gpu);
        let profiles = tracker.parse(self.gpu);
        analyzer.analyze(&key_str, &profiles);
        Ok(ExecReport {
            mode: ExecMode::Profiling,
            elapsed_ns: end - t0,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn groups(n: u64) -> Vec<Vec<KernelDesc>> {
        (0..n)
            .map(|i| {
                vec![
                    KernelDesc::new(
                        "im2col",
                        LaunchConfig::new(Dim3::linear(18), Dim3::linear(256), 33, 0),
                        KernelCost::new(3.0e5, 1.0e5),
                    )
                    .with_tag(i),
                    KernelDesc::new(
                        "sgemm",
                        LaunchConfig::new(Dim3::linear(24), Dim3::linear(128), 60, 8192),
                        KernelCost::new(6.0e6, 3.0e5),
                    )
                    .with_tag(i),
                ]
            })
            .collect()
    }

    fn setup() -> (Device, ResourceTracker, KernelAnalyzer, StreamManager) {
        let dev = Device::new(DeviceProps::k40c());
        let tracker = ResourceTracker::new(1);
        let analyzer = KernelAnalyzer::new(DeviceProps::k40c());
        let streams = StreamManager::new(1);
        (dev, tracker, analyzer, streams)
    }

    #[test]
    fn first_run_profiles_then_concurrent() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");

        let r1 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(8),
                None,
            )
            .unwrap();
        assert_eq!(r1.mode, ExecMode::Profiling);
        assert_eq!(r1.kernels, 16);
        assert!(analyzer.plan_for(&key.cache_key()).is_some());

        let r2 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(8),
                None,
            )
            .unwrap();
        match r2.mode {
            ExecMode::Concurrent { streams: s } => assert!(s >= 1),
            m => panic!("expected concurrent, got {m:?}"),
        }
    }

    #[test]
    fn concurrent_is_faster_for_small_kernels() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");
        let r1 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(16),
                None,
            )
            .unwrap();
        let r2 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(16),
                None,
            )
            .unwrap();
        assert!(
            r2.elapsed_ns < r1.elapsed_ns,
            "concurrent {} vs profiled/serial {}",
            r2.elapsed_ns,
            r1.elapsed_ns
        );
    }

    #[test]
    fn group_internal_order_is_preserved() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(4),
                None,
            )
            .unwrap();
        let trace_before = dev.trace().len();
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(4),
                None,
            )
            .unwrap();
        // For each tag, im2col must end before its sgemm starts.
        let new = &dev.trace()[trace_before..];
        for tag in 0..4u64 {
            let im = new
                .iter()
                .find(|t| t.name == "im2col" && t.tag == tag)
                .unwrap();
            let gm = new
                .iter()
                .find(|t| t.name == "sgemm" && t.tag == tag)
                .unwrap();
            assert!(
                gm.start_ns >= im.end_ns,
                "tag {tag}: sgemm {} before im2col end {}",
                gm.start_ns,
                im.end_ns
            );
        }
    }

    #[test]
    fn different_layers_profile_independently() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let k1 = LayerKey::forward("net", "conv1");
        let k2 = LayerKey::forward("net", "conv2");
        assert_eq!(
            sched
                .execute(
                    &mut dev,
                    &tracker,
                    &mut analyzer,
                    &streams,
                    &k1,
                    groups(2),
                    None
                )
                .unwrap()
                .mode,
            ExecMode::Profiling
        );
        assert_eq!(
            sched
                .execute(
                    &mut dev,
                    &tracker,
                    &mut analyzer,
                    &streams,
                    &k2,
                    groups(2),
                    None
                )
                .unwrap()
                .mode,
            ExecMode::Profiling
        );
        assert_eq!(analyzer.num_plans(), 2);
    }

    #[test]
    fn forward_and_backward_have_distinct_plans() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let kf = LayerKey::forward("net", "conv1");
        let kb = LayerKey::backward("net", "conv1");
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &kf,
                groups(2),
                None,
            )
            .unwrap();
        let r = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &kb,
                groups(2),
                None,
            )
            .unwrap();
        assert_eq!(r.mode, ExecMode::Profiling);
    }
}
