//! The runtime scheduler: the Fig. 6 workflow.
//!
//! "At the beginning, the runtime scheduler checks whether configurations
//! of these kernels have been collected. If not, it will invoke the
//! resource tracker to gather the profiling information of these kernels
//! ... Then the information gathered is parsed by the kernel parser and
//! further analyzed by the kernel analyzer ... The runtime scheduler will
//! take the result into account to dispatch kernels in the following
//! iterations." Dispatch policy is round-robin over the stream pool, as in
//! the paper.

use crate::analyzer::KernelAnalyzer;
use crate::framework::{ExecMode, ExecReport, LayerKey};
use crate::optim::{fuse_group, reorder_groups, OptimConfig};
use crate::plan::ExecPlan;
use crate::streams::{StreamError, StreamManager};
use crate::tracker::ResourceTracker;
use gpu_sim::{Device, KernelDesc};
use sanitizer::Sanitizer;
use std::sync::Arc;

/// Emit a host-track instant plus a counter bump on the device's attached
/// recorder, if any. The name closure runs only when telemetry is
/// attached, so the disabled path performs no formatting and no
/// allocation.
pub(crate) fn tel_instant(
    dev: &Device,
    cat: &str,
    counter: &str,
    make_name: impl FnOnce() -> String,
) {
    if let Some(rec) = dev.telemetry() {
        let mut r = rec.lock().unwrap_or_else(|p| p.into_inner());
        r.instant(
            dev.telemetry_pid(),
            telemetry::HOST_TID,
            &make_name(),
            cat,
            dev.now(),
        );
        r.counter_add(counter, 1);
    }
}

/// Emit a host-track span `[start_ns, end_ns]` on the device's attached
/// recorder, if any.
pub(crate) fn tel_span(
    dev: &Device,
    cat: &str,
    start_ns: u64,
    end_ns: u64,
    make_name: impl FnOnce() -> String,
) {
    if let Some(rec) = dev.telemetry() {
        let mut r = rec.lock().unwrap_or_else(|p| p.into_inner());
        r.span(
            dev.telemetry_pid(),
            telemetry::HOST_TID,
            &make_name(),
            cat,
            start_ns,
            end_ns,
        );
    }
}

/// Per-GPU runtime scheduler.
#[derive(Debug)]
pub struct RuntimeScheduler {
    gpu: usize,
    optim: OptimConfig,
    plan_reuse: bool,
}

impl RuntimeScheduler {
    /// Scheduler for device index `gpu` with the default (paper-faithful,
    /// optimizations off) configuration.
    pub fn new(gpu: usize) -> Self {
        Self::with_optim(gpu, OptimConfig::default())
    }

    /// Scheduler with explicit fusion/reordering configuration (the
    /// paper's §6 extensions).
    pub fn with_optim(gpu: usize, optim: OptimConfig) -> Self {
        RuntimeScheduler {
            gpu,
            optim,
            plan_reuse: true,
        }
    }

    /// Enable or disable execution-plan reuse. With reuse off every
    /// iteration re-captures (and re-validates) its schedule — the
    /// behaviour of the old imperative dispatch loop, kept as a baseline
    /// for the replay-equivalence checks and benchmarks.
    pub fn set_plan_reuse(&mut self, on: bool) {
        self.plan_reuse = on;
    }

    /// Whether execution-plan reuse is enabled.
    pub fn plan_reuse(&self) -> bool {
        self.plan_reuse
    }

    /// The cache key a layer's execution plan is stored under (the layer
    /// key qualified by the optimizer configuration, which changes the
    /// captured schedule).
    pub fn exec_plan_key(&self, key: &LayerKey) -> String {
        self.plan_key(&key.cache_key())
    }

    fn plan_key(&self, key_str: &str) -> String {
        format!("{key_str}#{}", self.optim.cache_tag())
    }

    /// Replay the frozen execution plan cached for `key`, if any. Returns
    /// `None` on a cache miss (or when plan reuse is disabled), in which
    /// case the caller must build the kernel groups and go through
    /// [`execute`](RuntimeScheduler::execute).
    pub fn replay_cached(
        &self,
        dev: &mut Device,
        analyzer: &KernelAnalyzer,
        key: &LayerKey,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Option<ExecReport> {
        if !self.plan_reuse {
            return None;
        }
        let plan = Arc::clone(analyzer.exec_plan_for(&self.plan_key(&key.cache_key()))?);
        tel_instant(dev, "plan", "plan.cache_hits", || {
            format!("plan.replay {}", key.cache_key())
        });
        let report = plan.replay(dev);
        if let Some(san) = sanitizer {
            san.check_device(dev);
        }
        Some(report)
    }

    /// Execute one layer's kernel groups on `dev`.
    ///
    /// Each *group* is an ordered chain of dependent kernels (e.g. one
    /// sample's `im2col → sgemm → bias`); groups are mutually independent.
    /// First execution of a `key` runs everything on the default stream
    /// with profiling enabled, then feeds the tracker's parsed profiles to
    /// the analyzer. Later executions dispatch groups round-robin over a
    /// pool of `C_out` streams.
    ///
    /// With a [`Sanitizer`] attached, the exact schedule about to execute
    /// is validated once at capture (chunk-region disjointness + plan
    /// hazards); in full mode the executed command trace is additionally
    /// replayed after every execution.
    // One parameter per Fig. 5 module plus the optional sanitizer; a
    // params struct would just rename the modules.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        dev: &mut Device,
        tracker: &ResourceTracker,
        analyzer: &mut KernelAnalyzer,
        streams: &StreamManager,
        key: &LayerKey,
        groups: Vec<Vec<KernelDesc>>,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, StreamError> {
        self.execute_with(
            dev,
            tracker,
            analyzer,
            streams,
            key,
            move || groups,
            sanitizer,
        )
    }

    /// Like [`execute`](RuntimeScheduler::execute), but builds the kernel
    /// groups lazily: on a plan-cache hit the closure is never called, so
    /// steady-state iterations skip group construction entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_with(
        &mut self,
        dev: &mut Device,
        tracker: &ResourceTracker,
        analyzer: &mut KernelAnalyzer,
        streams: &StreamManager,
        key: &LayerKey,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
        sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, StreamError> {
        self.execute_spec(
            dev,
            tracker,
            analyzer,
            streams,
            key,
            || None,
            make_groups,
            sanitizer,
        )
    }

    /// Like [`execute_with`](RuntimeScheduler::execute_with), with an
    /// optional symbolic access-set declaration for the site. When the
    /// layer supplies a [`sanitizer::SymGroupSpec`] and the sanitizer
    /// holds (or derives) a `Proven` certificate for `key.site_key()`,
    /// capture-time checking drops from O(chunks²) pairwise comparisons +
    /// an O(kernels²) plan pair scan to an O(chunks) conformance check +
    /// structural plan checks. Note the conformance check runs against the
    /// *post-transform* groups: §6 fusion/reordering rewrites kernels, so
    /// transformed schedules fail conformance and fall back to the
    /// pairwise path by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_spec(
        &mut self,
        dev: &mut Device,
        tracker: &ResourceTracker,
        analyzer: &mut KernelAnalyzer,
        streams: &StreamManager,
        key: &LayerKey,
        make_spec: impl FnOnce() -> Option<sanitizer::SymGroupSpec>,
        make_groups: impl FnOnce() -> Vec<Vec<KernelDesc>>,
        mut sanitizer: Option<&mut Sanitizer>,
    ) -> Result<ExecReport, StreamError> {
        // Replay path: the schedule was captured and validated before.
        // The hot loop does no analysis, no MILP, no plan validation, and
        // no per-kernel allocation.
        if let Some(report) = self.replay_cached(dev, analyzer, key, sanitizer.as_deref_mut()) {
            return Ok(report);
        }

        let key_str = key.cache_key();
        let groups = make_groups();

        if let Some(cplan) = analyzer.plan_for(&key_str).cloned() {
            // Capture path: apply the optional §6 extensions (using the
            // plan's profiled durations), freeze the round-robin schedule
            // over the C_out-stream pool, validate it once, cache it, and
            // replay.
            let overhead = dev.props().launch_overhead_ns;
            let mut groups = groups;
            if self.optim.fusion {
                groups = groups
                    .into_iter()
                    .map(|g| {
                        fuse_group(
                            g,
                            &cplan.class_durations,
                            overhead,
                            self.optim.fusion_threshold_x,
                        )
                    })
                    .collect();
            }
            if self.optim.reordering {
                groups = reorder_groups(groups, &cplan.class_durations, overhead);
            }
            let pool = streams.pool(dev, self.gpu, cplan.streams as usize)?;
            let plan = ExecPlan::capture_round_robin(
                &key_str,
                &groups,
                &pool,
                ExecMode::Concurrent {
                    streams: cplan.streams,
                },
            );
            if let Some(san) = sanitizer.as_deref_mut() {
                let certified = match make_spec() {
                    Some(spec) => san.check_chunks_spec(&key_str, &key.site_key(), &spec, &groups),
                    None => {
                        san.check_chunks(&key_str, &groups);
                        false
                    }
                };
                plan.validate_certified(san, certified);
            }
            let plan = Arc::new(plan);
            analyzer.store_exec_plan(&self.plan_key(&key_str), Arc::clone(&plan));
            tel_instant(dev, "plan", "plan.captures", || {
                format!("plan.capture {key_str}")
            });
            // Inter-layer synchronization (paper §2.1): the layer ends with
            // a device-wide barrier (inside replay).
            let report = plan.replay(dev);
            if let Some(san) = sanitizer {
                san.check_device(dev);
            }
            return Ok(report);
        }

        // Profiling path: a trivially captured serial plan on the default
        // stream, tracker enabled — transient, since profiling runs once
        // per key. Skip any trace entries produced since the last
        // profiling window (kernels of layers GLP4NN does not manage)
        // before turning recording on.
        if let Some(san) = sanitizer.as_deref_mut() {
            // Chunks must be disjoint whatever the dispatch; the serial
            // profiling plan itself is trivially race-free.
            match make_spec() {
                Some(spec) => {
                    san.check_chunks_spec(&key_str, &key.site_key(), &spec, &groups);
                }
                None => san.check_chunks(&key_str, &groups),
            }
        }
        let profile_start = dev.now();
        tracker.ingest(self.gpu, dev.trace());
        tracker.enable(self.gpu);
        let pool = [streams.default_stream(dev)];
        let plan = ExecPlan::capture_round_robin(&key_str, &groups, &pool, ExecMode::Profiling);
        let report = plan.replay(dev);
        if let Some(san) = sanitizer {
            san.check_device(dev);
        }
        tracker.ingest(self.gpu, dev.trace());
        tracker.disable(self.gpu);
        tel_span(dev, "profile", profile_start, dev.now(), || {
            format!("profile {key_str}")
        });
        let profiles = tracker.parse(self.gpu);
        tel_instant(dev, "cupti", "cupti.flushes", || {
            format!("cupti.flush gpu{}", self.gpu)
        });
        analyzer.analyze(&key_str, &profiles);
        tel_instant(dev, "milp", "milp.solves", || {
            format!("milp.solve {key_str}")
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn groups(n: u64) -> Vec<Vec<KernelDesc>> {
        (0..n)
            .map(|i| {
                vec![
                    KernelDesc::new(
                        "im2col",
                        LaunchConfig::new(Dim3::linear(18), Dim3::linear(256), 33, 0),
                        KernelCost::new(3.0e5, 1.0e5),
                    )
                    .with_tag(i),
                    KernelDesc::new(
                        "sgemm",
                        LaunchConfig::new(Dim3::linear(24), Dim3::linear(128), 60, 8192),
                        KernelCost::new(6.0e6, 3.0e5),
                    )
                    .with_tag(i),
                ]
            })
            .collect()
    }

    fn setup() -> (Device, ResourceTracker, KernelAnalyzer, StreamManager) {
        let dev = Device::new(DeviceProps::k40c());
        let tracker = ResourceTracker::new(1);
        let analyzer = KernelAnalyzer::new(DeviceProps::k40c());
        let streams = StreamManager::new(1);
        (dev, tracker, analyzer, streams)
    }

    #[test]
    fn first_run_profiles_then_concurrent() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");

        let r1 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(8),
                None,
            )
            .unwrap();
        assert_eq!(r1.mode, ExecMode::Profiling);
        assert_eq!(r1.kernels, 16);
        assert!(analyzer.plan_for(&key.cache_key()).is_some());

        let r2 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(8),
                None,
            )
            .unwrap();
        match r2.mode {
            ExecMode::Concurrent { streams: s } => assert!(s >= 1),
            m => panic!("expected concurrent, got {m:?}"),
        }
    }

    #[test]
    fn concurrent_is_faster_for_small_kernels() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");
        let r1 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(16),
                None,
            )
            .unwrap();
        let r2 = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(16),
                None,
            )
            .unwrap();
        assert!(
            r2.elapsed_ns < r1.elapsed_ns,
            "concurrent {} vs profiled/serial {}",
            r2.elapsed_ns,
            r1.elapsed_ns
        );
    }

    #[test]
    fn group_internal_order_is_preserved() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let key = LayerKey::forward("net", "conv1");
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(4),
                None,
            )
            .unwrap();
        let trace_before = dev.trace().len();
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &key,
                groups(4),
                None,
            )
            .unwrap();
        // For each tag, im2col must end before its sgemm starts.
        let new = &dev.trace()[trace_before..];
        for tag in 0..4u64 {
            let im = new
                .iter()
                .find(|t| t.name == "im2col" && t.tag == tag)
                .unwrap();
            let gm = new
                .iter()
                .find(|t| t.name == "sgemm" && t.tag == tag)
                .unwrap();
            assert!(
                gm.start_ns >= im.end_ns,
                "tag {tag}: sgemm {} before im2col end {}",
                gm.start_ns,
                im.end_ns
            );
        }
    }

    #[test]
    fn different_layers_profile_independently() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let k1 = LayerKey::forward("net", "conv1");
        let k2 = LayerKey::forward("net", "conv2");
        assert_eq!(
            sched
                .execute(
                    &mut dev,
                    &tracker,
                    &mut analyzer,
                    &streams,
                    &k1,
                    groups(2),
                    None
                )
                .unwrap()
                .mode,
            ExecMode::Profiling
        );
        assert_eq!(
            sched
                .execute(
                    &mut dev,
                    &tracker,
                    &mut analyzer,
                    &streams,
                    &k2,
                    groups(2),
                    None
                )
                .unwrap()
                .mode,
            ExecMode::Profiling
        );
        assert_eq!(analyzer.num_plans(), 2);
    }

    #[test]
    fn forward_and_backward_have_distinct_plans() {
        let (mut dev, tracker, mut analyzer, streams) = setup();
        let mut sched = RuntimeScheduler::new(0);
        let kf = LayerKey::forward("net", "conv1");
        let kb = LayerKey::backward("net", "conv1");
        sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &kf,
                groups(2),
                None,
            )
            .unwrap();
        let r = sched
            .execute(
                &mut dev,
                &tracker,
                &mut analyzer,
                &streams,
                &kb,
                groups(2),
                None,
            )
            .unwrap();
        assert_eq!(r.mode, ExecMode::Profiling);
    }
}
