//! Execution plans: capture-once / replay-many dispatch.
//!
//! After the first profiled run of a layer-phase the schedule is a pure
//! function of (network, layer, phase, chunk count, device, optimizer
//! config) — yet the runtime used to re-derive it and re-validate it on
//! every iteration. An [`ExecPlan`] freezes the outcome of that decision
//! process once, at *capture* time: the kernels to launch (shared, not
//! cloned per launch), the stream each goes to, and the event record/wait
//! edges between streams. *Replay* then walks the frozen step list against
//! a [`Device`] in a tight loop — no MILP solve, no plan validation, no
//! per-kernel heap allocation — the same division of labour as CUDA
//! Graphs' `cudaGraphInstantiate` / `cudaGraphLaunch`.
//!
//! All dispatch front-ends lower to this IR:
//!
//! * [`RuntimeScheduler::execute`](crate::scheduler::RuntimeScheduler::execute)
//!   captures its round-robin group schedule (after §6 fusion/reordering);
//! * [`KernelGraph::launch`](crate::graph::KernelGraph::launch) captures its
//!   stream-inheritance DAG schedule;
//! * the naive and fixed-stream modes of `nn::exec::ExecCtx` are trivially
//!   captured single-pool plans.
//!
//! The contract mirrors CUDA Graphs: a captured plan freezes kernel
//! geometry, so the cache key must cover everything the kernels depend on
//! (here: layer, phase, batch/chunk count, dispatch mode, device).

use crate::framework::{ExecMode, ExecReport};
use gpu_sim::{Device, EventId, KernelDesc, KernelId, StreamId};
use std::sync::Arc;

/// Ways a frozen plan's step list can be malformed. Plans produced by the
/// capture constructors are correct by construction; raw plans (built
/// from serialized or hand-written step lists via
/// [`ExecPlan::from_raw`]) are validated before they may touch a device —
/// replaying a malformed plan used to panic on the event-table index
/// instead of reporting *which* step was wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A `Wait` step references an in-range event that no earlier
    /// `Record` step produced: the wait could never be satisfied.
    UnrecordedEvent {
        /// Step index of the offending `Wait`.
        step: usize,
        /// Plan-local event number it waits on.
        event: u32,
    },
    /// A step references an event number outside the plan's event table.
    EventOutOfRange {
        /// Step index of the offending step.
        step: usize,
        /// Out-of-range plan-local event number.
        event: u32,
    },
    /// A step's stream index is outside the plan's stream table.
    StreamOutOfRange {
        /// Step index of the offending step.
        step: usize,
        /// Out-of-range stream-table index.
        stream: u16,
    },
    /// A `Launch` step's kernel index is outside the plan's kernel table.
    KernelOutOfRange {
        /// Step index of the offending `Launch`.
        step: usize,
        /// Out-of-range kernel-table index.
        kernel: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanError::UnrecordedEvent { step, event } => write!(
                f,
                "step {step} waits on event {event} before any step records it"
            ),
            PlanError::EventOutOfRange { step, event } => {
                write!(
                    f,
                    "step {step} references event {event} outside the event table"
                )
            }
            PlanError::StreamOutOfRange { step, stream } => {
                write!(
                    f,
                    "step {step} references stream {stream} outside the stream table"
                )
            }
            PlanError::KernelOutOfRange { step, kernel } => {
                write!(
                    f,
                    "step {step} launches kernel {kernel} outside the kernel table"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One step of a frozen execution plan. Streams, kernels, and events are
/// indices into the owning plan's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Launch `kernel` on `stream`.
    Launch {
        /// Index into the plan's stream table.
        stream: u16,
        /// Index into the plan's kernel table.
        kernel: u32,
    },
    /// Record plan-local event `event` on `stream`.
    Record {
        /// Index into the plan's stream table.
        stream: u16,
        /// Plan-local event number.
        event: u32,
    },
    /// Make `stream` wait for plan-local event `event`.
    Wait {
        /// Index into the plan's stream table.
        stream: u16,
        /// Plan-local event number.
        event: u32,
    },
}

/// A frozen, validated description of one layer-phase's dispatch.
///
/// Produced by [`capture_round_robin`](ExecPlan::capture_round_robin) or
/// [`capture_graph`](ExecPlan::capture_graph); executed by
/// [`replay`](ExecPlan::replay). Cheap to share (`Arc<ExecPlan>`): replay
/// takes `&self`.
#[derive(Debug)]
pub struct ExecPlan {
    label: String,
    /// Resolved device streams. Stream-manager pools only ever grow, so
    /// these stay valid for the lifetime of the device.
    streams: Vec<StreamId>,
    kernels: Vec<Arc<KernelDesc>>,
    steps: Vec<PlanStep>,
    num_events: u32,
    mode: ExecMode,
    /// Pool-relative stream index per kernel (validation view).
    node_stream: Vec<usize>,
    /// Declared happens-before dependencies per kernel (validation view).
    node_deps: Vec<Vec<usize>>,
}

impl ExecPlan {
    fn empty(label: &str, pool: &[StreamId], mode: ExecMode) -> Self {
        assert!(!pool.is_empty(), "capture needs at least one stream");
        ExecPlan {
            label: label.to_string(),
            streams: pool.to_vec(),
            kernels: Vec::new(),
            steps: Vec::new(),
            num_events: 0,
            mode,
            node_stream: Vec::new(),
            node_deps: Vec::new(),
        }
    }

    /// Capture the round-robin group schedule: group `g` goes to
    /// `pool[g % pool.len()]`, kernels inside a group stay in order on
    /// that stream (stream FIFO ordering — no events needed). Issue order
    /// is group-major, identical to the imperative loop this replaces.
    pub fn capture_round_robin(
        label: &str,
        groups: &[Vec<KernelDesc>],
        pool: &[StreamId],
        mode: ExecMode,
    ) -> Self {
        let mut plan = Self::empty(label, pool, mode);
        for (g, group) in groups.iter().enumerate() {
            let sidx = g % pool.len();
            let mut prev: Option<usize> = None;
            for k in group {
                let ki = plan.kernels.len();
                plan.kernels.push(Arc::new(k.clone()));
                plan.steps.push(PlanStep::Launch {
                    stream: sidx as u16,
                    kernel: ki as u32,
                });
                plan.node_stream.push(sidx);
                plan.node_deps.push(prev.into_iter().collect());
                prev = Some(ki);
            }
        }
        plan
    }

    /// Capture a DAG schedule with stream inheritance: each node runs on
    /// the stream of its first not-yet-continued dependency (falling back
    /// to round-robin pool assignment), waits on events of cross-stream
    /// dependencies, and records an event after launch. This reproduces
    /// [`KernelGraph::launch`](crate::graph::KernelGraph::launch) exactly,
    /// including its event-numbering order.
    ///
    /// `deps[i]` must only reference earlier nodes (`d < i`); later
    /// references are ignored, matching the validated graph invariant.
    pub fn capture_graph(
        label: &str,
        nodes: &[KernelDesc],
        deps: &[Vec<usize>],
        pool: &[StreamId],
        mode: ExecMode,
    ) -> Self {
        let n = nodes.len();
        let mut plan = Self::empty(label, pool, mode);
        let mut stream_idx: Vec<usize> = Vec::with_capacity(n);
        let mut event_of: Vec<u32> = Vec::with_capacity(n);
        let mut continued = vec![false; n];
        let mut rr = 0usize;
        for i in 0..n {
            // Inherit the stream of the first dependency that has not
            // already been continued by another child; otherwise open the
            // next pool stream round-robin.
            let inherit = deps[i]
                .iter()
                .copied()
                .filter(|&d| d < i)
                .find(|&d| !continued[d]);
            let sidx = match inherit {
                Some(d) => {
                    continued[d] = true;
                    stream_idx[d]
                }
                None => {
                    let s = rr % pool.len();
                    rr += 1;
                    s
                }
            };
            for &d in &deps[i] {
                if d < i && stream_idx[d] != sidx {
                    plan.steps.push(PlanStep::Wait {
                        stream: sidx as u16,
                        event: event_of[d],
                    });
                }
            }
            let ki = plan.kernels.len() as u32;
            plan.kernels.push(Arc::new(nodes[i].clone()));
            plan.steps.push(PlanStep::Launch {
                stream: sidx as u16,
                kernel: ki,
            });
            let ev = plan.num_events;
            plan.num_events += 1;
            plan.steps.push(PlanStep::Record {
                stream: sidx as u16,
                event: ev,
            });
            stream_idx.push(sidx);
            event_of.push(ev);
            plan.node_stream.push(sidx);
            plan.node_deps
                .push(deps[i].iter().copied().filter(|&d| d < i).collect());
        }
        plan
    }

    /// Reconstruct a plan from raw parts — a deserialized or hand-written
    /// step list — validating it up front. The validation views needed by
    /// [`validate`](ExecPlan::validate) are rebuilt from the steps: one
    /// node per `Launch`, with the event waits a stream accumulated since
    /// its previous launch becoming that node's declared dependencies
    /// (attributed to the launch whose `Record` produced each event).
    pub fn from_raw(
        label: &str,
        pool: &[StreamId],
        kernels: Vec<KernelDesc>,
        steps: Vec<PlanStep>,
        num_events: u32,
        mode: ExecMode,
    ) -> Result<Self, PlanError> {
        let mut plan = ExecPlan {
            label: label.to_string(),
            streams: pool.to_vec(),
            kernels: kernels.into_iter().map(Arc::new).collect(),
            steps,
            num_events,
            mode,
            node_stream: Vec::new(),
            node_deps: Vec::new(),
        };
        plan.validate_steps()?;
        let mut event_src: Vec<Option<usize>> = vec![None; num_events as usize];
        let mut last_node_on_stream: Vec<Option<usize>> = vec![None; plan.streams.len()];
        let mut pending: Vec<Vec<u32>> = vec![Vec::new(); plan.streams.len()];
        for step in &plan.steps {
            match *step {
                PlanStep::Launch { stream, .. } => {
                    let s = stream as usize;
                    let deps: Vec<usize> = pending[s]
                        .drain(..)
                        .filter_map(|e| event_src[e as usize])
                        .collect();
                    let node = plan.node_stream.len();
                    plan.node_stream.push(s);
                    plan.node_deps.push(deps);
                    last_node_on_stream[s] = Some(node);
                }
                PlanStep::Record { stream, event } => {
                    event_src[event as usize] = last_node_on_stream[stream as usize];
                }
                PlanStep::Wait { stream, event } => {
                    pending[stream as usize].push(event);
                }
            }
        }
        Ok(plan)
    }

    /// Check the step list against the plan's tables: every stream,
    /// kernel, and event index in range, and no wait on an event that has
    /// not been recorded by an earlier step.
    pub fn validate_steps(&self) -> Result<(), PlanError> {
        let mut recorded = vec![false; self.num_events as usize];
        for (i, step) in self.steps.iter().enumerate() {
            let stream = match *step {
                PlanStep::Launch { stream, .. }
                | PlanStep::Record { stream, .. }
                | PlanStep::Wait { stream, .. } => stream,
            };
            if stream as usize >= self.streams.len() {
                return Err(PlanError::StreamOutOfRange { step: i, stream });
            }
            match *step {
                PlanStep::Launch { kernel, .. } => {
                    if kernel as usize >= self.kernels.len() {
                        return Err(PlanError::KernelOutOfRange { step: i, kernel });
                    }
                }
                PlanStep::Record { event, .. } => {
                    if event as usize >= recorded.len() {
                        return Err(PlanError::EventOutOfRange { step: i, event });
                    }
                    recorded[event as usize] = true;
                }
                PlanStep::Wait { event, .. } => {
                    if event as usize >= recorded.len() {
                        return Err(PlanError::EventOutOfRange { step: i, event });
                    }
                    if !recorded[event as usize] {
                        return Err(PlanError::UnrecordedEvent { step: i, event });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate the step list, then replay. The safe entry point for
    /// plans not produced by a capture constructor.
    pub fn try_replay(&self, dev: &mut Device) -> Result<ExecReport, PlanError> {
        self.validate_steps()?;
        Ok(self.replay(dev))
    }

    /// Replay the plan: issue every step, run the device to completion,
    /// and report. The hot loop performs no analysis, no validation, and
    /// no per-kernel heap allocation (kernel descriptors are shared via
    /// `Arc`; events, if any, are created in one batch up front).
    pub fn replay(&self, dev: &mut Device) -> ExecReport {
        let t0 = dev.now();
        self.issue(dev);
        let end = dev.run();
        ExecReport {
            mode: self.mode,
            elapsed_ns: end - t0,
            kernels: self.kernels.len(),
        }
    }

    /// Issue every step of the plan without running the device. Callers
    /// that need the simulation driven to completion follow with
    /// [`Device::run`] (or use [`replay`](ExecPlan::replay)).
    pub fn issue(&self, dev: &mut Device) {
        self.issue_steps(dev, |_| {});
    }

    /// Like [`issue`](ExecPlan::issue) but collects the [`KernelId`]s
    /// assigned to the plan's kernels, in plan kernel order.
    pub fn issue_with_ids(&self, dev: &mut Device) -> Vec<KernelId> {
        let mut ids = Vec::with_capacity(self.kernels.len());
        self.issue_steps(dev, |id| ids.push(id));
        ids
    }

    fn issue_steps(&self, dev: &mut Device, mut on_launch: impl FnMut(KernelId)) {
        // Events are one-shot in the simulator (as in CUDA without
        // explicit reset), so each replay gets a fresh batch.
        let mut events: Vec<EventId> = Vec::with_capacity(self.num_events as usize);
        for _ in 0..self.num_events {
            events.push(dev.create_event());
        }
        for step in &self.steps {
            match *step {
                PlanStep::Launch { stream, kernel } => {
                    let id = dev.launch_shared(
                        self.streams[stream as usize],
                        Arc::clone(&self.kernels[kernel as usize]),
                    );
                    on_launch(id);
                }
                PlanStep::Record { stream, event } => {
                    dev.record_event(self.streams[stream as usize], events[event as usize]);
                }
                PlanStep::Wait { stream, event } => {
                    dev.wait_event(self.streams[stream as usize], events[event as usize]);
                }
            }
        }
    }

    /// Label the plan was captured under (sanitizer context string).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Execution mode reported by [`replay`](ExecPlan::replay).
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Number of kernels the plan launches per replay.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The device streams this plan issues onto (the capture pool).
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// Number of streams the plan dispatches across.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of plan-local events created per replay.
    pub fn num_events(&self) -> usize {
        self.num_events as usize
    }

    /// The frozen step list.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Kernel descriptor `i` of the plan's kernel table.
    pub fn kernel(&self, i: usize) -> &KernelDesc {
        &self.kernels[i]
    }

    /// Pool-relative stream index per kernel (validation view).
    pub fn node_streams(&self) -> &[usize] {
        &self.node_stream
    }

    /// Declared happens-before dependencies of kernel `i` (validation view).
    pub fn node_deps(&self, i: usize) -> &[usize] {
        &self.node_deps[i]
    }

    /// Run the sanitizer's static plan check against the captured
    /// schedule, borrowing the plan's tables instead of rebuilding a
    /// `DispatchPlan`. Called exactly once, at capture time.
    pub fn validate(&self, san: &mut sanitizer::Sanitizer) {
        self.validate_certified(san, false);
    }

    /// Capture-time validation with an optional symbolic certificate.
    /// With `certified` true a symbolic proof already covers hazard
    /// freedom, so only the structural checks run (dangling deps, wait
    /// cycles) — the O(kernels²) pair scan is skipped. Either way the
    /// plan is also linted if the sanitizer has a linter attached.
    pub fn validate_certified(&self, san: &mut sanitizer::Sanitizer, certified: bool) {
        let nodes: Vec<sanitizer::PlanNodeRef<'_>> = (0..self.kernels.len())
            .map(|i| sanitizer::PlanNodeRef {
                kernel: &self.kernels[i],
                stream: self.node_stream[i],
                deps: &self.node_deps[i],
            })
            .collect();
        if certified {
            san.check_plan_ref_certified(&self.label, &nodes);
        } else {
            san.check_plan_ref(&self.label, &nodes);
        }
        san.lint_plan_nodes(&self.label, &nodes, self.num_events > 0, certified);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str, blocks: u32, threads: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(threads), 32, 0),
            KernelCost::new(flops, flops / 4.0),
        )
    }

    fn timeline(dev: &Device) -> Vec<(String, u32, u64, u64, u64)> {
        dev.trace()
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    t.stream.raw(),
                    t.launch_ns,
                    t.start_ns,
                    t.end_ns,
                )
            })
            .collect()
    }

    #[test]
    fn round_robin_replay_matches_imperative_loop() {
        let groups: Vec<Vec<KernelDesc>> = (0..5)
            .map(|g| {
                (0..3)
                    .map(|j| kernel(&format!("k{g}_{j}"), 8 + g, 128, 1.0e6 * (j + 1) as f64))
                    .collect()
            })
            .collect();

        // Imperative reference: the loop the scheduler used to run.
        let mut dev_a = Device::new(DeviceProps::p100());
        let pool_a: Vec<_> = (0..3).map(|_| dev_a.create_stream()).collect();
        for (i, group) in groups.iter().enumerate() {
            let sid = pool_a[i % pool_a.len()];
            for k in group {
                dev_a.launch(sid, k.clone());
            }
        }
        let end_a = dev_a.run();

        // Captured plan, replayed twice.
        let mut dev_b = Device::new(DeviceProps::p100());
        let pool_b: Vec<_> = (0..3).map(|_| dev_b.create_stream()).collect();
        let plan = ExecPlan::capture_round_robin(
            "test",
            &groups,
            &pool_b,
            ExecMode::Concurrent { streams: 3 },
        );
        let r1 = plan.replay(&mut dev_b);
        assert_eq!(end_a, r1.elapsed_ns);
        assert_eq!(timeline(&dev_a), timeline(&dev_b));
        assert_eq!(r1.kernels, 15);

        let r2 = plan.replay(&mut dev_b);
        assert_eq!(r1.elapsed_ns, r2.elapsed_ns, "replay must be deterministic");
    }

    #[test]
    fn graph_replay_matches_imperative_launch() {
        // Diamond: 0 -> {1, 2} -> 3.
        let nodes = vec![
            kernel("a", 8, 128, 1.0e6),
            kernel("b", 8, 128, 2.0e6),
            kernel("c", 8, 128, 3.0e6),
            kernel("d", 8, 128, 1.0e6),
        ];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];

        // Imperative reference: the old KernelGraph::launch body.
        let mut dev_a = Device::new(DeviceProps::p100());
        let pool_a: Vec<_> = (0..2).map(|_| dev_a.create_stream()).collect();
        {
            let mut stream_of = Vec::new();
            let mut event_of: Vec<Option<EventId>> = vec![None; nodes.len()];
            let mut continued = vec![false; nodes.len()];
            let mut rr = 0usize;
            for i in 0..nodes.len() {
                let inherit = deps[i].iter().copied().find(|&d| !continued[d]);
                let sid = match inherit {
                    Some(d) => {
                        continued[d] = true;
                        stream_of[d]
                    }
                    None => {
                        let s = pool_a[rr % pool_a.len()];
                        rr += 1;
                        s
                    }
                };
                for &d in &deps[i] {
                    if stream_of[d] != sid {
                        dev_a.wait_event(sid, event_of[d].unwrap());
                    }
                }
                dev_a.launch(sid, nodes[i].clone());
                let ev = dev_a.create_event();
                dev_a.record_event(sid, ev);
                event_of[i] = Some(ev);
                stream_of.push(sid);
            }
        }
        dev_a.run();

        let mut dev_b = Device::new(DeviceProps::p100());
        let pool_b: Vec<_> = (0..2).map(|_| dev_b.create_stream()).collect();
        let plan = ExecPlan::capture_graph(
            "graph",
            &nodes,
            &deps,
            &pool_b,
            ExecMode::Concurrent { streams: 2 },
        );
        plan.replay(&mut dev_b);
        assert_eq!(timeline(&dev_a), timeline(&dev_b));
        assert_eq!(dev_a.command_log(), dev_b.command_log());
        assert_eq!(plan.num_events(), 4);
    }

    #[test]
    fn wait_on_unrecorded_event_is_a_typed_error_not_a_panic() {
        let mut dev = Device::new(DeviceProps::p100());
        let pool = vec![dev.create_stream(), dev.create_stream()];
        // A wait that precedes its record: replaying this used to index a
        // not-yet-created simulator event.
        let steps = vec![
            PlanStep::Wait {
                stream: 0,
                event: 0,
            },
            PlanStep::Launch {
                stream: 0,
                kernel: 0,
            },
            PlanStep::Record {
                stream: 0,
                event: 0,
            },
        ];
        let err = ExecPlan::from_raw(
            "bad",
            &pool,
            vec![kernel("k", 8, 128, 1.0e6)],
            steps,
            1,
            ExecMode::Profiling,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::UnrecordedEvent { step: 0, event: 0 });
        assert!(err.to_string().contains("before any step records it"));

        // The same malformed steps inside an already-built plan are caught
        // by try_replay instead of panicking in the issue loop.
        let mut plan = ExecPlan::capture_round_robin(
            "bad2",
            &[vec![kernel("k", 8, 128, 1.0e6)]],
            &pool,
            ExecMode::Profiling,
        );
        plan.steps.push(PlanStep::Wait {
            stream: 0,
            event: 7,
        });
        let err = plan.try_replay(&mut dev).unwrap_err();
        assert_eq!(err, PlanError::EventOutOfRange { step: 1, event: 7 });
    }

    #[test]
    fn from_raw_validates_tables_and_rebuilds_views() {
        let mut dev = Device::new(DeviceProps::p100());
        let pool = vec![dev.create_stream(), dev.create_stream()];
        let ks = vec![kernel("a", 8, 128, 1.0e6), kernel("b", 8, 128, 1.0e6)];

        // Out-of-range kernel and stream indices are typed errors.
        let bad_kernel = vec![PlanStep::Launch {
            stream: 0,
            kernel: 9,
        }];
        assert_eq!(
            ExecPlan::from_raw("t", &pool, ks.clone(), bad_kernel, 0, ExecMode::Profiling)
                .unwrap_err(),
            PlanError::KernelOutOfRange { step: 0, kernel: 9 }
        );
        let bad_stream = vec![PlanStep::Launch {
            stream: 5,
            kernel: 0,
        }];
        assert_eq!(
            ExecPlan::from_raw("t", &pool, ks.clone(), bad_stream, 0, ExecMode::Profiling)
                .unwrap_err(),
            PlanError::StreamOutOfRange { step: 0, stream: 5 }
        );

        // A well-formed cross-stream record/wait chain replays and its
        // reconstructed validation view carries the event dependency.
        let steps = vec![
            PlanStep::Launch {
                stream: 0,
                kernel: 0,
            },
            PlanStep::Record {
                stream: 0,
                event: 0,
            },
            PlanStep::Wait {
                stream: 1,
                event: 0,
            },
            PlanStep::Launch {
                stream: 1,
                kernel: 1,
            },
        ];
        let plan = ExecPlan::from_raw("t", &pool, ks, steps, 1, ExecMode::Profiling).unwrap();
        assert_eq!(plan.node_streams(), &[0, 1]);
        assert_eq!(plan.node_deps(1), &[0], "wait reattributed to launch 0");
        let r = plan.try_replay(&mut dev).unwrap();
        assert_eq!(r.kernels, 2);
    }

    #[test]
    fn single_stream_capture_serializes() {
        let groups = vec![
            vec![kernel("a", 8, 128, 1.0e6)],
            vec![kernel("b", 8, 128, 1.0e6)],
        ];
        let mut dev = Device::new(DeviceProps::p100());
        let pool = vec![dev.default_stream()];
        let plan = ExecPlan::capture_round_robin("serial", &groups, &pool, ExecMode::Profiling);
        plan.replay(&mut dev);
        let tl = timeline(&dev);
        assert_eq!(tl.len(), 2);
        assert!(tl[1].3 >= tl[0].4, "single stream must serialize");
    }
}
