//! Execution plans: capture-once / replay-many dispatch.
//!
//! After the first profiled run of a layer-phase the schedule is a pure
//! function of (network, layer, phase, chunk count, device, optimizer
//! config) — yet the runtime used to re-derive it and re-validate it on
//! every iteration. An [`ExecPlan`] freezes the outcome of that decision
//! process once, at *capture* time: the kernels to launch (shared, not
//! cloned per launch), the stream each goes to, and the event record/wait
//! edges between streams. *Replay* then walks the frozen step list against
//! a [`Device`] in a tight loop — no MILP solve, no plan validation, no
//! per-kernel heap allocation — the same division of labour as CUDA
//! Graphs' `cudaGraphInstantiate` / `cudaGraphLaunch`.
//!
//! All dispatch front-ends lower to this IR:
//!
//! * [`RuntimeScheduler::execute`](crate::scheduler::RuntimeScheduler::execute)
//!   captures its round-robin group schedule (after §6 fusion/reordering);
//! * [`KernelGraph::launch`](crate::graph::KernelGraph::launch) captures its
//!   stream-inheritance DAG schedule;
//! * the naive and fixed-stream modes of `nn::exec::ExecCtx` are trivially
//!   captured single-pool plans.
//!
//! The contract mirrors CUDA Graphs: a captured plan freezes kernel
//! geometry, so the cache key must cover everything the kernels depend on
//! (here: layer, phase, batch/chunk count, dispatch mode, device).

use crate::framework::{ExecMode, ExecReport};
use gpu_sim::{Device, EventId, KernelDesc, KernelId, StreamId};
use std::sync::Arc;

/// One step of a frozen execution plan. Streams, kernels, and events are
/// indices into the owning plan's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Launch `kernel` on `stream`.
    Launch {
        /// Index into the plan's stream table.
        stream: u16,
        /// Index into the plan's kernel table.
        kernel: u32,
    },
    /// Record plan-local event `event` on `stream`.
    Record {
        /// Index into the plan's stream table.
        stream: u16,
        /// Plan-local event number.
        event: u32,
    },
    /// Make `stream` wait for plan-local event `event`.
    Wait {
        /// Index into the plan's stream table.
        stream: u16,
        /// Plan-local event number.
        event: u32,
    },
}

/// A frozen, validated description of one layer-phase's dispatch.
///
/// Produced by [`capture_round_robin`](ExecPlan::capture_round_robin) or
/// [`capture_graph`](ExecPlan::capture_graph); executed by
/// [`replay`](ExecPlan::replay). Cheap to share (`Arc<ExecPlan>`): replay
/// takes `&self`.
#[derive(Debug)]
pub struct ExecPlan {
    label: String,
    /// Resolved device streams. Stream-manager pools only ever grow, so
    /// these stay valid for the lifetime of the device.
    streams: Vec<StreamId>,
    kernels: Vec<Arc<KernelDesc>>,
    steps: Vec<PlanStep>,
    num_events: u32,
    mode: ExecMode,
    /// Pool-relative stream index per kernel (validation view).
    node_stream: Vec<usize>,
    /// Declared happens-before dependencies per kernel (validation view).
    node_deps: Vec<Vec<usize>>,
}

impl ExecPlan {
    fn empty(label: &str, pool: &[StreamId], mode: ExecMode) -> Self {
        assert!(!pool.is_empty(), "capture needs at least one stream");
        ExecPlan {
            label: label.to_string(),
            streams: pool.to_vec(),
            kernels: Vec::new(),
            steps: Vec::new(),
            num_events: 0,
            mode,
            node_stream: Vec::new(),
            node_deps: Vec::new(),
        }
    }

    /// Capture the round-robin group schedule: group `g` goes to
    /// `pool[g % pool.len()]`, kernels inside a group stay in order on
    /// that stream (stream FIFO ordering — no events needed). Issue order
    /// is group-major, identical to the imperative loop this replaces.
    pub fn capture_round_robin(
        label: &str,
        groups: &[Vec<KernelDesc>],
        pool: &[StreamId],
        mode: ExecMode,
    ) -> Self {
        let mut plan = Self::empty(label, pool, mode);
        for (g, group) in groups.iter().enumerate() {
            let sidx = g % pool.len();
            let mut prev: Option<usize> = None;
            for k in group {
                let ki = plan.kernels.len();
                plan.kernels.push(Arc::new(k.clone()));
                plan.steps.push(PlanStep::Launch {
                    stream: sidx as u16,
                    kernel: ki as u32,
                });
                plan.node_stream.push(sidx);
                plan.node_deps.push(prev.into_iter().collect());
                prev = Some(ki);
            }
        }
        plan
    }

    /// Capture a DAG schedule with stream inheritance: each node runs on
    /// the stream of its first not-yet-continued dependency (falling back
    /// to round-robin pool assignment), waits on events of cross-stream
    /// dependencies, and records an event after launch. This reproduces
    /// [`KernelGraph::launch`](crate::graph::KernelGraph::launch) exactly,
    /// including its event-numbering order.
    ///
    /// `deps[i]` must only reference earlier nodes (`d < i`); later
    /// references are ignored, matching the validated graph invariant.
    pub fn capture_graph(
        label: &str,
        nodes: &[KernelDesc],
        deps: &[Vec<usize>],
        pool: &[StreamId],
        mode: ExecMode,
    ) -> Self {
        let n = nodes.len();
        let mut plan = Self::empty(label, pool, mode);
        let mut stream_idx: Vec<usize> = Vec::with_capacity(n);
        let mut event_of: Vec<u32> = Vec::with_capacity(n);
        let mut continued = vec![false; n];
        let mut rr = 0usize;
        for i in 0..n {
            // Inherit the stream of the first dependency that has not
            // already been continued by another child; otherwise open the
            // next pool stream round-robin.
            let inherit = deps[i]
                .iter()
                .copied()
                .filter(|&d| d < i)
                .find(|&d| !continued[d]);
            let sidx = match inherit {
                Some(d) => {
                    continued[d] = true;
                    stream_idx[d]
                }
                None => {
                    let s = rr % pool.len();
                    rr += 1;
                    s
                }
            };
            for &d in &deps[i] {
                if d < i && stream_idx[d] != sidx {
                    plan.steps.push(PlanStep::Wait {
                        stream: sidx as u16,
                        event: event_of[d],
                    });
                }
            }
            let ki = plan.kernels.len() as u32;
            plan.kernels.push(Arc::new(nodes[i].clone()));
            plan.steps.push(PlanStep::Launch {
                stream: sidx as u16,
                kernel: ki,
            });
            let ev = plan.num_events;
            plan.num_events += 1;
            plan.steps.push(PlanStep::Record {
                stream: sidx as u16,
                event: ev,
            });
            stream_idx.push(sidx);
            event_of.push(ev);
            plan.node_stream.push(sidx);
            plan.node_deps
                .push(deps[i].iter().copied().filter(|&d| d < i).collect());
        }
        plan
    }

    /// Replay the plan: issue every step, run the device to completion,
    /// and report. The hot loop performs no analysis, no validation, and
    /// no per-kernel heap allocation (kernel descriptors are shared via
    /// `Arc`; events, if any, are created in one batch up front).
    pub fn replay(&self, dev: &mut Device) -> ExecReport {
        let t0 = dev.now();
        self.issue(dev);
        let end = dev.run();
        ExecReport {
            mode: self.mode,
            elapsed_ns: end - t0,
            kernels: self.kernels.len(),
        }
    }

    /// Issue every step of the plan without running the device. Callers
    /// that need the simulation driven to completion follow with
    /// [`Device::run`] (or use [`replay`](ExecPlan::replay)).
    pub fn issue(&self, dev: &mut Device) {
        self.issue_steps(dev, |_| {});
    }

    /// Like [`issue`](ExecPlan::issue) but collects the [`KernelId`]s
    /// assigned to the plan's kernels, in plan kernel order.
    pub fn issue_with_ids(&self, dev: &mut Device) -> Vec<KernelId> {
        let mut ids = Vec::with_capacity(self.kernels.len());
        self.issue_steps(dev, |id| ids.push(id));
        ids
    }

    fn issue_steps(&self, dev: &mut Device, mut on_launch: impl FnMut(KernelId)) {
        // Events are one-shot in the simulator (as in CUDA without
        // explicit reset), so each replay gets a fresh batch.
        let mut events: Vec<EventId> = Vec::with_capacity(self.num_events as usize);
        for _ in 0..self.num_events {
            events.push(dev.create_event());
        }
        for step in &self.steps {
            match *step {
                PlanStep::Launch { stream, kernel } => {
                    let id = dev.launch_shared(
                        self.streams[stream as usize],
                        Arc::clone(&self.kernels[kernel as usize]),
                    );
                    on_launch(id);
                }
                PlanStep::Record { stream, event } => {
                    dev.record_event(self.streams[stream as usize], events[event as usize]);
                }
                PlanStep::Wait { stream, event } => {
                    dev.wait_event(self.streams[stream as usize], events[event as usize]);
                }
            }
        }
    }

    /// Label the plan was captured under (sanitizer context string).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Execution mode reported by [`replay`](ExecPlan::replay).
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Number of kernels the plan launches per replay.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The device streams this plan issues onto (the capture pool).
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// Number of streams the plan dispatches across.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of plan-local events created per replay.
    pub fn num_events(&self) -> usize {
        self.num_events as usize
    }

    /// The frozen step list.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Kernel descriptor `i` of the plan's kernel table.
    pub fn kernel(&self, i: usize) -> &KernelDesc {
        &self.kernels[i]
    }

    /// Pool-relative stream index per kernel (validation view).
    pub fn node_streams(&self) -> &[usize] {
        &self.node_stream
    }

    /// Declared happens-before dependencies of kernel `i` (validation view).
    pub fn node_deps(&self, i: usize) -> &[usize] {
        &self.node_deps[i]
    }

    /// Run the sanitizer's static plan check against the captured
    /// schedule, borrowing the plan's tables instead of rebuilding a
    /// `DispatchPlan`. Called exactly once, at capture time.
    pub fn validate(&self, san: &mut sanitizer::Sanitizer) {
        let nodes: Vec<sanitizer::PlanNodeRef<'_>> = (0..self.kernels.len())
            .map(|i| sanitizer::PlanNodeRef {
                kernel: &self.kernels[i],
                stream: self.node_stream[i],
                deps: &self.node_deps[i],
            })
            .collect();
        san.check_plan_ref(&self.label, &nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str, blocks: u32, threads: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(threads), 32, 0),
            KernelCost::new(flops, flops / 4.0),
        )
    }

    fn timeline(dev: &Device) -> Vec<(String, u32, u64, u64, u64)> {
        dev.trace()
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    t.stream.raw(),
                    t.launch_ns,
                    t.start_ns,
                    t.end_ns,
                )
            })
            .collect()
    }

    #[test]
    fn round_robin_replay_matches_imperative_loop() {
        let groups: Vec<Vec<KernelDesc>> = (0..5)
            .map(|g| {
                (0..3)
                    .map(|j| kernel(&format!("k{g}_{j}"), 8 + g, 128, 1.0e6 * (j + 1) as f64))
                    .collect()
            })
            .collect();

        // Imperative reference: the loop the scheduler used to run.
        let mut dev_a = Device::new(DeviceProps::p100());
        let pool_a: Vec<_> = (0..3).map(|_| dev_a.create_stream()).collect();
        for (i, group) in groups.iter().enumerate() {
            let sid = pool_a[i % pool_a.len()];
            for k in group {
                dev_a.launch(sid, k.clone());
            }
        }
        let end_a = dev_a.run();

        // Captured plan, replayed twice.
        let mut dev_b = Device::new(DeviceProps::p100());
        let pool_b: Vec<_> = (0..3).map(|_| dev_b.create_stream()).collect();
        let plan = ExecPlan::capture_round_robin(
            "test",
            &groups,
            &pool_b,
            ExecMode::Concurrent { streams: 3 },
        );
        let r1 = plan.replay(&mut dev_b);
        assert_eq!(end_a, r1.elapsed_ns);
        assert_eq!(timeline(&dev_a), timeline(&dev_b));
        assert_eq!(r1.kernels, 15);

        let r2 = plan.replay(&mut dev_b);
        assert_eq!(r1.elapsed_ns, r2.elapsed_ns, "replay must be deterministic");
    }

    #[test]
    fn graph_replay_matches_imperative_launch() {
        // Diamond: 0 -> {1, 2} -> 3.
        let nodes = vec![
            kernel("a", 8, 128, 1.0e6),
            kernel("b", 8, 128, 2.0e6),
            kernel("c", 8, 128, 3.0e6),
            kernel("d", 8, 128, 1.0e6),
        ];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];

        // Imperative reference: the old KernelGraph::launch body.
        let mut dev_a = Device::new(DeviceProps::p100());
        let pool_a: Vec<_> = (0..2).map(|_| dev_a.create_stream()).collect();
        {
            let mut stream_of = Vec::new();
            let mut event_of: Vec<Option<EventId>> = vec![None; nodes.len()];
            let mut continued = vec![false; nodes.len()];
            let mut rr = 0usize;
            for i in 0..nodes.len() {
                let inherit = deps[i].iter().copied().find(|&d| !continued[d]);
                let sid = match inherit {
                    Some(d) => {
                        continued[d] = true;
                        stream_of[d]
                    }
                    None => {
                        let s = pool_a[rr % pool_a.len()];
                        rr += 1;
                        s
                    }
                };
                for &d in &deps[i] {
                    if stream_of[d] != sid {
                        dev_a.wait_event(sid, event_of[d].unwrap());
                    }
                }
                dev_a.launch(sid, nodes[i].clone());
                let ev = dev_a.create_event();
                dev_a.record_event(sid, ev);
                event_of[i] = Some(ev);
                stream_of.push(sid);
            }
        }
        dev_a.run();

        let mut dev_b = Device::new(DeviceProps::p100());
        let pool_b: Vec<_> = (0..2).map(|_| dev_b.create_stream()).collect();
        let plan = ExecPlan::capture_graph(
            "graph",
            &nodes,
            &deps,
            &pool_b,
            ExecMode::Concurrent { streams: 2 },
        );
        plan.replay(&mut dev_b);
        assert_eq!(timeline(&dev_a), timeline(&dev_b));
        assert_eq!(dev_a.command_log(), dev_b.command_log());
        assert_eq!(plan.num_events(), 4);
    }

    #[test]
    fn single_stream_capture_serializes() {
        let groups = vec![
            vec![kernel("a", 8, 128, 1.0e6)],
            vec![kernel("b", 8, 128, 1.0e6)],
        ];
        let mut dev = Device::new(DeviceProps::p100());
        let pool = vec![dev.default_stream()];
        let plan = ExecPlan::capture_round_robin("serial", &groups, &pool, ExecMode::Profiling);
        plan.replay(&mut dev);
        let tl = timeline(&dev);
        assert_eq!(tl.len(), 2);
        assert!(tl[1].3 >= tl[0].4, "single stream must serialize");
    }
}
