//! The resource tracker: kernel profiler + kernel parser (paper §3.1).
//!
//! One tracker instance is shared by every GPU on the machine (Fig. 5).
//! Internally it keeps one compact [`cupti_sim::Profiler`] per device; the
//! *kernel parser* half aggregates raw activity records into one
//! [`KernelProfile`] per kernel *class* (same name + launch configuration),
//! averaging execution times over instances — exactly the "profiling
//! input" column of the paper's Table 2.

use crate::analyzer::KernelProfile;
use cupti_sim::{ActivityRecord, Profiler};
use parking_lot::Mutex;
use std::collections::HashMap;

/// The shared resource tracker.
///
/// Wrapped in a [`Mutex`] because the paper's architecture shares one
/// tracker across per-GPU runtime schedulers; dispatch itself stays
/// single-threaded (that is the point of the stream pool), so the lock is
/// uncontended in practice.
#[derive(Debug)]
pub struct ResourceTracker {
    inner: Mutex<TrackerInner>,
}

#[derive(Debug)]
struct TrackerInner {
    profilers: Vec<Profiler>,
}

impl ResourceTracker {
    /// Tracker for `num_gpus` devices.
    pub fn new(num_gpus: usize) -> Self {
        ResourceTracker {
            inner: Mutex::new(TrackerInner {
                profilers: (0..num_gpus).map(|_| Profiler::new()).collect(),
            }),
        }
    }

    /// Number of devices tracked.
    pub fn num_gpus(&self) -> usize {
        self.inner.lock().profilers.len()
    }

    /// Enable profiling on one device (start of a profiling run).
    pub fn enable(&self, gpu: usize) {
        self.inner.lock().profilers[gpu].enable();
    }

    /// Disable profiling on one device.
    pub fn disable(&self, gpu: usize) {
        self.inner.lock().profilers[gpu].disable();
    }

    /// Ingest new kernel traces from device `gpu` (asynchronous activity
    /// delivery). Returns the number of kernels recorded.
    pub fn ingest(&self, gpu: usize, trace: &[gpu_sim::KernelTrace]) -> usize {
        self.inner.lock().profilers[gpu].ingest(trace)
    }

    /// Flush raw records and parse them into per-class kernel profiles —
    /// the *kernel parser* step. Records are grouped by kernel name;
    /// launch configuration is taken from the first record of a class and
    /// execution time is averaged over all its instances.
    pub fn parse(&self, gpu: usize) -> Vec<KernelProfile> {
        let records = self.inner.lock().profilers[gpu].flush();
        parse_records(&records)
    }

    /// Profiler overhead accounting for device `gpu` (Fig. 10 / Table 6).
    pub fn overhead(&self, gpu: usize) -> cupti_sim::ProfilerOverhead {
        self.inner.lock().profilers[gpu].overhead()
    }

    /// Mirror device `gpu`'s profiler activity into a shared recorder
    /// (ingest instants on the host track, record counters).
    pub fn set_telemetry(&self, gpu: usize, rec: telemetry::SharedRecorder, pid: u32) {
        self.inner.lock().profilers[gpu].set_telemetry(rec, pid);
    }

    /// Detach the shared recorder from device `gpu`'s profiler.
    pub fn clear_telemetry(&self, gpu: usize) {
        self.inner.lock().profilers[gpu].clear_telemetry();
    }
}

/// Group raw activity records into kernel-class profiles.
pub fn parse_records(records: &[ActivityRecord]) -> Vec<KernelProfile> {
    // Preserve first-seen order for determinism.
    let mut order: Vec<String> = Vec::new();
    let mut acc: HashMap<String, (ActivityRecord, u64, u64)> = HashMap::new();
    for r in records {
        match acc.get_mut(&r.name) {
            None => {
                order.push(r.name.clone());
                acc.insert(r.name.clone(), (r.clone(), r.duration_ns(), 1));
            }
            Some((_, total, n)) => {
                *total += r.duration_ns();
                *n += 1;
            }
        }
    }
    order
        .into_iter()
        .map(|name| {
            let (rec, total, n) = acc.remove(&name).expect("name in order map");
            KernelProfile {
                name,
                grid_blocks: (rec.grid.0 as u64) * (rec.grid.1 as u64) * (rec.grid.2 as u64),
                threads_per_block: rec.block.0 * rec.block.1 * rec.block.2,
                regs_per_thread: rec.regs_per_thread,
                smem_per_block: rec.smem_static + rec.smem_dynamic,
                avg_duration_ns: total / n,
                instances: n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn run_layer(dev: &mut Device, reps: u32) {
        let s = dev.create_stream();
        for i in 0..reps {
            dev.launch(
                s,
                KernelDesc::new(
                    "im2col",
                    LaunchConfig::new(Dim3::linear(18), Dim3::linear(256), 33, 0),
                    KernelCost::new(1.0e5, 5.0e4),
                )
                .with_tag(i as u64),
            );
            dev.launch(
                s,
                KernelDesc::new(
                    "sgemm",
                    LaunchConfig::new(Dim3::linear(24), Dim3::linear(128), 60, 8192),
                    KernelCost::new(2.0e6, 1.0e5),
                )
                .with_tag(i as u64),
            );
        }
        dev.run();
    }

    #[test]
    fn parses_kernel_classes() {
        let mut dev = Device::new(DeviceProps::k40c());
        let tr = ResourceTracker::new(1);
        tr.enable(0);
        run_layer(&mut dev, 4);
        assert_eq!(tr.ingest(0, dev.trace()), 8);
        let profiles = tr.parse(0);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "im2col");
        assert_eq!(profiles[0].instances, 4);
        assert_eq!(profiles[0].grid_blocks, 18);
        assert_eq!(profiles[0].threads_per_block, 256);
        assert_eq!(profiles[0].regs_per_thread, 33);
        assert_eq!(profiles[1].name, "sgemm");
        assert_eq!(profiles[1].smem_per_block, 8192);
        assert!(profiles[1].avg_duration_ns > profiles[0].avg_duration_ns);
    }

    #[test]
    fn disabled_tracker_collects_nothing() {
        let mut dev = Device::new(DeviceProps::k40c());
        let tr = ResourceTracker::new(1);
        run_layer(&mut dev, 2);
        assert_eq!(tr.ingest(0, dev.trace()), 0);
        assert!(tr.parse(0).is_empty());
    }

    #[test]
    fn tracker_is_per_gpu() {
        let tr = ResourceTracker::new(2);
        assert_eq!(tr.num_gpus(), 2);
        let mut d0 = Device::new(DeviceProps::k40c());
        let mut d1 = Device::new(DeviceProps::p100());
        tr.enable(0);
        tr.enable(1);
        run_layer(&mut d0, 1);
        run_layer(&mut d1, 3);
        tr.ingest(0, d0.trace());
        tr.ingest(1, d1.trace());
        assert_eq!(tr.parse(0)[0].instances, 1);
        assert_eq!(tr.parse(1)[0].instances, 3);
    }

    #[test]
    fn overhead_reflects_ingested_kernels() {
        let mut dev = Device::new(DeviceProps::p100());
        let tr = ResourceTracker::new(1);
        tr.enable(0);
        run_layer(&mut dev, 5);
        tr.ingest(0, dev.trace());
        let o = tr.overhead(0);
        assert_eq!(o.kernels_recorded, 10);
        assert_eq!(o.mem_tt_bytes, 160);
    }

    #[test]
    fn parse_records_averages_durations() {
        use cupti_sim::{ActivityKind, ActivityRecord};
        let base = ActivityRecord {
            kind: ActivityKind::Kernel,
            name: "k".into(),
            tag: 0,
            stream: 0,
            grid: (2, 1, 1),
            block: (64, 1, 1),
            regs_per_thread: 8,
            smem_static: 0,
            smem_dynamic: 0,
            start_ns: 0,
            end_ns: 100,
        };
        let mut r2 = base.clone();
        r2.start_ns = 0;
        r2.end_ns = 300;
        let profiles = parse_records(&[base, r2]);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].avg_duration_ns, 200);
    }
}
