//! The kernel analyzer: the paper's analytical model (§3.2).
//!
//! The *concurrency analyzer* turns per-kernel-class profiles into an
//! integer program — maximize the occupancy ratio `OR_SM` (Eqs. 1-3)
//! subject to shared-memory (Eq. 4), thread (Eq. 5), resident-block and
//! concurrency-degree (Eq. 6) constraints with per-kernel caps (Eq. 7) —
//! solves it with the [`milp`] crate (standing in for GLPK), and reports
//! `C_out = Σ #K_i` (Eq. 9), the number of streams to create.
//!
//! The *concurrency maintainer* caches one [`ConcurrencyPlan`] per layer
//! per GPU so the one-time analysis cost (`T_a`, Table 6) is paid once —
//! and, one level up, one captured [`ExecPlan`] per (layer key, optimizer
//! config), so steady-state iterations replay a frozen schedule without
//! re-deriving or re-validating it.

use crate::plan::ExecPlan;
use gpu_sim::DeviceProps;
use milp::{Model, Sense, VarKind};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated profile of one kernel class, produced by the resource
/// tracker's kernel parser (the "profiling input" rows of Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Total blocks per instance (`#β_K`).
    pub grid_blocks: u64,
    /// Threads per block (`τ_K`).
    pub threads_per_block: u32,
    /// Registers per thread (soft constraint in the paper's model).
    pub regs_per_thread: u32,
    /// Shared memory per block (`sm_K`).
    pub smem_per_block: u32,
    /// Mean execution time (`T_K`), ns.
    pub avg_duration_ns: u64,
    /// Number of instances averaged.
    pub instances: u64,
}

/// The analyzer's verdict for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyPlan {
    /// `#K_i` per kernel class, in profile order.
    pub per_kernel: Vec<(String, u32)>,
    /// `C_out = Σ #K_i` — concurrent streams to allocate (Eq. 9).
    pub streams: u32,
    /// Objective value (active threads per SM) at the optimum.
    pub objective_threads_per_sm: f64,
    /// Real wall time spent solving (`T_a` contribution).
    pub analysis_time: Duration,
    /// Mean profiled duration per kernel class (feeds the fusion /
    /// reordering passes of [`crate::optim`]).
    pub class_durations: HashMap<String, u64>,
}

/// The per-GPU kernel analyzer (concurrency analyzer + maintainer).
#[derive(Debug)]
pub struct KernelAnalyzer {
    props: DeviceProps,
    /// Concurrency maintainer: layer key → plan.
    plans: HashMap<String, ConcurrencyPlan>,
    /// Frozen execution plans: (layer key + optimizer tag) → captured plan.
    /// The analyzer is per-GPU, so device identity is implicit in the key.
    exec_plans: HashMap<String, Arc<ExecPlan>>,
    /// Times a schedule was captured into an [`ExecPlan`] (probe for the
    /// cache-correctness tests).
    captures: u64,
    /// Times the MILP model was solved (probe for the steady-state tests).
    solves: u64,
    /// Accumulated analysis time on this GPU (`T_a`).
    total_analysis: Duration,
}

impl KernelAnalyzer {
    /// Analyzer for one device.
    pub fn new(props: DeviceProps) -> Self {
        KernelAnalyzer {
            props,
            plans: HashMap::new(),
            exec_plans: HashMap::new(),
            captures: 0,
            solves: 0,
            total_analysis: Duration::ZERO,
        }
    }

    /// Device this analyzer serves.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Look up a cached plan (concurrency maintainer).
    pub fn plan_for(&self, layer_key: &str) -> Option<&ConcurrencyPlan> {
        self.plans.get(layer_key)
    }

    /// Total analysis wall time accumulated (`T_a`).
    pub fn total_analysis_time(&self) -> Duration {
        self.total_analysis
    }

    /// Analyze a layer's kernel profiles, cache and return the plan.
    pub fn analyze(&mut self, layer_key: &str, profiles: &[KernelProfile]) -> &ConcurrencyPlan {
        let plan = analyze_profiles(&self.props, profiles);
        self.solves += 1;
        self.total_analysis += plan.analysis_time;
        self.plans.insert(layer_key.to_string(), plan);
        &self.plans[layer_key]
    }

    /// Number of cached plans.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Look up a frozen execution plan (capture-once / replay-many cache).
    pub fn exec_plan_for(&self, plan_key: &str) -> Option<&Arc<ExecPlan>> {
        self.exec_plans.get(plan_key)
    }

    /// Store a freshly captured execution plan under `plan_key` and count
    /// the capture.
    pub fn store_exec_plan(&mut self, plan_key: &str, plan: Arc<ExecPlan>) {
        self.captures += 1;
        self.exec_plans.insert(plan_key.to_string(), plan);
    }

    /// Number of cached execution plans.
    pub fn num_exec_plans(&self) -> usize {
        self.exec_plans.len()
    }

    /// Times a schedule was captured into an execution plan.
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Times the MILP model was solved.
    pub fn solves(&self) -> u64 {
        self.solves
    }
}

/// Eq. 8: blocks of one instance landing on a single SM under even spread,
/// floored at 1 (a kernel smaller than the SM count still occupies one
/// block-slot per instance) and capped at the configuration's occupancy
/// limit — a grid larger than the device executes in waves, so at most
/// the resident wave counts against the per-SM constraints.
fn beta_per_sm(props: &DeviceProps, p: &KernelProfile) -> u32 {
    let even = ((p.grid_blocks / props.num_sms as u64) as u32).max(1);
    let by_threads = (props.max_threads_per_sm / p.threads_per_block.max(1)).max(1);
    let by_smem = props
        .smem_per_sm
        .checked_div(p.smem_per_block)
        .map_or(u32::MAX, |v| v.max(1));
    even.min(by_threads)
        .min(by_smem)
        .min(props.max_blocks_per_sm)
}

/// Eq. 7: per-kernel cap on concurrent instances.
fn per_kernel_cap(props: &DeviceProps, p: &KernelProfile) -> u32 {
    let launch = props.launch_overhead_ns.max(1);
    let by_launch = (p.avg_duration_ns as f64 / launch as f64).ceil().max(1.0);
    let denom_thr = p.threads_per_block as u64 * p.grid_blocks;
    let by_threads = if denom_thr > 0 {
        (props.max_threads_per_sm as u64 * props.num_sms as u64) as f64 / denom_thr as f64
    } else {
        f64::INFINITY
    };
    let by_smem = if p.smem_per_block > 0 {
        (props.smem_per_sm as u64 * props.num_sms as u64) as f64
            / (p.smem_per_block as u64 * p.grid_blocks) as f64
    } else {
        f64::INFINITY
    };
    let cap = by_launch.min(by_threads.max(1.0)).min(by_smem.max(1.0));
    (cap.floor() as u32).clamp(1, props.concurrency_degree())
}

/// Run the analytical model on a set of kernel-class profiles.
pub fn analyze_profiles(props: &DeviceProps, profiles: &[KernelProfile]) -> ConcurrencyPlan {
    let t0 = Instant::now();
    if profiles.is_empty() {
        return ConcurrencyPlan {
            per_kernel: vec![],
            streams: 1,
            objective_threads_per_sm: 0.0,
            analysis_time: t0.elapsed(),
            class_durations: HashMap::new(),
        };
    }

    let mut m = Model::new(Sense::Maximize);
    let mut vars = Vec::with_capacity(profiles.len());
    let mut smem_terms = Vec::new();
    let mut thread_terms = Vec::new();
    let mut block_terms = Vec::new();
    let mut conc_terms = Vec::new();

    // The kernels of one layer form a dependent chain (im2col → sgemm →
    // bias, Fig. 6), so over the layer's lifetime kernel `K_i` occupies
    // its SM footprint only for the fraction of time it executes. The
    // per-SM constraints therefore charge each instance its *duty-cycle
    // weighted* footprint — without this, a short im2col with a large grid
    // would appear to fill the device although it is resident only
    // briefly, and the model would degenerate to one stream.
    let total_time: f64 = profiles
        .iter()
        .map(|p| p.avg_duration_ns.max(1) as f64)
        .sum();

    for p in profiles {
        let duty = p.avg_duration_ns.max(1) as f64 / total_time;
        let beta = beta_per_sm(props, p) as f64 * duty;
        let tau = p.threads_per_block as f64;
        let cap = per_kernel_cap(props, p);
        // Objective (Eqs. 1-3): active threads per SM contributed by each
        // concurrent instance of this class.
        let v = m.add_var(&p.name, VarKind::Integer, 0.0, cap as f64, tau * beta);
        vars.push(v);
        smem_terms.push((v, p.smem_per_block as f64 * beta));
        thread_terms.push((v, tau * beta));
        block_terms.push((v, beta));
        conc_terms.push((v, 1.0));
    }

    // Eq. 4: shared memory per SM.
    m.add_le_constraint("smem", &smem_terms, props.smem_per_sm as f64);
    // Eq. 5: threads per SM.
    m.add_le_constraint("threads", &thread_terms, props.max_threads_per_sm as f64);
    // Hardware resident-block limit per SM.
    m.add_le_constraint("blocks", &block_terms, props.max_blocks_per_sm as f64);
    // Eq. 6: 1 ≤ Σ #K_i ≤ C.
    m.add_le_constraint("conc_hi", &conc_terms, props.concurrency_degree() as f64);
    m.add_ge_constraint("conc_lo", &conc_terms, 1.0);

    // The program is feasible by construction (Σ#K ≥ 1 always fits), but a
    // solver failure must not take the training loop down: fall back to
    // the serial plan (one stream) and let the next profiling window retry.
    let sol = match milp::solve(&m) {
        Ok(sol) => sol,
        Err(_) => {
            return ConcurrencyPlan {
                per_kernel: profiles.iter().map(|p| (p.name.clone(), 1)).collect(),
                streams: 1,
                objective_threads_per_sm: 0.0,
                analysis_time: t0.elapsed(),
                class_durations: profiles
                    .iter()
                    .map(|p| (p.name.clone(), p.avg_duration_ns))
                    .collect(),
            };
        }
    };

    let per_kernel: Vec<(String, u32)> = profiles
        .iter()
        .zip(&vars)
        .map(|(p, &v)| {
            (
                p.name.clone(),
                sol.try_int_value(v).unwrap_or(1).max(0) as u32,
            )
        })
        .collect();
    let streams: u32 = per_kernel.iter().map(|&(_, k)| k).sum::<u32>().max(1);
    let class_durations = profiles
        .iter()
        .map(|p| (p.name.clone(), p.avg_duration_ns))
        .collect();
    ConcurrencyPlan {
        per_kernel,
        streams: streams.min(props.concurrency_degree()),
        objective_threads_per_sm: sol.objective,
        analysis_time: t0.elapsed(),
        class_durations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, blocks: u64, threads: u32, smem: u32, dur_us: u64) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            grid_blocks: blocks,
            threads_per_block: threads,
            regs_per_thread: 32,
            smem_per_block: smem,
            avg_duration_ns: dur_us * 1000,
            instances: 4,
        }
    }

    #[test]
    fn small_kernels_get_multiple_streams() {
        // Per-sample kernels with small grids (18 blocks on a 15-SM K40C)
        // leave SMs idle; the model should pack several instances.
        let props = DeviceProps::k40c();
        let profiles = vec![
            profile("im2col", 18, 256, 0, 100),
            profile("sgemm", 24, 128, 8192, 400),
        ];
        let plan = analyze_profiles(&props, &profiles);
        assert!(plan.streams >= 2, "plan = {plan:?}");
        assert!(plan.streams <= props.concurrency_degree());
        assert_eq!(plan.per_kernel.len(), 2);
    }

    #[test]
    fn giant_kernel_gets_one_stream() {
        // A kernel that already saturates every SM's thread capacity
        // (β·τ = 2048 per SM) leaves no room: #K = 1.
        let props = DeviceProps::p100();
        let blocks = props.num_sms as u64 * 2; // β = 2 per SM
        let profiles = vec![profile("sgemm", blocks, 1024, 0, 2000)];
        let plan = analyze_profiles(&props, &profiles);
        assert_eq!(plan.streams, 1);
    }

    #[test]
    fn tiny_duration_capped_by_launch_overhead() {
        // T_K < T_launch -> ceil(T_K/T_launch) = 1 concurrent instance
        // (the paper's explanation for CIFAR10 conv1 slowdowns).
        let props = DeviceProps::p100(); // 5 µs launch overhead
        let profiles = vec![KernelProfile {
            avg_duration_ns: 2_000, // 2 µs
            ..profile("fast", 4, 64, 0, 0)
        }];
        let plan = analyze_profiles(&props, &profiles);
        assert_eq!(plan.per_kernel[0].1, 1);
    }

    #[test]
    fn long_kernels_allow_more_launch_headroom() {
        let props = DeviceProps::p100();
        let short = analyze_profiles(&props, &[profile("k", 28, 128, 0, 10)]);
        let long = analyze_profiles(&props, &[profile("k", 28, 128, 0, 10_000)]);
        assert!(
            long.per_kernel[0].1 >= short.per_kernel[0].1,
            "short {short:?} long {long:?}"
        );
    }

    #[test]
    fn smem_constrains_concurrency() {
        let props = DeviceProps::k40c(); // 48 KiB/SM
                                         // Each instance puts one 24-KiB block per SM -> at most 2 fit.
        let blocks = props.num_sms as u64;
        let plan = analyze_profiles(
            &props,
            &[profile("smem_heavy", blocks, 64, 24 * 1024, 5000)],
        );
        assert!(plan.per_kernel[0].1 <= 2, "plan = {plan:?}");
    }

    #[test]
    fn streams_never_exceed_concurrency_degree() {
        let props = DeviceProps::titan_xp();
        let profiles: Vec<_> = (0..6)
            .map(|i| profile(&format!("k{i}"), 2, 32, 0, 100_000))
            .collect();
        let plan = analyze_profiles(&props, &profiles);
        assert!(plan.streams <= props.concurrency_degree());
    }

    #[test]
    fn empty_profile_set_defaults_to_one_stream() {
        let plan = analyze_profiles(&DeviceProps::p100(), &[]);
        assert_eq!(plan.streams, 1);
        assert!(plan.per_kernel.is_empty());
    }

    #[test]
    fn maintainer_caches_plans() {
        let mut an = KernelAnalyzer::new(DeviceProps::k40c());
        assert!(an.plan_for("conv1").is_none());
        an.analyze("conv1", &[profile("im2col", 18, 256, 0, 100)]);
        assert!(an.plan_for("conv1").is_some());
        assert_eq!(an.num_plans(), 1);
        an.analyze("conv2", &[profile("im2col", 50, 256, 0, 100)]);
        assert_eq!(an.num_plans(), 2);
        assert!(an.total_analysis_time() > Duration::ZERO);
    }

    #[test]
    fn objective_is_threads_per_sm_and_bounded() {
        let props = DeviceProps::p100();
        let plan = analyze_profiles(&props, &[profile("k", 28, 256, 0, 5000)]);
        assert!(plan.objective_threads_per_sm > 0.0);
        assert!(plan.objective_threads_per_sm <= props.max_threads_per_sm as f64 + 1e-6);
    }

    #[test]
    fn device_dependence_of_stream_counts() {
        // The same kernel profile yields different plans on different GPUs
        // (paper Observation 2: optimal streams vary from GPU to GPU).
        let profiles = vec![profile("sgemm", 30, 256, 4096, 1500)];
        let k40 = analyze_profiles(&DeviceProps::k40c(), &profiles);
        let p100 = analyze_profiles(&DeviceProps::p100(), &profiles);
        // K40C: 15 SMs -> β=2/SM; P100: 56 SMs -> β=1/SM. Plans must differ
        // in objective or stream count.
        assert!(
            k40.streams != p100.streams
                || (k40.objective_threads_per_sm - p100.objective_threads_per_sm).abs() > 1.0,
            "k40 {k40:?} p100 {p100:?}"
        );
    }
}
