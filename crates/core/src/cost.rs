//! Framework overhead bookkeeping (paper §3.3.2, Eqs. 10-12).
//!
//! `T_total = T_p + T_a + T_s`: profiling time, analysis time and
//! scheduling time. With the static round-robin policy "T_s can be safely
//! ignored", so the report carries `T_p` and `T_a` (both *real* measured
//! wall times of our profiler and MILP solver) plus the three memory
//! terms, and [`CostBook`] relates them to total training time to verify
//! the paper's "< 0.1 %" claim (Table 6, last column).

use std::time::Duration;

/// One-time overhead of GLP4NN on one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Profiling time (`T_p`), real wall time of the resource tracker.
    pub t_p: Duration,
    /// Kernel-analysis time (`T_a`), real wall time of the MILP solves.
    pub t_a: Duration,
    /// Timestamp memory (`mem_tt`), bytes.
    pub mem_tt_bytes: usize,
    /// Kernel-configuration memory (`mem_K`), bytes.
    pub mem_k_bytes: usize,
    /// CUPTI runtime memory (`mem_cupti`), bytes.
    pub mem_cupti_bytes: usize,
    /// Kernels recorded during profiling.
    pub kernels_recorded: usize,
}

impl CostReport {
    /// `T_total = T_p + T_a (+ T_s = 0)` (Eq. 12).
    pub fn t_total(&self) -> Duration {
        self.t_p + self.t_a
    }

    /// `mem_total` (Eq. 10).
    pub fn mem_total_bytes(&self) -> usize {
        self.mem_tt_bytes + self.mem_k_bytes + self.mem_cupti_bytes
    }
}

/// Relates one-time overhead to accumulated training time (the "Ratio"
/// column of Table 6).
#[derive(Debug, Clone, Default)]
pub struct CostBook {
    /// Accumulated training time (simulated device ns mapped 1:1 to real
    /// ns for the ratio).
    pub training_ns: u128,
}

impl CostBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one training iteration's duration (ns).
    pub fn add_iteration(&mut self, elapsed_ns: u64) {
        self.training_ns += elapsed_ns as u128;
    }

    /// Overhead-to-training ratio for a report; `None` before any
    /// training time is recorded.
    pub fn overhead_ratio(&self, report: &CostReport) -> Option<f64> {
        if self.training_ns == 0 {
            return None;
        }
        Some(report.t_total().as_nanos() as f64 / self.training_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums() {
        let r = CostReport {
            t_p: Duration::from_micros(100),
            t_a: Duration::from_micros(400),
            mem_tt_bytes: 160,
            mem_k_bytes: 640,
            mem_cupti_bytes: 1 << 20,
            kernels_recorded: 10,
        };
        assert_eq!(r.t_total(), Duration::from_micros(500));
        assert_eq!(r.mem_total_bytes(), 160 + 640 + (1 << 20));
    }

    #[test]
    fn ratio_requires_training_time() {
        let r = CostReport {
            t_p: Duration::from_millis(1),
            ..Default::default()
        };
        let mut book = CostBook::new();
        assert_eq!(book.overhead_ratio(&r), None);
        book.add_iteration(10_000_000_000); // 10 s of training
        let ratio = book.overhead_ratio(&r).unwrap();
        assert!((ratio - 1e-4).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn paper_claim_shape_ratio_below_point1_percent() {
        // A realistic profile: T_total ~ 25 ms, training ~ 100 s.
        let r = CostReport {
            t_p: Duration::from_millis(12),
            t_a: Duration::from_millis(13),
            ..Default::default()
        };
        let mut book = CostBook::new();
        book.add_iteration(100_000_000_000);
        assert!(book.overhead_ratio(&r).unwrap() < 0.001);
    }
}
