#![warn(missing_docs)]

//! # GLP4NN — the paper's core framework
//!
//! A *convergence-invariant* and *network-agnostic* light-weight
//! parallelization framework for deep neural networks on (simulated) GPUs,
//! reproducing Fu, Tang, He, Yu & Sun, ICPP 2018.
//!
//! The framework accelerates DNN training by launching the **independent
//! per-sample kernels of a layer concurrently** on multiple CUDA streams,
//! instead of Caffe's serial launches on the default stream. Its four
//! modules map one-to-one onto the paper's Fig. 5:
//!
//! - [`tracker::ResourceTracker`] — *resource tracker*: a compact
//!   asynchronous kernel profiler ([`cupti_sim`]) plus a *kernel parser*
//!   that aggregates raw activity records into per-kernel-class profiles.
//!   Shared by all GPUs on the machine.
//! - [`analyzer::KernelAnalyzer`] — *kernel analyzer*: the *concurrency
//!   analyzer* builds the paper's analytical model (Eqs. 1-9) as a small
//!   integer program solved with [`milp`] (the GLPK substitute), and the
//!   *concurrency maintainer* caches one [`analyzer::ConcurrencyPlan`] per
//!   layer per GPU. Private to each GPU.
//! - [`streams::StreamManager`] — *stream manager*: a pool of pre-created
//!   concurrent streams per device plus the default stream used for
//!   synchronization; no extra host threads or processes are spawned.
//!   Shared by all GPUs.
//! - [`scheduler::RuntimeScheduler`] (driven through [`Glp4nn`]) — *runtime
//!   scheduler*: implements the Fig. 6 workflow — on first sight of a layer
//!   it profiles the kernels on the default stream, feeds the tracker's
//!   output to the analyzer, sizes the stream pool with the model's
//!   `C_out`, and on every later iteration dispatches kernel groups
//!   round-robin over the pool.
//!
//! ## Why this is convergence-invariant
//!
//! The framework only re-schedules kernel *launches*. Kernels within one
//! dependence group (e.g. one sample's `im2col → sgemm → bias`) stay on a
//! single stream, so their ordering is preserved; groups are mutually
//! independent by construction (they process different samples of a batch,
//! the loop at line 2 of the paper's Algorithms 1-2). No parameter, no
//! arithmetic, and no dependence is altered — see §3.3.1 of the paper, and
//! the end-to-end bitwise-identity tests in this repository.
//!
//! ## Example
//!
//! ```
//! use glp4nn::{Glp4nn, LayerKey, ExecMode};
//! use gpu_sim::{Device, DeviceProps, KernelDesc, LaunchConfig, KernelCost, Dim3};
//!
//! let mut dev = Device::new(DeviceProps::p100());
//! let mut glp = Glp4nn::new(1);
//! glp.register_device(0, dev.props());
//!
//! let key = LayerKey::forward("demo-net", "conv1");
//! let group = |i: u64| vec![
//!     KernelDesc::new("im2col",
//!         LaunchConfig::new(Dim3::linear(18), Dim3::linear(256), 33, 0),
//!         KernelCost::new(2.0e5, 1.0e5)).with_tag(i),
//!     KernelDesc::new("sgemm",
//!         LaunchConfig::new(Dim3::linear(24), Dim3::linear(128), 60, 8192),
//!         KernelCost::new(4.0e6, 2.0e5)).with_tag(i),
//! ];
//! let groups: Vec<_> = (0..16).map(group).collect();
//!
//! // Iteration 1: profiling run on the default stream.
//! let r1 = glp.execute(&mut dev, 0, &key, groups.clone());
//! assert_eq!(r1.mode, ExecMode::Profiling);
//!
//! // Iteration 2+: concurrent dispatch over the model-sized stream pool.
//! let r2 = glp.execute(&mut dev, 0, &key, groups);
//! match r2.mode {
//!     ExecMode::Concurrent { streams } => assert!(streams >= 2),
//!     m => panic!("expected concurrent, got {m:?}"),
//! }
//! assert!(r2.elapsed_ns < r1.elapsed_ns);
//! ```

pub mod analyzer;
pub mod cost;
pub mod framework;
pub mod graph;
pub mod optim;
pub mod plan;
pub mod scheduler;
pub mod streams;
pub mod tracker;

pub use analyzer::{ConcurrencyPlan, KernelAnalyzer, KernelProfile};
pub use cost::CostBook;
pub use framework::{ExecMode, ExecReport, Glp4nn, Glp4nnError, LayerKey, Phase};
pub use graph::{GraphError, KernelGraph};
pub use optim::OptimConfig;
pub use plan::{ExecPlan, PlanStep};
pub use streams::{StreamError, StreamManager};
pub use tracker::ResourceTracker;
