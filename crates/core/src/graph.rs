//! Dataflow-style kernel dependency graphs (the paper's §6 future work:
//! "considering and supporting complex kernel dependencies, such as the
//! dataflow-like dependency model in Tensorflow").
//!
//! [`KernelGraph`] generalizes the chain-per-sample *group* model to an
//! arbitrary DAG. Scheduling maps nodes to the concurrent stream pool in
//! topological order; dependencies that cross streams are enforced with
//! CUDA events (`record` after the producer, `wait` before the consumer),
//! so — like the group scheduler — no dependence is ever broken and the
//! execution stays convergence-invariant.

use crate::framework::ExecMode;
use crate::plan::ExecPlan;
use gpu_sim::{Device, KernelDesc, StreamId};
use std::collections::VecDeque;

/// Error from building a [`KernelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// A dependency referred to a node not yet added (insertion order is
    /// the graph's topological order, so forward references are invalid).
    InvalidDependency {
        /// Index the new node would have received.
        node: usize,
        /// The offending dependency index.
        dep: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidDependency { node, dep } => write!(
                f,
                "dependency {dep} must be added before node {node} \
                 (graph has {node} node(s) so far)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DAG of kernels. Node indices are positions in `nodes`.
#[derive(Debug, Clone, Default)]
pub struct KernelGraph {
    nodes: Vec<KernelDesc>,
    /// `edges[i]` = indices that must complete before node `i` starts.
    deps: Vec<Vec<usize>>,
}

impl KernelGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel with explicit dependencies; returns the node index.
    ///
    /// # Errors
    /// Rejects any dependency index referring to a node not yet added
    /// (insertion order is thus always a valid topological order).
    pub fn add(&mut self, kernel: KernelDesc, deps: &[usize]) -> Result<usize, GraphError> {
        let idx = self.nodes.len();
        for &d in deps {
            if d >= idx {
                return Err(GraphError::InvalidDependency { node: idx, dep: d });
            }
        }
        self.nodes.push(kernel);
        self.deps.push(deps.to_vec());
        Ok(idx)
    }

    /// Convenience: add a dependent chain, returning the node indices.
    ///
    /// # Errors
    /// Rejects forward references in `deps_of_first`, like [`add`](Self::add).
    pub fn add_chain(
        &mut self,
        kernels: Vec<KernelDesc>,
        deps_of_first: &[usize],
    ) -> Result<Vec<usize>, GraphError> {
        let mut ids = Vec::with_capacity(kernels.len());
        for (i, k) in kernels.into_iter().enumerate() {
            let deps: Vec<usize> = if i == 0 {
                deps_of_first.to_vec()
            } else {
                vec![*ids.last().unwrap()]
            };
            let id = self.add(k, &deps)?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kernel descriptors in insertion (topological) order.
    pub fn nodes(&self) -> &[KernelDesc] {
        &self.nodes
    }

    /// Dependencies of node `i`.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Dependency lists of all nodes, indexed like [`nodes`](Self::nodes)
    /// (the shape the schedule sanitizer consumes).
    pub fn all_deps(&self) -> &[Vec<usize>] {
        &self.deps
    }

    /// Weakly-connected components; each component is independent of the
    /// others, so components can be dispatched like the group scheduler's
    /// groups (round-robin over the pool).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                adj[i].push(d);
                adj[d].push(i);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = out.len();
            let mut q = VecDeque::from([start]);
            comp[start] = c;
            let mut members = vec![start];
            while let Some(v) = q.pop_front() {
                for &w in &adj[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        members.push(w);
                        q.push_back(w);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Launch the whole graph onto `pool` (falling back to serial order on
    /// one stream when `pool.len() == 1`). Nodes are assigned the stream
    /// of their first dependency when possible (chains stay on one stream,
    /// no event needed); otherwise a stream is taken round-robin and
    /// cross-stream edges get CUDA events. Returns per-node kernel ids.
    ///
    /// Internally this captures the schedule into an [`ExecPlan`] and
    /// issues it — callers that execute the same graph repeatedly should
    /// hold on to [`capture`](KernelGraph::capture) instead and replay it.
    pub fn launch(&self, dev: &mut Device, pool: &[StreamId]) -> Vec<gpu_sim::KernelId> {
        self.capture("graph", pool).issue_with_ids(dev)
    }

    /// Freeze this graph's schedule on `pool` into a replayable
    /// [`ExecPlan`]: stream inheritance, round-robin fallback, and event
    /// edges are decided once, here, not per launch.
    pub fn capture(&self, label: &str, pool: &[StreamId]) -> ExecPlan {
        let mode = if pool.len() <= 1 {
            ExecMode::Profiling
        } else {
            ExecMode::Concurrent {
                streams: pool.len() as u32,
            }
        };
        ExecPlan::capture_graph(label, &self.nodes, &self.deps, pool, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(14), Dim3::linear(256), 32, 4096),
            KernelCost::new(flops, flops / 4.0),
        )
    }

    fn pool(dev: &mut Device, n: usize) -> Vec<StreamId> {
        (0..n).map(|_| dev.create_stream()).collect()
    }

    use gpu_sim::Device;

    #[test]
    fn insertion_order_is_topological() {
        let mut g = KernelGraph::new();
        let a = g.add(kernel("a", 1e6), &[]).unwrap();
        let b = g.add(kernel("b", 1e6), &[a]).unwrap();
        let c = g.add(kernel("c", 1e6), &[a]).unwrap();
        let d = g.add(kernel("d", 1e6), &[b, c]).unwrap();
        assert_eq!((a, b, c, d), (0, 1, 2, 3));
        assert_eq!(g.len(), 4);
        assert_eq!(g.deps(3), &[1, 2]);
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut g = KernelGraph::new();
        let err = g.add(kernel("a", 1e6), &[3]).unwrap_err();
        assert_eq!(err, GraphError::InvalidDependency { node: 0, dep: 3 });
        assert!(err.to_string().contains("must be added before"), "{err}");
        assert!(g.is_empty(), "failed add leaves the graph unchanged");
        // Self-reference is a forward reference too.
        let a = g.add(kernel("a", 1e6), &[]).unwrap();
        assert_eq!(
            g.add(kernel("b", 1e6), &[a, 1]),
            Err(GraphError::InvalidDependency { node: 1, dep: 1 })
        );
        assert_eq!(g.len(), 1);
        // add_chain propagates the same error.
        assert_eq!(
            g.add_chain(vec![kernel("c", 1e6)], &[9]),
            Err(GraphError::InvalidDependency { node: 1, dep: 9 })
        );
    }

    #[test]
    fn diamond_dependencies_are_enforced() {
        let mut dev = Device::new(DeviceProps::p100());
        let p = pool(&mut dev, 4);
        let mut g = KernelGraph::new();
        let a = g.add(kernel("a", 5e6), &[]).unwrap();
        let b = g.add(kernel("b", 5e6), &[a]).unwrap();
        let c = g.add(kernel("c", 5e6), &[a]).unwrap();
        let d = g.add(kernel("d", 5e6), &[b, c]).unwrap();
        let ids = g.launch(&mut dev, &p);
        dev.run();
        let span = |i: usize| dev.kernel_span(ids[i]).unwrap();
        assert!(span(b).0 >= span(a).1, "b after a");
        assert!(span(c).0 >= span(a).1, "c after a");
        assert!(span(d).0 >= span(b).1, "d after b");
        assert!(span(d).0 >= span(c).1, "d after c");
    }

    #[test]
    fn independent_branches_overlap() {
        let mut dev = Device::new(DeviceProps::p100());
        let p = pool(&mut dev, 4);
        let mut g = KernelGraph::new();
        let a = g.add(kernel("a", 2e6), &[]).unwrap();
        let b = g.add(kernel("b", 5e7), &[a]).unwrap();
        let c = g.add(kernel("c", 5e7), &[a]).unwrap();
        let ids = g.launch(&mut dev, &p);
        dev.run();
        let (bs, be) = dev.kernel_span(ids[b]).unwrap();
        let (cs, ce) = dev.kernel_span(ids[c]).unwrap();
        let overlap = be.min(ce).saturating_sub(bs.max(cs));
        assert!(
            overlap > 0,
            "siblings must overlap: b {bs}-{be}, c {cs}-{ce}"
        );
    }

    #[test]
    fn chains_stay_on_one_stream() {
        let mut dev = Device::new(DeviceProps::p100());
        let p = pool(&mut dev, 4);
        let mut g = KernelGraph::new();
        let ids = g
            .add_chain(
                vec![kernel("x", 1e6), kernel("y", 1e6), kernel("z", 1e6)],
                &[],
            )
            .unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
        let kids = g.launch(&mut dev, &p);
        dev.run();
        let streams: Vec<u32> = kids
            .iter()
            .map(|&id| {
                dev.trace()
                    .iter()
                    .find(|t| t.id == id)
                    .map(|t| t.stream.raw())
                    .unwrap()
            })
            .collect();
        assert_eq!(streams[0], streams[1]);
        assert_eq!(streams[1], streams[2]);
    }

    #[test]
    fn components_found() {
        let mut g = KernelGraph::new();
        let a = g.add(kernel("a", 1e6), &[]).unwrap();
        let _b = g.add(kernel("b", 1e6), &[a]).unwrap();
        let c = g.add(kernel("c", 1e6), &[]).unwrap();
        let _d = g.add(kernel("d", 1e6), &[c]).unwrap();
        let e = g.add(kernel("e", 1e6), &[]).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![e]);
    }

    #[test]
    fn graph_on_single_stream_serializes() {
        let mut dev = Device::new(DeviceProps::p100());
        let p = pool(&mut dev, 1);
        let mut g = KernelGraph::new();
        g.add(kernel("a", 1e6), &[]).unwrap();
        g.add(kernel("b", 1e6), &[]).unwrap();
        let ids = g.launch(&mut dev, &p);
        dev.run();
        let (_, ae) = dev.kernel_span(ids[0]).unwrap();
        let (bs, _) = dev.kernel_span(ids[1]).unwrap();
        assert!(bs >= ae);
    }

    #[test]
    fn deterministic_graph_execution() {
        let run = || {
            let mut dev = Device::new(DeviceProps::titan_xp());
            let p = pool(&mut dev, 3);
            let mut g = KernelGraph::new();
            let a = g.add(kernel("a", 3e6), &[]).unwrap();
            let b = g.add(kernel("b", 7e6), &[a]).unwrap();
            let c = g.add(kernel("c", 2e6), &[a]).unwrap();
            let _d = g.add(kernel("d", 4e6), &[b, c]).unwrap();
            g.launch(&mut dev, &p);
            dev.run();
            dev.trace()
                .iter()
                .map(|t| (t.start_ns, t.end_ns))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
