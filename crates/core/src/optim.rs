//! Kernel reordering and kernel fusion (the paper's §6 future work).
//!
//! "Since there are always many kernels needed to be launched
//! concurrently, kernel reordering and kernel fusion technologies may be
//! helpful to gain better training performance of neural network models,
//! especially for small kernels."
//!
//! - **Fusion** ([`fuse_group`]): adjacent kernels of one dependent chain
//!   whose profiled durations are below a threshold (relative to the
//!   launch overhead `T_launch`) are merged into a single launch. The
//!   fused kernel sums the work and takes the maximum footprint of its
//!   parts, so SM constraints stay safe; every fusion saves one host
//!   launch slot — exactly the resource small kernels are bottlenecked on
//!   (Eq. 7's `⌈T_K/T_launch⌉` cap).
//! - **Reordering** ([`reorder_groups`]): independent groups are sorted
//!   longest-estimated-first before round-robin dispatch, so long chains
//!   start early and short chains pack into their tail (LPT scheduling).
//!   With homogeneous per-sample groups this is an identity — it matters
//!   when chains are heterogeneous (e.g. mixed layers of an inception
//!   module dispatched together).

use gpu_sim::{Dim3, KernelCost, KernelDesc, LaunchConfig};
use std::collections::HashMap;

/// Per-kernel-class durations from the resource tracker, used to decide
/// what is "small".
pub type DurationsByName = HashMap<String, u64>;

/// Tuning knobs for the optimizer passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimConfig {
    /// Enable kernel fusion.
    pub fusion: bool,
    /// Fuse while the *combined* estimated duration stays below
    /// `fusion_threshold_x` × `T_launch`.
    pub fusion_threshold_x: f64,
    /// Enable longest-first group reordering.
    pub reordering: bool,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig {
            fusion: false,
            fusion_threshold_x: 2.0,
            reordering: false,
        }
    }
}

impl OptimConfig {
    /// Everything enabled with default thresholds.
    pub fn all() -> Self {
        OptimConfig {
            fusion: true,
            fusion_threshold_x: 2.0,
            reordering: true,
        }
    }

    /// Short tag identifying this configuration in execution-plan cache
    /// keys: fusion and reordering change the captured schedule, so a
    /// different config must miss the cache and re-capture.
    pub fn cache_tag(&self) -> String {
        format!(
            "f{}x{}r{}",
            self.fusion as u8, self.fusion_threshold_x, self.reordering as u8
        )
    }
}

/// Merge two adjacent chain kernels into one launch.
///
/// Work adds; the footprint takes the maximum of each resource so the
/// fused kernel is schedulable wherever the bigger part was; the grid
/// keeps the larger block count. The name records the lineage
/// (`a+b`) so profiles of fused classes stay distinguishable.
pub fn fuse_pair(a: &KernelDesc, b: &KernelDesc) -> KernelDesc {
    let blocks = a.launch.num_blocks().max(b.launch.num_blocks()) as u32;
    let threads = a
        .launch
        .threads_per_block()
        .max(b.launch.threads_per_block());
    let launch = LaunchConfig {
        grid: Dim3::linear(blocks),
        block: Dim3::linear(threads),
        regs_per_thread: a.launch.regs_per_thread.max(b.launch.regs_per_thread),
        smem_static: a.launch.smem_static.max(b.launch.smem_static),
        smem_dynamic: a.launch.smem_dynamic.max(b.launch.smem_dynamic),
    };
    // Per-block work scales down by the larger grid: total work is the sum
    // of both kernels' totals.
    let total_flops = a.cost.flops_per_block * a.launch.num_blocks() as f64
        + b.cost.flops_per_block * b.launch.num_blocks() as f64;
    let total_bytes = a.cost.dram_bytes_per_block * a.launch.num_blocks() as f64
        + b.cost.dram_bytes_per_block * b.launch.num_blocks() as f64;
    KernelDesc {
        name: format!("{}+{}", a.name, b.name),
        launch,
        cost: KernelCost::new(total_flops / blocks as f64, total_bytes / blocks as f64),
        tag: a.tag,
        // The fused launch performs both kernels' accesses.
        accesses: gpu_sim::AccessSet::union(&a.accesses, &b.accesses),
    }
}

/// Fuse a dependent chain: greedily merge adjacent kernels while the
/// merged estimated duration stays under `threshold_x × launch_overhead`.
/// Unknown classes (no profile entry) are treated as large (never fused).
pub fn fuse_group(
    group: Vec<KernelDesc>,
    durations: &DurationsByName,
    launch_overhead_ns: u64,
    threshold_x: f64,
) -> Vec<KernelDesc> {
    let limit = (launch_overhead_ns as f64 * threshold_x) as u64;
    let est = |k: &KernelDesc| -> Option<u64> { durations.get(&k.name).copied() };
    let mut out: Vec<(KernelDesc, Option<u64>)> = Vec::with_capacity(group.len());
    for k in group {
        let d = est(&k);
        match out.last_mut() {
            Some((prev, Some(pd))) if d.is_some() && *pd + d.unwrap() <= limit => {
                let merged = fuse_pair(prev, &k);
                let nd = *pd + d.unwrap();
                *prev = merged;
                *pd = nd;
            }
            _ => out.push((k, d)),
        }
    }
    out.into_iter().map(|(k, _)| k).collect()
}

/// Estimated duration of a group (sum of known class durations; unknown
/// classes count as one launch overhead).
pub fn estimate_group_ns(
    group: &[KernelDesc],
    durations: &DurationsByName,
    launch_overhead_ns: u64,
) -> u64 {
    group
        .iter()
        .map(|k| {
            durations
                .get(&k.name)
                .copied()
                .unwrap_or(launch_overhead_ns)
        })
        .sum()
}

/// Longest-processing-time-first ordering of independent groups.
pub fn reorder_groups(
    mut groups: Vec<Vec<KernelDesc>>,
    durations: &DurationsByName,
    launch_overhead_ns: u64,
) -> Vec<Vec<KernelDesc>> {
    // Stable sort keeps equal-length groups in submission order, so
    // homogeneous batches are untouched (determinism).
    groups.sort_by_key(|g| std::cmp::Reverse(estimate_group_ns(g, durations, launch_overhead_ns)));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str, blocks: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(128), 32, 1024),
            KernelCost::new(flops, flops / 4.0),
        )
        .with_tag(7)
    }

    fn durations(pairs: &[(&str, u64)]) -> DurationsByName {
        pairs.iter().map(|&(n, d)| (n.to_string(), d)).collect()
    }

    #[test]
    fn fuse_pair_conserves_total_work() {
        let a = kernel("a", 4, 1000.0);
        let b = kernel("b", 8, 500.0);
        let f = fuse_pair(&a, &b);
        assert_eq!(f.name, "a+b");
        assert_eq!(f.launch.num_blocks(), 8);
        let total = f.cost.flops_per_block * f.launch.num_blocks() as f64;
        assert!((total - (4.0 * 1000.0 + 8.0 * 500.0)).abs() < 1e-6);
        assert_eq!(f.tag, 7);
    }

    #[test]
    fn fuse_pair_takes_max_footprint() {
        let mut a = kernel("a", 4, 1.0);
        a.launch.smem_static = 4096;
        a.launch.regs_per_thread = 64;
        let b = kernel("b", 2, 1.0);
        let f = fuse_pair(&a, &b);
        assert_eq!(f.launch.smem_static, 4096);
        assert_eq!(f.launch.regs_per_thread, 64);
        assert_eq!(f.launch.threads_per_block(), 128);
    }

    #[test]
    fn small_chain_collapses_to_one_launch() {
        let d = durations(&[("im2col", 1_000), ("sgemm", 1_500), ("gemmk", 800)]);
        let group = vec![
            kernel("im2col", 4, 1.0),
            kernel("sgemm", 4, 1.0),
            kernel("gemmk", 4, 1.0),
        ];
        let fused = fuse_group(group, &d, 4_000, 2.0); // limit 8 µs
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].name, "im2col+sgemm+gemmk");
    }

    #[test]
    fn large_kernels_are_not_fused() {
        let d = durations(&[("im2col", 1_000), ("sgemm", 500_000), ("gemmk", 800)]);
        let group = vec![
            kernel("im2col", 4, 1.0),
            kernel("sgemm", 4, 1.0),
            kernel("gemmk", 4, 1.0),
        ];
        let fused = fuse_group(group, &d, 4_000, 2.0);
        // im2col cannot merge into the huge sgemm; gemmk cannot merge into
        // it either.
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn threshold_controls_fusion() {
        let d = durations(&[("a", 3_000), ("b", 3_000)]);
        let group = vec![kernel("a", 2, 1.0), kernel("b", 2, 1.0)];
        // Limit 4 µs: combined 6 µs exceeds it.
        assert_eq!(fuse_group(group.clone(), &d, 4_000, 1.0).len(), 2);
        // Limit 8 µs: fuses.
        assert_eq!(fuse_group(group, &d, 4_000, 2.0).len(), 1);
    }

    #[test]
    fn unknown_classes_never_fuse() {
        let d = durations(&[("a", 100)]);
        let group = vec![kernel("a", 2, 1.0), kernel("mystery", 2, 1.0)];
        assert_eq!(fuse_group(group, &d, 4_000, 10.0).len(), 2);
    }

    #[test]
    fn reorder_puts_long_chains_first() {
        let d = durations(&[("short", 1_000), ("long", 50_000)]);
        let groups = vec![
            vec![kernel("short", 1, 1.0)],
            vec![kernel("long", 1, 1.0)],
            vec![kernel("short", 1, 1.0), kernel("short", 1, 1.0)],
        ];
        let ordered = reorder_groups(groups, &d, 4_000);
        assert_eq!(ordered[0][0].name, "long");
        assert_eq!(ordered[1].len(), 2); // 2 shorts (2 µs) before 1 short
        assert_eq!(ordered[2].len(), 1);
    }

    #[test]
    fn reorder_is_stable_for_homogeneous_groups() {
        let d = durations(&[("k", 1_000)]);
        let groups: Vec<Vec<KernelDesc>> = (0..5)
            .map(|i| vec![kernel("k", 1, 1.0).with_tag(i)])
            .collect();
        let ordered = reorder_groups(groups, &d, 4_000);
        let tags: Vec<u64> = ordered.iter().map(|g| g[0].tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn estimate_uses_launch_overhead_for_unknowns() {
        let d = durations(&[("a", 10_000)]);
        let group = vec![kernel("a", 1, 1.0), kernel("b", 1, 1.0)];
        assert_eq!(estimate_group_ns(&group, &d, 4_000), 14_000);
    }
}
