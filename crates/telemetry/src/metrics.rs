//! Typed metrics: monotonic counters, last-write gauges, and raw-value
//! histograms with nearest-rank percentiles.
//!
//! Everything is `BTreeMap`-backed so snapshots iterate in sorted name
//! order and the plain-text export is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// `p` is in `(0, 100]`; with `n` samples the nearest-rank index is
/// `ceil(p/100 · n) - 1` — the convention the paper-style latency tables
/// (p50/p95/p99) use, and the one `serve::metrics` has always used.
///
/// # Panics
/// Panics on an empty slice or `p` outside `(0, 100]`.
pub fn percentile_of_sorted(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// A histogram of raw `u64` observations (latencies in ns, batch sizes,
/// byte counts). Observations are kept verbatim — at simulation scale the
/// exactness is worth more than a sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    values: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        self.values.iter().copied().min()
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.values.len() as f64
        }
    }

    /// Nearest-rank percentile (`p` in `(0, 100]`) of the observations.
    ///
    /// # Panics
    /// Panics when empty or `p` is out of range, like
    /// [`percentile_of_sorted`].
    pub fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        percentile_of_sorted(&sorted, p)
    }

    /// The raw observations, in recording order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Histogram `name`, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the other's value (last write wins, matching
    /// [`gauge_set`](MetricsRegistry::gauge_set)), histograms append
    /// observations. Used to fold a subsystem's private registry (e.g.
    /// the fleet's router gauges) into a run's exported telemetry.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.counter_add(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauge_set(name, *v);
        }
        for (name, h) in &other.histograms {
            let dst = self.histograms.entry(name.clone()).or_default();
            for v in h.values() {
                dst.record(*v);
            }
        }
    }

    /// Plain-text snapshot: one line per metric, sorted within sorted
    /// sections, deterministic.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "# counters");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "# gauges");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name} = {v:.3}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "# histograms");
            for (name, h) in &self.histograms {
                if h.is_empty() {
                    let _ = writeln!(out, "{name}: count=0");
                } else {
                    let _ = writeln!(
                        out,
                        "{name}: count={} min={} max={} mean={:.1} p50={} p95={} p99={}",
                        h.count(),
                        h.min().unwrap(),
                        h.max().unwrap(),
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_known_quantiles() {
        // 1..=100: pXX is exactly XX under nearest-rank.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of_sorted(&v, 50.0), 50);
        assert_eq!(percentile_of_sorted(&v, 95.0), 95);
        assert_eq!(percentile_of_sorted(&v, 99.0), 99);
        assert_eq!(percentile_of_sorted(&v, 100.0), 100);
        assert_eq!(percentile_of_sorted(&v, 1.0), 1);
        // Small-sample convention: ceil(0.5 * 3) - 1 = index 1.
        assert_eq!(percentile_of_sorted(&[10, 20, 30], 50.0), 20);
        // p just above a rank boundary rounds up.
        assert_eq!(percentile_of_sorted(&[10, 20, 30], 34.0), 20);
        assert_eq!(percentile_of_sorted(&[7], 99.0), 7);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_of_sorted(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn percentile_zero_panics() {
        percentile_of_sorted(&[1], 0.0);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let mut h = Histogram::new();
        // Unsorted insert order must not matter.
        for v in [30u64, 10, 50, 20, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(50));
        assert_eq!(h.sum(), 150);
        assert!((h.mean() - 30.0).abs() < 1e-12);
        assert_eq!(h.percentile(50.0), 30);
        assert_eq!(h.percentile(95.0), 50);
        assert_eq!(h.percentile(99.0), 50);
    }

    #[test]
    fn registry_counter_gauge_histogram_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.hits", 3);
        m.counter_add("a.hits", 2);
        m.gauge_set("q.depth", 4.0);
        m.gauge_set("q.depth", 7.0);
        m.observe("lat", 100);
        m.observe("lat", 200);
        assert_eq!(m.counter("a.hits"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("q.depth"), Some(7.0));
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_appends_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("hits", 3);
        a.gauge_set("depth", 1.0);
        a.observe("lat", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("hits", 2);
        b.counter_add("misses", 1);
        b.gauge_set("depth", 9.0);
        b.observe("lat", 20);
        b.observe("other", 5);
        a.merge_from(&b);
        assert_eq!(a.counter("hits"), 5);
        assert_eq!(a.counter("misses"), 1);
        assert_eq!(a.gauge("depth"), Some(9.0));
        assert_eq!(a.histogram("lat").unwrap().values(), [10, 20]);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 1);
        m.gauge_set("mid", 1.5);
        m.observe("h", 10);
        let s = m.snapshot();
        let a = s.find("a.first").unwrap();
        let z = s.find("z.last").unwrap();
        assert!(a < z, "counters must be name-sorted:\n{s}");
        assert!(s.contains("mid = 1.500"));
        assert!(s.contains("h: count=1 min=10 max=10"));
        assert_eq!(s, m.snapshot(), "snapshot must be deterministic");
    }
}
