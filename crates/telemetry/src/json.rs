//! Minimal JSON support: string escaping for the Chrome-trace writer and
//! a small recursive-descent parser for the trace validator.
//!
//! The build environment has no `serde_json`, and the subset of JSON a
//! Chrome trace uses (objects, arrays, strings, numbers, the literals) is
//! small enough that hand-rolling it is cheaper than a vendored shim.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal (no surrounding
/// quotes). Control characters use `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` — key order is not preserved, which is fine
    /// for validation.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member `key` of this object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map them to U+FFFD on read.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_chrome_style_document() {
        let doc = r#"{"traceEvents":[{"name":"k","ph":"B","pid":0,"tid":1,"ts":1.500},
            {"name":"k","ph":"E","pid":0,"tid":1,"ts":2.000}],"displayTimeUnit":"ns"}"#;
        let v = parse(doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("k"));
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let original = "p2p:0->1 \"grad\"\tstep\n";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_numbers_and_literals() {
        let v = parse("[-1.5e3, 0, true, false, null]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1500.0));
        assert_eq!(a[1].as_f64(), Some(0.0));
        assert_eq!(a[2], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
    }
}
