//! Structural validation of Chrome-trace JSON documents.
//!
//! Used by the golden-file test and by the `validate-trace` binary that
//! CI round-trips emitted traces through. Checks, per document:
//!
//! - well-formed JSON with a `traceEvents` array (or a bare array);
//! - every event has a `ph`, and duration/instant/flow events carry
//!   `pid`/`tid`/`ts`;
//! - `B`/`E` pairs balance and nest strictly per `(pid, tid)` track, with
//!   matching names and non-decreasing timestamps;
//! - flow `s`/`f` halves pair up one-to-one by id.

use crate::json::{parse, Value};

/// Summary of a successfully validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Paired flow arrows.
    pub flows: usize,
    /// Distinct `(pid, tid)` tracks carrying spans or instants.
    pub tracks: usize,
}

/// Validate a Chrome-trace JSON document; returns a summary or the first
/// structural error found.
pub fn validate_chrome_trace(input: &str) -> Result<TraceSummary, String> {
    let doc = parse(input).map_err(|e| e.to_string())?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(Value::Array(evs))) => evs.as_slice(),
        (Value::Array(evs), _) => evs.as_slice(),
        _ => return Err("no traceEvents array".to_string()),
    };

    // Per-track open-span stack: (name, ts).
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<(String, f64)>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();
    let mut flow_starts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut flow_ends: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut tracks: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();

    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {idx}: missing ph"))?;
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue; // metadata: no pid/tid/ts requirements beyond pid
        }
        let pid = ev
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {idx} ({name}): missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {idx} ({name}): missing tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {idx} ({name}): missing ts"))?;
        let track = (pid, tid);
        if matches!(ph, "B" | "E" | "i") {
            tracks.insert(track);
        }
        match ph {
            // B/E must advance monotonically per track (the writer emits
            // them in stack order); instants live in a separate pass per
            // track and only need to be well-formed.
            "B" | "E" => {
                let prev = last_ts.get(&track).copied().unwrap_or(f64::MIN);
                if ts < prev {
                    return Err(format!(
                        "event {idx} ({name}): ts {ts} goes backwards on track pid={pid} tid={tid}"
                    ));
                }
                last_ts.insert(track, ts);
            }
            _ => {}
        }
        match ph {
            "B" => stacks
                .entry(track)
                .or_default()
                .push((name.to_string(), ts)),
            "E" => {
                let (open_name, open_ts) = stacks
                    .entry(track)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {idx} ({name}): E without open B"))?;
                if !name.is_empty() && open_name != name {
                    return Err(format!(
                        "event {idx}: E '{name}' does not match open B '{open_name}'"
                    ));
                }
                if ts < open_ts {
                    return Err(format!("event {idx} ({name}): span ends before it begins"));
                }
                spans += 1;
            }
            "i" => instants += 1,
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {idx} ({name}): flow without id"))?
                    as u64;
                let book = if ph == "s" {
                    &mut flow_starts
                } else {
                    &mut flow_ends
                };
                *book.entry(id).or_insert(0) += 1;
            }
            other => return Err(format!("event {idx} ({name}): unknown ph '{other}'")),
        }
    }

    for (track, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "unclosed span '{name}' on track pid={} tid={}",
                track.0, track.1
            ));
        }
    }
    if flow_starts != flow_ends {
        return Err(format!(
            "flow halves do not pair up: {} starts vs {} finishes",
            flow_starts.values().sum::<usize>(),
            flow_ends.values().sum::<usize>()
        ));
    }
    if let Some((id, n)) = flow_starts.iter().find(|(_, n)| **n != 1) {
        return Err(format!("flow id {id} appears {n} times"));
    }

    Ok(TraceSummary {
        events: events.len(),
        spans,
        instants,
        flows: flow_starts.len(),
        tracks: tracks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Telemetry};

    #[test]
    fn accepts_writer_output() {
        let mut t = Telemetry::new();
        t.set_process_name(0, "gpu0");
        t.span(0, 1, "a", "kernel", 0, 10);
        t.span(0, 1, "b", "kernel", 10, 30);
        t.instant(0, 1, "cap", "plan", 5);
        t.flow("dep", "event", (0, 1, 10), (0, 2, 10));
        let s = validate_chrome_trace(&t.chrome_trace()).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.instants, 1);
        assert_eq!(s.flows, 1);
    }

    #[test]
    fn rejects_unbalanced_and_misnested() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":1,"ts":1.0}]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":1,"ts":1.0},
            {"name":"b","ph":"B","pid":0,"tid":1,"ts":2.0},
            {"name":"a","ph":"E","pid":0,"tid":1,"ts":3.0},
            {"name":"b","ph":"E","pid":0,"tid":1,"ts":4.0}]}"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("does not match"));
        let orphan_e = r#"{"traceEvents":[
            {"name":"x","ph":"E","pid":0,"tid":1,"ts":1.0}]}"#;
        assert!(validate_chrome_trace(orphan_e)
            .unwrap_err()
            .contains("without open B"));
    }

    #[test]
    fn rejects_backwards_time_and_dangling_flows() {
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":1,"ts":5.0},
            {"name":"a","ph":"E","pid":0,"tid":1,"ts":4.0}]}"#;
        assert!(validate_chrome_trace(backwards).is_err());
        let dangling = r#"{"traceEvents":[
            {"name":"d","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0}]}"#;
        assert!(validate_chrome_trace(dangling)
            .unwrap_err()
            .contains("pair"));
    }

    #[test]
    fn rejects_non_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"a\":1}")
            .unwrap_err()
            .contains("traceEvents"));
    }
}
