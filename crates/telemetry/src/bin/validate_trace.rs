//! CLI wrapper around [`telemetry::validate::validate_chrome_trace`]:
//! validates each Chrome-trace JSON file passed on the command line and
//! exits non-zero on the first structural failure. CI round-trips the
//! traces emitted by `reproduce trace --smoke` through this binary.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate-trace <trace.json>...");
        return ExitCode::from(2);
    }
    for path in &files {
        let input = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match telemetry::validate::validate_chrome_trace(&input) {
            Ok(s) => println!(
                "{path}: ok — {} events ({} spans, {} instants, {} flows, {} tracks)",
                s.events, s.spans, s.instants, s.flows, s.tracks
            ),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
