#![warn(missing_docs)]

//! Unified telemetry for the GLP4NN runtime: tracing spans, a typed
//! metrics registry, and exporters — all driven by the **simulated**
//! clock.
//!
//! Every subsystem of the runtime (the GPU simulator's engine and fabric,
//! the analyzer/scheduler plan machinery, the CUPTI-style profiler, the
//! data-parallel trainer, the ring collectives and the serving engine)
//! reports into one [`Recorder`]. Two exporters read the result back out:
//!
//! - [`Telemetry::chrome_trace`] — a Chrome-trace / Perfetto JSON string:
//!   one *pid* per device, one *tid* per stream, `B`/`E` duration events
//!   for kernels and P2P copies, `i` instant events for host-side moments
//!   (plan capture, MILP solve, CUPTI flush), and `s`/`f` flow arrows for
//!   cross-stream event dependencies and P2P transfers.
//! - [`Telemetry::metrics_snapshot`] — a plain-text dump of every counter,
//!   gauge and histogram (sorted, deterministic).
//!
//! Determinism is a design constraint, not an accident: all span
//! timestamps come from the simulated nanosecond clock, registries are
//! `BTreeMap`-backed, and flow ids are allocated sequentially in recording
//! order — so for a fixed workload the exported trace is **byte-stable**
//! and can be golden-file tested. Wall-clock quantities (e.g. the
//! profiler's `T_p`) live in *metrics counters only*, never in span
//! timestamps.
//!
//! The off-path costs nothing: instrumented components hold an
//! `Option<SharedRecorder>` and skip everything on `None`. Recording is
//! observation-only — it must never create streams or events, advance a
//! clock, or otherwise perturb the simulation (property-tested in
//! `tests/observation_only.rs`).
//!
//! ```
//! use telemetry::{Recorder, Telemetry};
//!
//! let mut t = Telemetry::new();
//! t.set_process_name(0, "gpu0");
//! t.set_thread_name(0, 1, "stream 1");
//! t.span(0, 1, "sgemm", "kernel", 1_000, 5_000);
//! t.counter_add("gpu.kernels_completed", 1);
//! let json = t.chrome_trace();
//! assert!(json.contains("\"sgemm\""));
//! ```

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod validate;

pub use chrome::chrome_trace;
pub use metrics::{percentile_of_sorted, Histogram, MetricsRegistry};
pub use validate::{validate_chrome_trace, TraceSummary};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Synthetic Chrome-trace *thread* id used for host-side activity of a
/// device process (plan capture/replay, profiling passes, MILP solves) —
/// distinct from any real stream id, and small enough to stay exact
/// through an `f64` round-trip in trace viewers.
pub const HOST_TID: u64 = 999_999;

/// Synthetic Chrome-trace *process* id for the serving engine's request
/// lifecycle lane (one tid per request, so spans stay strictly nested).
pub const SERVE_PID: u32 = 1000;

/// Synthetic Chrome-trace *process* id for collective-communication
/// aggregate spans (one per all-reduce bucket).
pub const COLLECTIVE_PID: u32 = 1001;

/// Base Chrome-trace *process* id for the serving fleet: fleet-level
/// control spans (routing, autoscaling) live at `FLEET_PID`, and replica
/// `i`'s request lifecycle lane at `FLEET_PID + 1 + i` — one pid per
/// replica, mirroring the per-device pid convention.
pub const FLEET_PID: u32 = 1002;

/// One side of a flow arrow: `(pid, tid, timestamp_ns)`.
pub type FlowPoint = (u32, u64, u64);

/// The recording interface instrumented components write into.
///
/// All timestamps are simulated nanoseconds. Implementations must not
/// interpret them — only store and export.
pub trait Recorder {
    /// A closed duration span `[start_ns, end_ns]` on track `(pid, tid)`.
    fn span(&mut self, pid: u32, tid: u64, name: &str, cat: &str, start_ns: u64, end_ns: u64);

    /// A zero-duration instant on track `(pid, tid)`.
    fn instant(&mut self, pid: u32, tid: u64, name: &str, cat: &str, ts_ns: u64);

    /// A flow arrow from one track/time to another (event dependency,
    /// P2P transfer). The recorder assigns the flow id.
    fn flow(&mut self, name: &str, cat: &str, from: FlowPoint, to: FlowPoint);

    /// Add `delta` to the named monotonic counter.
    fn counter_add(&mut self, name: &str, delta: u64);

    /// Set the named gauge to `value` (last write wins).
    fn gauge_set(&mut self, name: &str, value: f64);

    /// Record one observation into the named histogram.
    fn observe(&mut self, name: &str, value: u64);
}

/// A recorder shared across subsystems. `std::sync::Mutex` (not the
/// vendored `parking_lot`) so the unsized coercion to `dyn Recorder`
/// works and the telemetry crate stays dependency-free.
pub type SharedRecorder = Arc<Mutex<dyn Recorder + Send>>;

/// Wrap a concrete [`Telemetry`] (or any recorder) into the shared handle
/// components attach to.
pub fn shared(t: Telemetry) -> Arc<Mutex<Telemetry>> {
    Arc::new(Mutex::new(t))
}

/// An optional [`SharedRecorder`] with an opaque `Debug` representation,
/// so instrumented components can keep deriving `Debug`. The off-path is
/// a `None` check: an empty slot records nothing and allocates nothing.
#[derive(Clone, Default)]
pub struct RecorderSlot(Option<SharedRecorder>);

impl RecorderSlot {
    /// An empty (recording-off) slot.
    pub const fn empty() -> Self {
        RecorderSlot(None)
    }

    /// Attach a shared recorder.
    pub fn attach(&mut self, rec: SharedRecorder) {
        self.0 = Some(rec);
    }

    /// Detach, returning to the zero-cost off-path.
    pub fn clear(&mut self) {
        self.0 = None;
    }

    /// Whether a recorder is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// The attached handle, if any (e.g. to propagate to a sub-component).
    pub fn get(&self) -> Option<&SharedRecorder> {
        self.0.as_ref()
    }

    /// Run `f` against the recorder if one is attached; no-op otherwise.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn Recorder) -> R) -> Option<R> {
        self.0.as_ref().map(|rec| {
            let mut guard = rec.lock().unwrap_or_else(|poison| poison.into_inner());
            f(&mut *guard)
        })
    }
}

impl std::fmt::Debug for RecorderSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "RecorderSlot(attached)"
        } else {
            "RecorderSlot(empty)"
        })
    }
}

/// A recorded duration span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Chrome-trace process id (device index, or a synthetic lane).
    pub pid: u32,
    /// Chrome-trace thread id (stream id, request id, or [`HOST_TID`]).
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Event category (`kernel`, `p2p`, `plan`, ...).
    pub cat: String,
    /// Span start, simulated ns.
    pub start_ns: u64,
    /// Span end, simulated ns.
    pub end_ns: u64,
    /// Recording order, for deterministic tie-breaks.
    pub seq: u64,
}

/// A recorded instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantEvent {
    /// Chrome-trace process id.
    pub pid: u32,
    /// Chrome-trace thread id.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Event category.
    pub cat: String,
    /// Timestamp, simulated ns.
    pub ts_ns: u64,
    /// Recording order.
    pub seq: u64,
}

/// A recorded flow arrow (start + finish binding points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    /// Flow id (sequential in recording order; pairs `s` with `f`).
    pub id: u64,
    /// Arrow name.
    pub name: String,
    /// Arrow category.
    pub cat: String,
    /// Source binding point.
    pub from: FlowPoint,
    /// Destination binding point.
    pub to: FlowPoint,
}

/// The default [`Recorder`]: stores everything in memory and exports on
/// demand. One instance is shared (behind a mutex) by every instrumented
/// component of a run.
#[derive(Debug, Default)]
pub struct Telemetry {
    spans: Vec<SpanEvent>,
    instants: Vec<InstantEvent>,
    flows: Vec<FlowEvent>,
    metrics: MetricsRegistry,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u64), String>,
    seq: u64,
}

impl Telemetry {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name the Chrome-trace process `pid` (e.g. `"gpu0"`).
    pub fn set_process_name(&mut self, pid: u32, name: &str) {
        self.process_names.insert(pid, name.to_string());
    }

    /// Name thread `tid` of process `pid` (e.g. `"stream 3"`).
    pub fn set_thread_name(&mut self, pid: u32, tid: u64, name: &str) {
        self.thread_names.insert((pid, tid), name.to_string());
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// All recorded instants, in recording order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// All recorded flow arrows, in recording order.
    pub fn flows(&self) -> &[FlowEvent] {
        &self.flows
    }

    /// The metrics registry (counters/gauges/histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for views that fold
    /// external measurements in, e.g. the CUPTI overhead model).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Registered process names.
    pub fn process_names(&self) -> &BTreeMap<u32, String> {
        &self.process_names
    }

    /// Registered thread names.
    pub fn thread_names(&self) -> &BTreeMap<(u32, u64), String> {
        &self.thread_names
    }

    /// Export everything recorded so far as a Chrome-trace JSON string.
    /// Deterministic: same recording → same bytes.
    pub fn chrome_trace(&self) -> String {
        chrome::chrome_trace(self)
    }

    /// Export the metrics registry as a sorted plain-text snapshot.
    pub fn metrics_snapshot(&self) -> String {
        self.metrics.snapshot()
    }

    /// Sum of span durations on every track of process `pid` with
    /// category `cat` (e.g. reconcile `kernel` spans against
    /// `DeviceStats::total_kernel_time_ns`).
    pub fn span_time_ns(&self, pid: u32, cat: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.pid == pid && s.cat == cat)
            .map(|s| s.end_ns - s.start_ns)
            .sum()
    }
}

impl Recorder for Telemetry {
    fn span(&mut self, pid: u32, tid: u64, name: &str, cat: &str, start_ns: u64, end_ns: u64) {
        debug_assert!(start_ns <= end_ns, "span {name} ends before it starts");
        self.seq += 1;
        self.spans.push(SpanEvent {
            pid,
            tid,
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns,
            end_ns,
            seq: self.seq,
        });
    }

    fn instant(&mut self, pid: u32, tid: u64, name: &str, cat: &str, ts_ns: u64) {
        self.seq += 1;
        self.instants.push(InstantEvent {
            pid,
            tid,
            name: name.to_string(),
            cat: cat.to_string(),
            ts_ns,
            seq: self.seq,
        });
    }

    fn flow(&mut self, name: &str, cat: &str, from: FlowPoint, to: FlowPoint) {
        let id = self.flows.len() as u64 + 1;
        self.flows.push(FlowEvent {
            id,
            name: name.to_string(),
            cat: cat.to_string(),
            from,
            to,
        });
    }

    fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates_in_order() {
        let mut t = Telemetry::new();
        t.span(0, 1, "a", "kernel", 10, 20);
        t.span(0, 1, "b", "kernel", 20, 30);
        t.instant(0, HOST_TID, "solve", "plan", 15);
        t.flow("dep", "event", (0, 1, 20), (0, 2, 20));
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].name, "a");
        assert_eq!(t.instants().len(), 1);
        assert_eq!(t.flows()[0].id, 1);
        assert_eq!(t.span_time_ns(0, "kernel"), 20);
        assert_eq!(t.span_time_ns(0, "p2p"), 0);
    }

    #[test]
    fn shared_handle_coerces_to_dyn_recorder() {
        let h = shared(Telemetry::new());
        let dynh: SharedRecorder = h.clone();
        dynh.lock().unwrap().counter_add("c", 2);
        assert_eq!(h.lock().unwrap().metrics().counter("c"), 2);
    }

    #[test]
    fn span_totals_filter_by_pid_and_cat() {
        let mut t = Telemetry::new();
        t.span(0, 1, "k", "kernel", 0, 100);
        t.span(1, 1, "k", "kernel", 0, 50);
        t.span(0, 2, "c", "p2p", 0, 7);
        assert_eq!(t.span_time_ns(0, "kernel"), 100);
        assert_eq!(t.span_time_ns(1, "kernel"), 50);
        assert_eq!(t.span_time_ns(0, "p2p"), 7);
    }
}
