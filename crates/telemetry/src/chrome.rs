//! Chrome-trace / Perfetto JSON export.
//!
//! Layout conventions (loadable in `chrome://tracing` and Perfetto):
//!
//! - **pid** = device index (plus the synthetic [`crate::SERVE_PID`] /
//!   [`crate::COLLECTIVE_PID`] lanes), named via `process_name` metadata.
//! - **tid** = stream id within the device (plus [`crate::HOST_TID`] for
//!   host-side activity), named via `thread_name` metadata.
//! - Spans are `B`/`E` duration-event pairs, **strictly nested per tid**:
//!   the writer sorts each track and closes spans before opening
//!   non-overlapping successors, so the output always balances.
//! - Instants are `i` events with thread scope.
//! - Flow arrows (`s` → `f`, binding point `e`) connect cross-stream
//!   event dependencies and P2P copies.
//!
//! Timestamps are microseconds with exactly three decimals (the simulated
//! nanosecond, verbatim), formatted with deterministic integer math — the
//! whole export is byte-stable for a fixed recording, which the
//! golden-file test relies on.

use crate::json::escape;
use crate::{SpanEvent, Telemetry};
use std::fmt::Write as _;

/// Format simulated ns as a Chrome-trace µs timestamp (`1234.567`).
fn ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render everything `t` recorded as a Chrome-trace JSON document.
pub fn chrome_trace(t: &Telemetry) -> String {
    let mut events: Vec<String> = Vec::new();

    for (pid, name) in t.process_names() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }
    for ((pid, tid), name) in t.thread_names() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    // Group spans and instants per (pid, tid) track, tracks sorted.
    let mut tracks: Vec<(u32, u64)> = t
        .spans()
        .iter()
        .map(|s| (s.pid, s.tid))
        .chain(t.instants().iter().map(|i| (i.pid, i.tid)))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();

    for (pid, tid) in tracks {
        let mut spans: Vec<&SpanEvent> = t
            .spans()
            .iter()
            .filter(|s| s.pid == pid && s.tid == tid)
            .collect();
        // Chronological, outermost-first on ties, recording order as the
        // final tie-break: guarantees a nesting-compatible open order.
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.end_ns), s.seq));

        let mut stack: Vec<&SpanEvent> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if top.end_ns <= s.start_ns {
                    push_end(&mut events, pid, tid, top);
                    stack.pop();
                } else {
                    break;
                }
            }
            debug_assert!(
                stack.last().is_none_or(|top| top.end_ns >= s.end_ns),
                "partially overlapping spans on one track: {} vs {}",
                stack.last().unwrap().name,
                s.name
            );
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
                escape(&s.name),
                escape(&s.cat),
                ts(s.start_ns)
            ));
            stack.push(s);
        }
        while let Some(top) = stack.pop() {
            push_end(&mut events, pid, tid, top);
        }

        let mut instants: Vec<_> = t
            .instants()
            .iter()
            .filter(|i| i.pid == pid && i.tid == tid)
            .collect();
        instants.sort_by_key(|i| (i.ts_ns, i.seq));
        for i in instants {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\"}}",
                escape(&i.name),
                escape(&i.cat),
                ts(i.ts_ns)
            ));
        }
    }

    for f in t.flows() {
        let (sp, st, sts) = f.from;
        let (fp, ft, fts) = f.to;
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"s\",\"id\":{},\"pid\":{sp},\"tid\":{st},\"ts\":{}}}",
            escape(&f.name),
            escape(&f.cat),
            f.id,
            ts(sts)
        ));
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":{fp},\"tid\":{ft},\"ts\":{}}}",
            escape(&f.name),
            escape(&f.cat),
            f.id,
            ts(fts)
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let _ = write!(out, "{}", events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn push_end(events: &mut Vec<String>, pid: u32, tid: u64, s: &SpanEvent) {
    events.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
        escape(&s.name),
        escape(&s.cat),
        ts(s.end_ns)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::Recorder;

    #[test]
    fn export_is_valid_json_and_byte_stable() {
        let mut t = Telemetry::new();
        t.set_process_name(0, "gpu0");
        t.set_thread_name(0, 1, "stream 1");
        t.span(0, 1, "im2col", "kernel", 1_000, 2_500);
        t.span(0, 1, "sgemm", "kernel", 2_500, 9_000);
        t.instant(0, crate::HOST_TID, "milp.solve", "plan", 500);
        t.flow("dep", "event", (0, 1, 2_500), (0, 2, 2_500));
        let a = t.chrome_trace();
        let b = t.chrome_trace();
        assert_eq!(a, b, "export must be deterministic");
        let v = parse(&a).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + 2 B + 2 E + 1 i + 2 flow halves.
        assert_eq!(evs.len(), 9);
    }

    #[test]
    fn back_to_back_spans_close_before_opening() {
        let mut t = Telemetry::new();
        t.span(0, 1, "a", "kernel", 0, 100);
        t.span(0, 1, "b", "kernel", 100, 200);
        let json = t.chrome_trace();
        let ea = json.find("\"a\",\"cat\":\"kernel\",\"ph\":\"E\"").unwrap();
        let bb = json.find("\"b\",\"cat\":\"kernel\",\"ph\":\"B\"").unwrap();
        assert!(ea < bb, "a must close before b opens:\n{json}");
    }

    #[test]
    fn nested_spans_stay_nested() {
        let mut t = Telemetry::new();
        // Outer recorded second: sorting must still open it first.
        t.span(0, 1, "inner", "phase", 10, 20);
        t.span(0, 1, "outer", "phase", 0, 100);
        let json = t.chrome_trace();
        let bo = json
            .find("\"outer\",\"cat\":\"phase\",\"ph\":\"B\"")
            .unwrap();
        let bi = json
            .find("\"inner\",\"cat\":\"phase\",\"ph\":\"B\"")
            .unwrap();
        let ei = json
            .find("\"inner\",\"cat\":\"phase\",\"ph\":\"E\"")
            .unwrap();
        let eo = json
            .find("\"outer\",\"cat\":\"phase\",\"ph\":\"E\"")
            .unwrap();
        assert!(bo < bi && bi < ei && ei < eo, "nesting broken:\n{json}");
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_decimals() {
        assert_eq!(ts(0), "0.000");
        assert_eq!(ts(1), "0.001");
        assert_eq!(ts(1_234_567), "1234.567");
        assert_eq!(ts(1_000), "1.000");
    }
}
