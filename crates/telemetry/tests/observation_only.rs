//! Property test: telemetry is **observation-only**.
//!
//! Attaching a recorder must never perturb the simulation — no extra
//! streams or events, no clock movement, no numeric change. For random
//! (net, dispatch mode, device, batch, seed) combinations, a training
//! run with telemetry attached produces a kernel timeline **identical**
//! to the telemetry-off run and **bitwise-identical** trained weights —
//! while still actually recording (one kernel span per trace entry).

use gpu_sim::{DeviceProps, KernelTrace};
use nn::data::SyntheticDataset;
use nn::models;
use nn::{DispatchMode, ExecCtx, Net, Solver, SolverConfig};
use proptest::prelude::*;
use tensor::Blob;

fn device(sel: usize) -> DeviceProps {
    match sel % 3 {
        0 => DeviceProps::k40c(),
        1 => DeviceProps::p100(),
        _ => DeviceProps::titan_xp(),
    }
}

fn mode(sel: usize) -> DispatchMode {
    match sel % 3 {
        0 => DispatchMode::Naive,
        1 => DispatchMode::FixedStreams(4),
        _ => DispatchMode::Glp4nn,
    }
}

fn ctx_for(mode_sel: usize, dev_sel: usize) -> ExecCtx {
    match mode(mode_sel) {
        DispatchMode::Glp4nn => ExecCtx::glp4nn(device(dev_sel)),
        m => ExecCtx::with_mode(device(dev_sel), m),
    }
}

/// Train `iters` solver steps of one of the two cheap compute-on nets;
/// returns the kernel timeline, the bitwise weights, and how many spans
/// the recorder (if any) captured.
fn train(
    siamese: bool,
    mode_sel: usize,
    dev_sel: usize,
    iters: usize,
    batch: usize,
    seed: u64,
    with_telemetry: bool,
) -> (Vec<KernelTrace>, Vec<u32>, usize) {
    let mut ctx = ctx_for(mode_sel, dev_sel);
    let rec = with_telemetry.then(|| telemetry::shared(telemetry::Telemetry::new()));
    if let Some(rec) = &rec {
        ctx.set_telemetry(rec.clone(), 0);
    }
    let spec = if siamese {
        models::siamese(batch, seed)
    } else {
        models::cifar10_quick(batch, seed)
    };
    let mut solver = Solver::new(Net::from_spec(&spec), SolverConfig::default());
    let ds = if siamese {
        SyntheticDataset::mnist_like(seed)
    } else {
        SyntheticDataset::cifar_like(seed)
    };
    for it in 0..iters {
        if siamese {
            let mut a = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut b = std::mem::replace(solver.net.blob_mut("data_p"), Blob::empty());
            let mut s = std::mem::replace(solver.net.blob_mut("sim"), Blob::empty());
            ds.fill_pair_batch(it * batch, &mut a, &mut b, &mut s);
            *solver.net.blob_mut("data") = a;
            *solver.net.blob_mut("data_p") = b;
            *solver.net.blob_mut("sim") = s;
        } else {
            let mut data = std::mem::replace(solver.net.blob_mut("data"), Blob::empty());
            let mut label = std::mem::replace(solver.net.blob_mut("label"), Blob::empty());
            ds.fill_batch(it * batch, &mut data, &mut label);
            *solver.net.blob_mut("data") = data;
            *solver.net.blob_mut("label") = label;
        }
        solver.step(&mut ctx);
    }
    ctx.clear_telemetry();
    let spans = rec.map_or(0, |rec| {
        rec.lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .spans()
            .iter()
            .filter(|s| s.cat == "kernel")
            .count()
    });
    let weights: Vec<u32> = solver
        .net
        .params_mut()
        .iter()
        .flat_map(|p| p.data().iter().map(|v| v.to_bits()))
        .collect();
    (ctx.device.trace().to_vec(), weights, spans)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Telemetry on vs off: identical simulated timelines, bitwise
    /// identical trained weights, and the on-run really recorded.
    #[test]
    fn recording_never_perturbs_the_simulation(
        siamese in any::<bool>(),
        mode_sel in 0usize..3,
        dev_sel in 0usize..3,
        iters in 1usize..=2,
        batch in 2usize..=4,
        seed in 0u64..1_000,
    ) {
        let (tl_off, w_off, _) =
            train(siamese, mode_sel, dev_sel, iters, batch, seed, false);
        let (tl_on, w_on, spans) =
            train(siamese, mode_sel, dev_sel, iters, batch, seed, true);
        prop_assert_eq!(&tl_off, &tl_on, "timeline changed under observation");
        prop_assert_eq!(&w_off, &w_on, "trained weights changed under observation");
        prop_assert_eq!(spans, tl_on.len(), "expected one kernel span per trace entry");
        prop_assert!(spans > 0, "recorder attached but nothing recorded");
    }
}
