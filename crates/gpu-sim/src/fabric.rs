//! A multi-GPU interconnect fabric: N devices joined by point-to-point
//! links, with first-class asynchronous peer-to-peer copies.
//!
//! The fabric is the missing piece between single-device GLP4NN scheduling
//! and data-parallel training: collectives (`crates/collective`) are built
//! as chains of [`CopyP2P`](Fabric::copy_p2p) commands plus local reduction
//! kernels, and the comm/compute overlap that makes data parallelism scale
//! is exactly the stream/event machinery the single-device engine already
//! has.
//!
//! Model:
//!
//! - A **link** is a directed `(src, dst)` connection with a bandwidth, a
//!   fixed latency, and optional deterministic jitter ([`LinkProps`];
//!   [`pcie3`](LinkProps::pcie3) and [`nvlink`](LinkProps::nvlink)
//!   presets). Links are independent — NVLink-style point-to-point — and a
//!   link serializes the transfers scheduled on it (FIFO, busy-until).
//! - A **copy** occupies a source stream (like `cudaMemcpyPeerAsync`: the
//!   sending stream is busy for the whole transfer) and completes a
//!   destination-side wait marker, giving the same happens-before edge an
//!   event wait would. Copies pay the host launch overhead on the source
//!   device, appear in its command log ([`CmdRecord::CopySrc`] /
//!   [`CmdRecord::CopyDst`]) and in its timeline like kernels do.
//! - [`Fabric::run`] is a global discrete-event loop: it always steps the
//!   device with the earliest pending event, so cross-device timestamps
//!   are processed in nondecreasing global order and copy completions
//!   never time-travel. It is fully deterministic.
//!
//! The fabric does **not** own its devices — callers keep them (an
//! execution context owns its `Device`) and lend `&mut [&mut Device]` per
//! call, indexed by the device's position in the slice.

use crate::device::DeviceProps;
use crate::engine::Device;
use crate::kernel::{KernelDesc, KernelId, LaunchConfig, MemAccess};
use crate::stats::DeviceStats;
use crate::stream::{CopyId, StreamId};
use crate::timeline::{KernelTrace, Timeline};
use crate::SimTime;

/// Properties of one directed link between two devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProps {
    /// Link bandwidth in GB/s (1 GB = 1e9 bytes).
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency in ns.
    pub latency_ns: SimTime,
    /// Maximum deterministic timing jitter added per transfer, in ns
    /// (a pseudo-random value in `[0, jitter_ns]` derived from the copy
    /// id — repeatable, and never affects data, only timing).
    pub jitter_ns: SimTime,
}

impl LinkProps {
    /// A PCIe 3.0 x16-like link: ~12 GB/s effective, ~1.3 µs latency.
    pub fn pcie3() -> Self {
        LinkProps {
            bandwidth_gbps: 12.0,
            latency_ns: 1_300,
            jitter_ns: 0,
        }
    }

    /// An NVLink-like link (P100 generation): ~40 GB/s, ~700 ns latency.
    pub fn nvlink() -> Self {
        LinkProps {
            bandwidth_gbps: 40.0,
            latency_ns: 700,
            jitter_ns: 0,
        }
    }

    /// The same link with timing jitter up to `ns` per transfer.
    pub fn with_jitter(mut self, ns: SimTime) -> Self {
        self.jitter_ns = ns;
        self
    }

    /// Pure transfer duration of `bytes` over this link (latency + wire
    /// time, before jitter), in ns.
    pub fn transfer_ns(&self, bytes: u64) -> SimTime {
        let wire = (bytes as f64 / self.bandwidth_gbps).ceil() as SimTime;
        self.latency_ns + wire.max(1)
    }
}

/// Typed error for cross-device misuse, mirroring `StreamError` /
/// `GraphError` elsewhere in the workspace: misconfigured topologies are
/// caller bugs we want surfaced as values, not panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// A device index is outside the fabric.
    UnknownDevice {
        /// Offending index.
        device: usize,
        /// Number of devices in the fabric.
        num_devices: usize,
    },
    /// Source and destination are the same device (use an ordinary kernel
    /// or event, not the fabric, for intra-device data movement).
    SelfCopy {
        /// The device named on both sides.
        device: usize,
    },
    /// No link exists between the two devices.
    NotConnected {
        /// Source device.
        src: usize,
        /// Destination device.
        dst: usize,
    },
    /// The stream does not exist on that device — typically a stream id
    /// created on *another* device's stream table.
    UnknownStream {
        /// Device the operation targeted.
        device: usize,
        /// The invalid stream.
        stream: StreamId,
        /// Number of streams the device actually has.
        num_streams: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::UnknownDevice {
                device,
                num_devices,
            } => write!(
                f,
                "unknown device {device}: fabric has {num_devices} devices"
            ),
            FabricError::SelfCopy { device } => {
                write!(f, "self-copy on device {device}: src and dst are the same")
            }
            FabricError::NotConnected { src, dst } => {
                write!(f, "no link from device {src} to device {dst}")
            }
            FabricError::UnknownStream {
                device,
                stream,
                num_streams,
            } => write!(
                f,
                "stream {} does not exist on device {device} ({num_streams} streams) — \
                 was it created on another device?",
                stream.raw()
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Description of one peer-to-peer copy: endpoints, streams, and the
/// declared buffer accesses (source read, destination write) the schedule
/// sanitizer checks.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyDesc {
    /// Name shown in timelines / diagnostics (e.g. `p2p:0->1 bucket3`).
    pub name: String,
    /// Source device index within the fabric.
    pub src: usize,
    /// Destination device index within the fabric.
    pub dst: usize,
    /// Stream on the source device the transfer occupies.
    pub src_stream: StreamId,
    /// Stream on the destination device that waits for the arrival.
    pub dst_stream: StreamId,
    /// Bytes transferred.
    pub bytes: u64,
    /// Declared read on the source device.
    pub src_access: MemAccess,
    /// Declared write on the destination device.
    pub dst_access: MemAccess,
}

impl CopyDesc {
    /// Build a copy description; `bytes` defaults to the length of the
    /// source range.
    pub fn new(
        name: &str,
        (src, src_stream, src_access): (usize, StreamId, MemAccess),
        (dst, dst_stream, dst_access): (usize, StreamId, MemAccess),
    ) -> Self {
        CopyDesc {
            name: name.to_string(),
            src,
            dst,
            src_stream,
            dst_stream,
            bytes: src_access.range.len(),
            src_access,
            dst_access,
        }
    }
}

/// One scheduled copy: its description plus resolved timing.
#[derive(Debug, Clone)]
struct CopyRecord {
    desc: CopyDesc,
    /// Host time the source-side enqueue completed.
    launch_ns: SimTime,
    /// Transfer start (after link queueing), set by [`Fabric::run`].
    start: Option<SimTime>,
    /// Transfer end, set by [`Fabric::run`].
    end: Option<SimTime>,
}

/// How the slots of a [`FabricSpec`] are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTopology {
    /// Every ordered pair of slots joined by the spec's link.
    FullyConnected,
    /// Slot `i` linked bidirectionally to `(i + 1) % n`.
    Ring,
}

/// A declarative placement plan for a fabric: which device model occupies
/// each slot and how the slots are linked.
///
/// The [`Fabric`] itself deliberately does not own devices, so anything
/// that wants to *stand up* a multi-device deployment (the serving fleet,
/// the data-parallel trainer, a benchmark sweep) needs a description it
/// can instantiate devices and fabric from together, keeping slot indices
/// consistent between the two. That is this type: a named, possibly
/// heterogeneous list of [`DeviceProps`] plus a link model and topology.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Name shown in reports (e.g. `uniform8-nvlink`).
    pub name: String,
    /// Device model per fabric slot, in slot order.
    pub slots: Vec<DeviceProps>,
    /// Link model joining the slots.
    pub link: LinkProps,
    /// Wiring between slots.
    pub topology: FabricTopology,
}

impl FabricSpec {
    /// A homogeneous fully-connected spec: `n` slots of the same model.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn uniform(name: &str, n: usize, props: DeviceProps, link: LinkProps) -> Self {
        assert!(n > 0, "a fabric spec needs at least one slot");
        FabricSpec {
            name: name.to_string(),
            slots: vec![props; n],
            link,
            topology: FabricTopology::FullyConnected,
        }
    }

    /// A heterogeneous fully-connected spec with explicit per-slot models.
    ///
    /// # Panics
    /// Panics if `slots` is empty.
    pub fn heterogeneous(name: &str, slots: Vec<DeviceProps>, link: LinkProps) -> Self {
        assert!(!slots.is_empty(), "a fabric spec needs at least one slot");
        FabricSpec {
            name: name.to_string(),
            slots,
            link,
            topology: FabricTopology::FullyConnected,
        }
    }

    /// The same spec with a different topology.
    pub fn with_topology(mut self, topology: FabricTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of device slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The device model in slot `i`.
    pub fn slot(&self, i: usize) -> &DeviceProps {
        &self.slots[i]
    }

    /// Peak single-precision FLOP/s of slot `i`'s model — the capacity
    /// weight a heterogeneity-aware router uses.
    pub fn slot_peak_flops(&self, i: usize) -> f64 {
        self.slots[i].device_peak_flops()
    }

    /// Instantiate the link structure described by this spec.
    pub fn build_fabric(&self) -> Fabric {
        let n = self.slots.len();
        match self.topology {
            FabricTopology::FullyConnected => Fabric::fully_connected(n, self.link),
            FabricTopology::Ring => Fabric::ring(n, self.link),
        }
    }

    /// Instantiate one fresh [`Device`] per slot, in slot order.
    pub fn spawn_devices(&self) -> Vec<Device> {
        self.slots.iter().cloned().map(Device::new).collect()
    }
}

/// A fabric of N devices and the links between them.
///
/// See the [module docs](self) for the model. Devices are *not* owned;
/// every operation takes the device slice, indexed by fabric position.
#[derive(Debug)]
pub struct Fabric {
    num_devices: usize,
    /// `links[src][dst]`.
    links: Vec<Vec<Option<LinkProps>>>,
    /// Busy-until time per directed link (transfers on a link serialize).
    link_busy: Vec<Vec<SimTime>>,
    copies: Vec<CopyRecord>,
    jitter_seed: u64,
    /// Optional telemetry recorder: P2P copy spans on the source stream,
    /// transfer flow arrows to the destination, and link-byte counters.
    /// Device index = Chrome-trace pid, matching the per-device
    /// [`Device::set_telemetry`] convention.
    telemetry: telemetry::RecorderSlot,
}

impl Fabric {
    /// A fabric of `n` devices with no links (connect them explicitly).
    pub fn new(n: usize) -> Self {
        Fabric {
            num_devices: n,
            links: vec![vec![None; n]; n],
            link_busy: vec![vec![0; n]; n],
            copies: Vec::new(),
            jitter_seed: 0,
            telemetry: telemetry::RecorderSlot::empty(),
        }
    }

    /// A fully connected fabric: every ordered pair joined by `link`.
    pub fn fully_connected(n: usize, link: LinkProps) -> Self {
        let mut f = Fabric::new(n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    f.links[a][b] = Some(link);
                }
            }
        }
        f
    }

    /// A ring fabric: device `i` linked to `(i+1) % n` and back.
    pub fn ring(n: usize, link: LinkProps) -> Self {
        let mut f = Fabric::new(n);
        for a in 0..n {
            let b = (a + 1) % n;
            if a != b {
                f.links[a][b] = Some(link);
                f.links[b][a] = Some(link);
            }
        }
        f
    }

    /// Connect `a` and `b` in both directions with `link`.
    pub fn connect(&mut self, a: usize, b: usize, link: LinkProps) -> Result<(), FabricError> {
        for d in [a, b] {
            if d >= self.num_devices {
                return Err(FabricError::UnknownDevice {
                    device: d,
                    num_devices: self.num_devices,
                });
            }
        }
        if a == b {
            return Err(FabricError::SelfCopy { device: a });
        }
        self.links[a][b] = Some(link);
        self.links[b][a] = Some(link);
        Ok(())
    }

    /// Seed for the deterministic per-copy jitter hash.
    pub fn set_jitter_seed(&mut self, seed: u64) {
        self.jitter_seed = seed;
    }

    /// Attach a telemetry recorder: each resolved P2P copy emits a span
    /// on its source device's stream, a flow arrow to the destination
    /// stream, and per-link byte counters. Observation-only — link
    /// scheduling and timing are unaffected.
    pub fn set_telemetry(&mut self, rec: telemetry::SharedRecorder) {
        self.telemetry.attach(rec);
    }

    /// Detach the telemetry recorder.
    pub fn clear_telemetry(&mut self) {
        self.telemetry.clear();
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// The directed link from `src` to `dst`, if connected.
    pub fn link(&self, src: usize, dst: usize) -> Option<&LinkProps> {
        self.links.get(src)?.get(dst)?.as_ref()
    }

    /// Number of copies enqueued so far.
    pub fn num_copies(&self) -> usize {
        self.copies.len()
    }

    /// Description of a previously enqueued copy.
    pub fn copy_desc(&self, id: CopyId) -> &CopyDesc {
        &self.copies[id.raw() as usize].desc
    }

    /// Resolved `(start, end)` of a copy's transfer, after [`run`].
    ///
    /// [`run`]: Fabric::run
    pub fn copy_span(&self, id: CopyId) -> Option<(SimTime, SimTime)> {
        let rec = &self.copies[id.raw() as usize];
        match (rec.start, rec.end) {
            (Some(s), Some(e)) => Some((s, e)),
            _ => None,
        }
    }

    /// Validate that `device`/`stream` name an existing stream of an
    /// existing device.
    fn check_stream(
        &self,
        devs: &[&mut Device],
        device: usize,
        stream: StreamId,
    ) -> Result<(), FabricError> {
        if device >= self.num_devices || device >= devs.len() {
            return Err(FabricError::UnknownDevice {
                device,
                num_devices: self.num_devices.min(devs.len()),
            });
        }
        let n = devs[device].num_streams();
        if stream.raw() as usize >= n {
            return Err(FabricError::UnknownStream {
                device,
                stream,
                num_streams: n,
            });
        }
        Ok(())
    }

    /// Launch a kernel on `device`'s `stream`, validating that the stream
    /// actually belongs to that device (the classic multi-GPU bug of using
    /// a stream created under another device).
    pub fn launch_on(
        &self,
        devs: &mut [&mut Device],
        device: usize,
        stream: StreamId,
        desc: KernelDesc,
    ) -> Result<KernelId, FabricError> {
        self.check_stream(devs, device, stream)?;
        Ok(devs[device].launch(stream, desc))
    }

    /// Enqueue an asynchronous peer-to-peer copy: the source stream is
    /// occupied for the whole transfer, the destination stream blocks at
    /// its `CopyDst` marker until the data lands, and the transfer itself
    /// is scheduled on the `(src, dst)` link by [`run`](Fabric::run),
    /// contending FIFO with other transfers on the same link.
    pub fn copy_p2p(
        &mut self,
        devs: &mut [&mut Device],
        desc: CopyDesc,
    ) -> Result<CopyId, FabricError> {
        if desc.src == desc.dst {
            return Err(FabricError::SelfCopy { device: desc.src });
        }
        self.check_stream(devs, desc.src, desc.src_stream)?;
        self.check_stream(devs, desc.dst, desc.dst_stream)?;
        if self.links[desc.src][desc.dst].is_none() {
            return Err(FabricError::NotConnected {
                src: desc.src,
                dst: desc.dst,
            });
        }
        let id = CopyId(self.copies.len() as u64);
        let launch_ns = devs[desc.src].enqueue_copy_src(desc.src_stream, id);
        devs[desc.dst].enqueue_copy_dst(desc.dst_stream, id);
        self.copies.push(CopyRecord {
            desc,
            launch_ns,
            start: None,
            end: None,
        });
        Ok(id)
    }

    /// Deterministic per-copy jitter in `[0, jitter_ns]` (splitmix64 of
    /// the copy id and fabric seed).
    fn jitter(&self, id: CopyId, jitter_ns: SimTime) -> SimTime {
        if jitter_ns == 0 {
            return 0;
        }
        let mut z = self
            .jitter_seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id.raw().wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z % (jitter_ns + 1)
    }

    /// Schedule a ready copy on its link and wake both endpoint devices at
    /// the transfer end.
    fn resolve_copy(&mut self, devs: &mut [&mut Device], id: CopyId, ready: SimTime) {
        let idx = id.raw() as usize;
        let (src, dst, bytes, name, stream, dst_stream, launch_ns) = {
            let d = &self.copies[idx].desc;
            (
                d.src,
                d.dst,
                d.bytes,
                d.name.clone(),
                d.src_stream,
                d.dst_stream,
                self.copies[idx].launch_ns,
            )
        };
        let link = self.links[src][dst].expect("link validated at enqueue");
        let start = ready.max(self.link_busy[src][dst]);
        let end = start + link.transfer_ns(bytes) + self.jitter(id, link.jitter_ns);
        self.link_busy[src][dst] = end;
        self.copies[idx].start = Some(start);
        self.copies[idx].end = Some(end);
        // The copy shows up in the source device's timeline like a kernel
        // (tagged with its fabric-wide copy id).
        if self.telemetry.is_attached() {
            self.telemetry.with(|r| {
                r.span(src as u32, stream.raw() as u64, &name, "p2p", start, end);
                r.flow(
                    &name,
                    "p2p",
                    (src as u32, stream.raw() as u64, end),
                    (dst as u32, dst_stream.raw() as u64, end),
                );
                r.counter_add("fabric.p2p_copies", 1);
                r.counter_add("fabric.link_bytes", bytes);
                r.counter_add(&format!("fabric.link_bytes.{src}->{dst}"), bytes);
            });
        }
        devs[src].push_trace_entry(KernelTrace {
            id: KernelId(u64::MAX - id.raw()),
            name,
            stream,
            launch: LaunchConfig::new(
                crate::kernel::Dim3::linear(1),
                crate::kernel::Dim3::linear(1),
                0,
                0,
            ),
            tag: id.raw(),
            launch_ns,
            start_ns: start,
            end_ns: end,
        });
        devs[src].finish_copy_src(id, end);
        devs[dst].finish_copy_dst(id, end);
    }

    /// Run all devices to completion under a single global discrete-event
    /// loop, scheduling link transfers as their source halves become
    /// ready. Returns the latest device clock.
    ///
    /// Equivalent to [`Device::run`] per device when no copies are
    /// pending; with copies, always steps the globally earliest event so
    /// completions propagate across devices in time order.
    pub fn run(&mut self, devs: &mut [&mut Device]) -> SimTime {
        assert_eq!(
            devs.len(),
            self.num_devices,
            "fabric of {} devices got {} device handles",
            self.num_devices,
            devs.len()
        );
        for d in devs.iter_mut() {
            d.kick();
        }
        loop {
            // Resolve copies whose source half reached its stream front,
            // in deterministic (ready time, copy id) order.
            let mut ready: Vec<(SimTime, CopyId)> = Vec::new();
            for d in devs.iter_mut() {
                for (id, t) in d.take_ready_copies() {
                    ready.push((t, id));
                }
            }
            ready.sort_unstable();
            for (t, id) in ready {
                self.resolve_copy(devs, id, t);
            }
            // Step the device with the earliest pending event.
            let next = devs
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.next_event_time().map(|t| (t, i)))
                .min();
            match next {
                Some((_, i)) => {
                    devs[i].step_one();
                }
                None => break,
            }
        }
        for d in devs.iter_mut() {
            debug_assert!(
                d.fully_idle(),
                "fabric drained with a non-idle device (missing copy half or \
                 unsatisfiable wait?)"
            );
            d.push_sync_marker();
        }
        devs.iter().map(|d| d.now()).max().unwrap_or(0)
    }

    /// Per-device utilization statistics.
    pub fn stats(&self, devs: &[&Device]) -> Vec<DeviceStats> {
        devs.iter().map(|d| d.stats()).collect()
    }

    /// A merged timeline across devices: stream rows are offset per device
    /// so device `i`'s streams render as a contiguous band under a shared
    /// time axis.
    pub fn merged_timeline(&self, devs: &[&Device]) -> Timeline {
        let mut offset = 0u32;
        let mut traces: Vec<KernelTrace> = Vec::new();
        for d in devs {
            for t in d.trace() {
                let mut t = t.clone();
                t.stream = StreamId(offset + t.stream.raw());
                traces.push(t);
            }
            offset += d.num_streams() as u32;
        }
        traces.sort_by_key(|t| (t.start_ns, t.stream));
        Timeline::new(&traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProps;
    use crate::kernel::{BufferId, ByteRange, Dim3, KernelCost, KernelDesc};

    fn mem(label: &str, len: u64) -> MemAccess {
        MemAccess {
            buffer: BufferId::from_label(label),
            range: ByteRange::new(0, len),
        }
    }

    fn kernel(name: &str, blocks: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(256), 32, 0),
            KernelCost::new(flops, flops / 4.0),
        )
    }

    fn two_devices() -> Vec<Device> {
        vec![
            Device::new(DeviceProps::p100()),
            Device::new(DeviceProps::p100()),
        ]
    }

    fn handles(devs: &mut [Device]) -> Vec<&mut Device> {
        devs.iter_mut().collect()
    }

    #[test]
    fn simple_copy_completes_and_orders_consumer() {
        let mut devs = two_devices();
        let s0 = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let mut fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let mut h = handles(&mut devs);
        let id = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new(
                    "p2p",
                    (0, s0, mem("src", 1 << 20)),
                    (1, s1, mem("dst", 1 << 20)),
                ),
            )
            .unwrap();
        // Consumer kernel on the destination stream must start after the
        // copy lands.
        let k = h[1].launch(s1, kernel("consume", 8, 1.0e6));
        fab.run(&mut h);
        let (c_start, c_end) = fab.copy_span(id).unwrap();
        let (k_start, _) = h[1].kernel_span(k).unwrap();
        assert!(c_end > c_start);
        assert!(
            k_start >= c_end,
            "consumer started at {k_start} before copy landed at {c_end}"
        );
        // The copy shows in the source device's trace like a kernel.
        assert!(h[0].trace().iter().any(|t| t.name == "p2p"));
    }

    #[test]
    fn copy_duration_follows_link_bandwidth() {
        let span_for = |link: LinkProps| {
            let mut devs = two_devices();
            let s0 = devs[0].create_stream();
            let s1 = devs[1].create_stream();
            let mut fab = Fabric::fully_connected(2, link);
            let mut h = handles(&mut devs);
            let id = fab
                .copy_p2p(
                    &mut h,
                    CopyDesc::new(
                        "p2p",
                        (0, s0, mem("src", 64 << 20)),
                        (1, s1, mem("dst", 64 << 20)),
                    ),
                )
                .unwrap();
            fab.run(&mut h);
            let (s, e) = fab.copy_span(id).unwrap();
            e - s
        };
        let pcie = span_for(LinkProps::pcie3());
        let nvl = span_for(LinkProps::nvlink());
        assert!(
            pcie > nvl * 2,
            "PCIe transfer ({pcie} ns) should be ≫ NVLink ({nvl} ns)"
        );
    }

    #[test]
    fn same_link_copies_serialize_different_links_overlap() {
        // Two big copies 0→1 on the same link serialize; the reverse
        // direction is a different link and may overlap.
        let mut devs = two_devices();
        let s0a = devs[0].create_stream();
        let s0b = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let s1b = devs[1].create_stream();
        let s1c = devs[1].create_stream();
        let mut fab = Fabric::fully_connected(2, LinkProps::pcie3());
        let mut h = handles(&mut devs);
        let a = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new(
                    "a",
                    (0, s0a, mem("a.src", 32 << 20)),
                    (1, s1, mem("a.dst", 32 << 20)),
                ),
            )
            .unwrap();
        let b = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new(
                    "b",
                    (0, s0b, mem("b.src", 32 << 20)),
                    (1, s1b, mem("b.dst", 32 << 20)),
                ),
            )
            .unwrap();
        let c = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new(
                    "c",
                    (1, s1c, mem("c.src", 32 << 20)),
                    (0, s0b, mem("c.dst", 32 << 20)),
                ),
            )
            .unwrap();
        fab.run(&mut h);
        let (a_s, a_e) = fab.copy_span(a).unwrap();
        let (b_s, b_e) = fab.copy_span(b).unwrap();
        let (c_s, c_e) = fab.copy_span(c).unwrap();
        let overlap = |x: (SimTime, SimTime), y: (SimTime, SimTime)| {
            x.1.min(y.1).saturating_sub(x.0.max(y.0))
        };
        assert_eq!(
            overlap((a_s, a_e), (b_s, b_e)),
            0,
            "same-link transfers must serialize: a={a_s}-{a_e} b={b_s}-{b_e}"
        );
        assert!(
            overlap((a_s, a_e), (c_s, c_e)) > 0 || overlap((b_s, b_e), (c_s, c_e)) > 0,
            "reverse-direction transfer should overlap: c={c_s}-{c_e}"
        );
    }

    #[test]
    fn typed_errors_for_misuse() {
        let mut devs = two_devices();
        let s0 = devs[0].create_stream();
        let mut fab = Fabric::new(2); // no links
        let mut h = handles(&mut devs);
        // Self copy.
        let err = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new("x", (0, s0, mem("a", 8)), (0, s0, mem("b", 8))),
            )
            .unwrap_err();
        assert_eq!(err, FabricError::SelfCopy { device: 0 });
        // Unconnected devices.
        let err = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new("x", (0, s0, mem("a", 8)), (1, StreamId(0), mem("b", 8))),
            )
            .unwrap_err();
        assert_eq!(err, FabricError::NotConnected { src: 0, dst: 1 });
        // Stream created on device 0 does not exist on device 1.
        fab.connect(0, 1, LinkProps::pcie3()).unwrap();
        let err = fab
            .copy_p2p(
                &mut h,
                CopyDesc::new("x", (0, s0, mem("a", 8)), (1, s0, mem("b", 8))),
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::UnknownStream { device: 1, .. }));
        let err = fab
            .launch_on(&mut h, 1, s0, kernel("k", 1, 1.0e5))
            .unwrap_err();
        assert!(matches!(err, FabricError::UnknownStream { device: 1, .. }));
        // Unknown device index.
        let err = fab
            .launch_on(&mut h, 7, StreamId(0), kernel("k", 1, 1.0e5))
            .unwrap_err();
        assert!(matches!(err, FabricError::UnknownDevice { device: 7, .. }));
        assert!(err.to_string().contains("unknown device 7"));
        // connect() validates too.
        assert!(matches!(
            Fabric::new(2).connect(0, 5, LinkProps::pcie3()),
            Err(FabricError::UnknownDevice { device: 5, .. })
        ));
        assert!(matches!(
            Fabric::new(2).connect(1, 1, LinkProps::pcie3()),
            Err(FabricError::SelfCopy { device: 1 })
        ));
    }

    #[test]
    fn jitter_perturbs_timing_deterministically() {
        let run_with_seed = |seed: u64| {
            let mut devs = two_devices();
            let s0 = devs[0].create_stream();
            let s1 = devs[1].create_stream();
            let mut fab = Fabric::fully_connected(2, LinkProps::pcie3().with_jitter(10_000));
            fab.set_jitter_seed(seed);
            let mut h = handles(&mut devs);
            let id = fab
                .copy_p2p(
                    &mut h,
                    CopyDesc::new(
                        "p2p",
                        (0, s0, mem("src", 1 << 20)),
                        (1, s1, mem("dst", 1 << 20)),
                    ),
                )
                .unwrap();
            fab.run(&mut h);
            fab.copy_span(id).unwrap()
        };
        assert_eq!(run_with_seed(1), run_with_seed(1), "same seed, same timing");
        assert_ne!(
            run_with_seed(1),
            run_with_seed(2),
            "jitter responds to seed"
        );
    }

    #[test]
    fn merged_timeline_offsets_streams_per_device() {
        let mut devs = two_devices();
        let s0 = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let mut fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let mut h = handles(&mut devs);
        h[0].launch(s0, kernel("a", 8, 1.0e6));
        h[1].launch(s1, kernel("b", 8, 1.0e6));
        fab.run(&mut h);
        let views: Vec<&Device> = devs.iter().collect();
        let tl = fab.merged_timeline(&views);
        assert_eq!(tl.len(), 2);
        let ascii = tl.render_ascii(40);
        // Device 1's stream 1 renders offset by device 0's stream count.
        assert!(ascii.contains("stream  1"), "{ascii}");
        assert!(ascii.contains("stream  3"), "{ascii}");
        let stats = fab.stats(&views);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].kernels_completed, 1);
    }

    #[test]
    fn fabric_spec_builds_matching_devices_and_links() {
        let spec = FabricSpec::uniform("u4", 4, DeviceProps::p100(), LinkProps::nvlink());
        assert_eq!(spec.num_slots(), 4);
        let devs = spec.spawn_devices();
        assert_eq!(devs.len(), 4);
        let fab = spec.build_fabric();
        assert_eq!(fab.num_devices(), 4);
        // Fully connected: every ordered pair linked.
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(fab.link(a, b).is_some(), a != b, "link {a}->{b}");
            }
        }

        let hetero = FabricSpec::heterogeneous(
            "h3",
            vec![
                DeviceProps::k40c(),
                DeviceProps::p100(),
                DeviceProps::titan_xp(),
            ],
            LinkProps::pcie3(),
        )
        .with_topology(FabricTopology::Ring);
        assert_eq!(hetero.slot(0).name, DeviceProps::k40c().name);
        assert!(hetero.slot_peak_flops(1) > hetero.slot_peak_flops(0));
        let ring = hetero.build_fabric();
        assert!(ring.link(0, 1).is_some());
        assert!(ring.link(1, 2).is_some());
        assert!(ring.link(2, 0).is_some());
        // Ring of 3 happens to be fully connected; a ring of 4 is not.
        let ring4 = FabricSpec::uniform("r4", 4, DeviceProps::p100(), LinkProps::nvlink())
            .with_topology(FabricTopology::Ring)
            .build_fabric();
        assert!(ring4.link(0, 1).is_some());
        assert!(ring4.link(0, 2).is_none());
    }

    #[test]
    fn per_device_run_is_unchanged_without_copies() {
        // Fabric::run over independent devices == Device::run per device.
        let mut a = Device::new(DeviceProps::p100());
        let s = a.create_stream();
        a.launch(s, kernel("k", 16, 2.0e6));
        let solo = a.run();

        let mut devs = two_devices();
        let s0 = devs[0].create_stream();
        devs[0].launch(s0, kernel("k", 16, 2.0e6));
        let mut fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let mut h = handles(&mut devs);
        let end = fab.run(&mut h);
        assert_eq!(end, solo);
    }
}
