//! Kernel execution traces and timeline rendering.
//!
//! Each completed kernel leaves a [`KernelTrace`] carrying what CUPTI's
//! activity API would report: name, stream, launch configuration, and
//! launch/start/end timestamps. [`Timeline`] renders a set of traces as an
//! ASCII Gantt chart (one row per stream), reproducing the paper's Fig. 3
//! ("Timeline of kernels in the conv1 layer with multiple CUDA streams"),
//! or as CSV for external plotting.

use crate::kernel::{KernelDesc, KernelId, LaunchConfig};
use crate::stream::StreamId;
use crate::SimTime;
use std::fmt::Write as _;

/// One completed kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Kernel instance id (launch order).
    pub id: KernelId,
    /// Kernel name (`im2col`, `sgemm`, ...).
    pub name: String,
    /// Stream the kernel ran in.
    pub stream: StreamId,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Caller-provided correlation tag.
    pub tag: u64,
    /// Host time the launch call was issued (ns).
    pub launch_ns: SimTime,
    /// First block start (ns).
    pub start_ns: SimTime,
    /// Last block retirement (ns).
    pub end_ns: SimTime,
}

impl KernelTrace {
    pub(crate) fn from_runtime(
        id: KernelId,
        desc: &KernelDesc,
        stream: StreamId,
        launch_ns: SimTime,
        start_ns: SimTime,
        end_ns: SimTime,
    ) -> Self {
        KernelTrace {
            id,
            name: desc.name.clone(),
            stream,
            launch: desc.launch,
            tag: desc.tag,
            launch_ns,
            start_ns,
            end_ns,
        }
    }

    /// Execution duration (ns).
    pub fn duration_ns(&self) -> SimTime {
        self.end_ns - self.start_ns
    }
}

/// A renderable set of kernel traces.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    traces: Vec<KernelTrace>,
}

impl Timeline {
    /// Build a timeline from traces (e.g. a slice of
    /// [`crate::Device::trace`]).
    pub fn new(traces: &[KernelTrace]) -> Self {
        Timeline {
            traces: traces.to_vec(),
        }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the timeline holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total wall span covered (max end − min start), in ns.
    pub fn span_ns(&self) -> SimTime {
        let lo = self.traces.iter().map(|t| t.start_ns).min().unwrap_or(0);
        let hi = self.traces.iter().map(|t| t.end_ns).max().unwrap_or(0);
        hi - lo
    }

    /// Render an ASCII Gantt chart: one row per stream, `width` columns.
    ///
    /// Bars are drawn with the first letter of the kernel name; overlap
    /// between rows is visible as bars sharing columns.
    pub fn render_ascii(&self, width: usize) -> String {
        if self.traces.is_empty() {
            return "(empty timeline)\n".to_string();
        }
        let lo = self.traces.iter().map(|t| t.start_ns).min().unwrap();
        let hi = self.traces.iter().map(|t| t.end_ns).max().unwrap();
        let span = (hi - lo).max(1) as f64;
        let mut streams: Vec<StreamId> = self.traces.iter().map(|t| t.stream).collect();
        streams.sort();
        streams.dedup();

        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {} kernels over {:.3} ms",
            self.traces.len(),
            span / 1e6
        );
        for sid in streams {
            let mut row = vec![b'.'; width];
            for t in self.traces.iter().filter(|t| t.stream == sid) {
                let a = (((t.start_ns - lo) as f64 / span) * width as f64) as usize;
                let b = (((t.end_ns - lo) as f64 / span) * width as f64).ceil() as usize;
                let ch = t.name.bytes().next().unwrap_or(b'#');
                for c in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *c = ch;
                }
            }
            let _ = writeln!(
                out,
                "stream {:>2} |{}|",
                sid.raw(),
                String::from_utf8_lossy(&row)
            );
        }
        out
    }

    /// Render as CSV: `id,name,stream,tag,launch_ns,start_ns,end_ns`.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("id,name,stream,tag,launch_ns,start_ns,end_ns\n");
        for t in &self.traces {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                t.id.raw(),
                t.name,
                t.stream.raw(),
                t.tag,
                t.launch_ns,
                t.start_ns,
                t.end_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Dim3, KernelCost};

    fn trace(name: &str, stream: u32, start: SimTime, end: SimTime) -> KernelTrace {
        let desc = KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(4), Dim3::linear(64), 16, 0),
            KernelCost::new(1.0, 1.0),
        );
        KernelTrace::from_runtime(
            KernelId(0),
            &desc,
            StreamId(stream),
            start.saturating_sub(10),
            start,
            end,
        )
    }

    #[test]
    fn span_and_duration() {
        let t = Timeline::new(&[trace("a", 1, 100, 300), trace("b", 2, 200, 500)]);
        assert_eq!(t.span_ns(), 400);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(trace("a", 1, 100, 300).duration_ns(), 200);
    }

    #[test]
    fn ascii_has_one_row_per_stream() {
        let t = Timeline::new(&[
            trace("im2col", 1, 0, 100),
            trace("sgemm", 1, 100, 300),
            trace("im2col", 2, 0, 120),
        ]);
        let s = t.render_ascii(40);
        assert_eq!(s.lines().count(), 3); // header + 2 stream rows
        assert!(s.contains("stream  1"));
        assert!(s.contains("stream  2"));
        assert!(s.contains('i')); // im2col bars
        assert!(s.contains('s')); // sgemm bars
    }

    #[test]
    fn empty_timeline_renders() {
        let t = Timeline::default();
        assert!(t.is_empty());
        assert_eq!(t.span_ns(), 0);
        assert!(t.render_ascii(10).contains("empty"));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let t = Timeline::new(&[trace("k", 3, 50, 90)]);
        let csv = t.render_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "id,name,stream,tag,launch_ns,start_ns,end_ns"
        );
        let row = lines.next().unwrap();
        assert!(row.contains(",k,3,0,40,50,90"));
    }
}
