//! DRAM bandwidth contention model.
//!
//! Every resident block carries a nominal bandwidth demand (bytes it moves
//! divided by its uncontended duration). When the sum of demands across the
//! device exceeds peak bandwidth, newly placed blocks are slowed by the
//! over-subscription factor. The factor is fixed at block start (durations
//! of already-running blocks are not retroactively stretched) — a standard
//! DES simplification that keeps the event count linear in blocks while
//! still making over-parallelization unprofitable, which is the behaviour
//! GLP4NN's analytical model must reproduce / avoid.

use crate::device::DeviceProps;

/// Tracks aggregate bandwidth demand of currently-executing blocks.
#[derive(Debug, Clone)]
pub struct BandwidthTracker {
    peak_bytes_per_s: f64,
    demand_bytes_per_s: f64,
}

impl BandwidthTracker {
    /// Tracker for a device's peak DRAM bandwidth.
    pub fn new(dev: &DeviceProps) -> Self {
        BandwidthTracker {
            peak_bytes_per_s: dev.mem_bw_gbps * 1e9,
            demand_bytes_per_s: 0.0,
        }
    }

    /// Register a block's demand; returns the slowdown factor (≥ 1) to apply
    /// to that block's nominal duration.
    pub fn place(&mut self, demand: f64) -> f64 {
        self.demand_bytes_per_s += demand;
        self.factor()
    }

    /// Remove a retired block's demand.
    pub fn retire(&mut self, demand: f64) {
        self.demand_bytes_per_s = (self.demand_bytes_per_s - demand).max(0.0);
    }

    /// Current over-subscription factor (1.0 when demand ≤ peak).
    pub fn factor(&self) -> f64 {
        if self.demand_bytes_per_s <= self.peak_bytes_per_s {
            1.0
        } else {
            self.demand_bytes_per_s / self.peak_bytes_per_s
        }
    }

    /// Current aggregate demand in bytes/s.
    pub fn demand(&self) -> f64 {
        self.demand_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_slowdown_under_subscription() {
        let dev = DeviceProps::p100(); // 549 GB/s
        let mut t = BandwidthTracker::new(&dev);
        assert_eq!(t.place(100.0e9), 1.0);
        assert_eq!(t.place(200.0e9), 1.0);
        assert!((t.demand() - 300.0e9).abs() < 1.0);
    }

    #[test]
    fn slowdown_proportional_to_oversubscription() {
        let dev = DeviceProps::p100();
        let mut t = BandwidthTracker::new(&dev);
        t.place(549.0e9);
        let f = t.place(549.0e9); // 2x peak
        assert!((f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn retire_restores_capacity() {
        let dev = DeviceProps::k40c(); // 288 GB/s
        let mut t = BandwidthTracker::new(&dev);
        t.place(288.0e9);
        t.place(288.0e9);
        t.retire(288.0e9);
        assert!((t.factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retire_never_goes_negative() {
        let dev = DeviceProps::k40c();
        let mut t = BandwidthTracker::new(&dev);
        t.place(1.0e9);
        t.retire(5.0e9);
        assert!(t.demand() >= 0.0);
        assert_eq!(t.factor(), 1.0);
    }
}
