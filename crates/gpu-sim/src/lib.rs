#![warn(missing_docs)]

//! A block-granularity discrete-event simulator of an NVIDIA-style GPU.
//!
//! This crate is the hardware substitute for the physical GPUs (Tesla K40C,
//! Tesla P100, Titan XP) the GLP4NN paper evaluates on. It models exactly
//! the mechanisms GLP4NN exploits:
//!
//! - **Streams** ([`stream`]): in-order command FIFOs. Kernels in one stream
//!   serialize; kernels in different streams may execute concurrently.
//! - **Concurrent kernel execution** up to the device's hardware concurrency
//!   degree `C` (Table 1 of the paper: 32 on Kepler, 128 on Pascal).
//! - **SM-level resource occupancy** ([`sm`], [`occupancy`]): thread blocks
//!   are placed onto streaming multiprocessors subject to per-SM limits on
//!   threads, resident blocks, shared memory and registers — the constraints
//!   of the paper's analytical model (Eqs. 4-7).
//! - **Kernel launch overhead**: a single host dispatcher thread issues
//!   launches serially, each costing `T_launch`; a kernel cannot start
//!   before its launch is issued. This is what makes the paper's
//!   `⌈T_K / T_launch⌉` cap (Eq. 7) meaningful.
//! - **DRAM bandwidth contention** ([`contention`]): block durations stretch
//!   when the aggregate bandwidth demand of co-resident blocks exceeds the
//!   device's memory bandwidth, so over-subscription stops paying off.
//! - **Timelines** ([`timeline`]): per-kernel launch/start/end traces that
//!   reproduce the paper's Fig. 3, and utilization statistics ([`stats`]).
//!
//! Simulated time is in nanoseconds. The simulator is deterministic: the
//! same command sequence always yields the same timeline.
//!
//! # Quick example
//!
//! ```
//! use gpu_sim::{Device, DeviceProps, KernelDesc, LaunchConfig, KernelCost, Dim3};
//!
//! let mut dev = Device::new(DeviceProps::p100());
//! let s = dev.create_stream();
//! let k = KernelDesc::new(
//!     "sgemm",
//!     LaunchConfig::new(Dim3::linear(64), Dim3::linear(128), 32, 4096),
//!     KernelCost::new(2.0e6, 1.5e5),
//! );
//! dev.launch(s, k);
//! let end = dev.run();
//! assert!(end > 0);
//! assert_eq!(dev.trace().len(), 1);
//! ```

pub mod contention;
pub mod device;
pub mod engine;
pub mod fabric;
pub mod kernel;
pub mod occupancy;
pub mod sm;
pub mod stats;
pub mod stream;
pub mod timeline;

pub use device::{Arch, ArchFeatures, DeviceProps};
pub use engine::{Device, LaunchHook};
pub use fabric::{CopyDesc, Fabric, FabricError, FabricSpec, FabricTopology, LinkProps};
pub use kernel::{
    AccessConflict, AccessSet, BufferId, ByteRange, Dim3, KernelCost, KernelDesc, KernelId,
    LaunchConfig, MemAccess,
};
pub use occupancy::OccupancyResult;
pub use stats::{stats_by_kernel, DeviceStats, KernelClassStats};
pub use stream::{CmdRecord, CopyId, EventId, StreamId};
pub use timeline::{KernelTrace, Timeline};

/// Simulated time in nanoseconds.
pub type SimTime = u64;
