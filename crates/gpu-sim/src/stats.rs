//! Device utilization statistics.

use crate::device::DeviceProps;
use crate::sm::SmState;
use crate::timeline::KernelTrace;
use crate::SimTime;

/// Aggregate utilization over a simulated interval.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Total simulated time covered (ns).
    pub elapsed_ns: SimTime,
    /// Kernels completed.
    pub kernels_completed: usize,
    /// Time-weighted average occupancy: mean over SMs of
    /// (warp-time integral) / (max warps × elapsed). This is the paper's
    /// `OR_SM` (Eq. 1) averaged over time and SMs.
    pub avg_occupancy: f64,
    /// Sum of kernel durations (ns) — exceeds `elapsed_ns` when kernels
    /// overlap, so `parallel_efficiency > 1` indicates real concurrency.
    pub total_kernel_time_ns: SimTime,
}

impl DeviceStats {
    pub(crate) fn from_parts(
        props: &DeviceProps,
        sms: &[SmState],
        trace: &[KernelTrace],
        now: SimTime,
    ) -> Self {
        let max_warps = props.max_warps_per_sm() as u128;
        let mut occ_sum = 0.0;
        for sm in sms {
            // Include the un-integrated residual at `now` (idle SMs add 0).
            let warps_now = sm.threads_used.div_ceil(props.warp_size) as u128;
            let integral = sm.warp_time_integral + warps_now * (now - sm.last_change) as u128;
            if now > 0 {
                occ_sum += integral as f64 / (max_warps * now as u128) as f64;
            }
        }
        let avg_occupancy = if sms.is_empty() {
            0.0
        } else {
            occ_sum / sms.len() as f64
        };
        DeviceStats {
            elapsed_ns: now,
            kernels_completed: trace.len(),
            avg_occupancy,
            total_kernel_time_ns: trace.iter().map(|t| t.duration_ns()).sum(),
        }
    }

    /// Ratio of summed kernel time to wall time; > 1 means kernels ran
    /// concurrently.
    pub fn parallel_efficiency(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_kernel_time_ns as f64 / self.elapsed_ns as f64
    }
}

/// Aggregate statistics for one kernel class (same name), as a profiler
/// summary view would report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelClassStats {
    /// Kernel name.
    pub name: String,
    /// Number of instances executed.
    pub count: usize,
    /// Total execution time across instances (ns).
    pub total_ns: SimTime,
    /// Minimum instance duration (ns).
    pub min_ns: SimTime,
    /// Maximum instance duration (ns).
    pub max_ns: SimTime,
}

impl KernelClassStats {
    /// Mean instance duration (ns).
    pub fn avg_ns(&self) -> SimTime {
        self.total_ns / self.count as u64
    }
}

/// Summarize a trace by kernel name, in first-seen order.
pub fn stats_by_kernel(trace: &[KernelTrace]) -> Vec<KernelClassStats> {
    let mut order: Vec<String> = Vec::new();
    let mut map: std::collections::HashMap<String, KernelClassStats> =
        std::collections::HashMap::new();
    for t in trace {
        let d = t.duration_ns();
        match map.get_mut(&t.name) {
            None => {
                order.push(t.name.clone());
                map.insert(
                    t.name.clone(),
                    KernelClassStats {
                        name: t.name.clone(),
                        count: 1,
                        total_ns: d,
                        min_ns: d,
                        max_ns: d,
                    },
                );
            }
            Some(s) => {
                s.count += 1;
                s.total_ns += d;
                s.min_ns = s.min_ns.min(d);
                s.max_ns = s.max_ns.max(d);
            }
        }
    }
    order
        .into_iter()
        .map(|n| map.remove(&n).expect("name collected"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Device;
    use crate::kernel::{Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn kernel(blocks: u32, threads: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            "k",
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(threads), 16, 0),
            KernelCost::new(flops, flops / 8.0),
        )
    }

    #[test]
    fn idle_device_has_zero_stats() {
        let dev = Device::new(DeviceProps::p100());
        let s = dev.stats();
        assert_eq!(s.kernels_completed, 0);
        assert_eq!(s.elapsed_ns, 0);
        assert_eq!(s.parallel_efficiency(), 0.0);
    }

    #[test]
    fn occupancy_increases_with_concurrency() {
        let serial = {
            let mut dev = Device::new(DeviceProps::p100());
            let s = dev.create_stream();
            for _ in 0..4 {
                dev.launch(s, kernel(28, 512, 1.0e8));
            }
            dev.run();
            dev.stats()
        };
        let parallel = {
            let mut dev = Device::new(DeviceProps::p100());
            let streams: Vec<_> = (0..4).map(|_| dev.create_stream()).collect();
            for (i, &st) in streams.iter().enumerate() {
                let _ = i;
                dev.launch(st, kernel(28, 512, 1.0e8));
            }
            dev.run();
            dev.stats()
        };
        assert!(
            parallel.avg_occupancy > serial.avg_occupancy,
            "parallel {} vs serial {}",
            parallel.avg_occupancy,
            serial.avg_occupancy
        );
        assert!(parallel.parallel_efficiency() > serial.parallel_efficiency());
    }

    #[test]
    fn kernel_counts_match_trace() {
        let mut dev = Device::new(DeviceProps::k40c());
        let s = dev.create_stream();
        for _ in 0..3 {
            dev.launch(s, kernel(8, 128, 1.0e6));
        }
        dev.run();
        assert_eq!(dev.stats().kernels_completed, 3);
    }

    #[test]
    fn per_class_summary_aggregates_by_name() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        for i in 0..4u32 {
            let mut k = kernel(8, 128, 1.0e6 * (i + 1) as f64);
            k.name = if i % 2 == 0 { "a".into() } else { "b".into() };
            dev.launch(s, k);
        }
        dev.run();
        let classes = stats_by_kernel(dev.trace());
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "a");
        assert_eq!(classes[0].count, 2);
        assert_eq!(classes[1].count, 2);
        assert!(classes[0].min_ns <= classes[0].max_ns);
        assert!(classes[0].avg_ns() >= classes[0].min_ns);
        assert!(classes[1].max_ns > classes[0].min_ns); // bigger flops -> longer
    }

    #[test]
    fn empty_trace_summary_is_empty() {
        assert!(stats_by_kernel(&[]).is_empty());
    }
}
