//! The discrete-event simulation core.
//!
//! Execution model:
//!
//! 1. The host enqueues commands ([`Device::launch`], [`Device::record_event`],
//!    [`Device::wait_event`]) into streams. A single host dispatcher thread
//!    issues launches serially — each launch call advances the host clock by
//!    `T_launch` (GLP4NN deliberately uses one dispatch thread instead of a
//!    thread per stream; the launch-rate limit this creates is captured by
//!    Eq. 7 of the paper).
//! 2. [`Device::run`] plays the simulation forward until all streams drain.
//!    A kernel becomes *ready* when it reaches the front of its stream and
//!    its launch has been issued; ready kernels become *active* as hardware
//!    concurrency slots (at most `C` of them, Table 1) free up.
//! 3. Active kernels issue thread blocks onto SMs in round-robin bursts:
//!    every placement takes as many blocks as currently fit under the SM's
//!    thread/block/shared-memory/register limits. Burst duration follows
//!    the kernel's roofline cost stretched by the DRAM contention factor at
//!    placement time.
//! 4. When a kernel's last block retires the kernel completes, its stream
//!    advances (possibly completing events and unblocking waiters), and a
//!    pending kernel takes its concurrency slot.
//!
//! The simulation is fully deterministic.

use crate::contention::BandwidthTracker;
use crate::device::DeviceProps;
use crate::kernel::{KernelDesc, KernelId};
use crate::sm::{BlockFootprint, SmState};
use crate::stats::DeviceStats;
use crate::stream::{CmdRecord, Command, CopyId, EventId, EventState, StreamId, StreamState};
use crate::timeline::KernelTrace;
use crate::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use telemetry::{RecorderSlot, SharedRecorder};

/// Kernel lifecycle inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KState {
    /// Still queued behind other commands in its stream.
    Queued,
    /// At stream front but its host launch has not been issued yet.
    WaitingHost,
    /// Ready to execute, waiting for a hardware concurrency slot.
    Pending,
    /// Holding a concurrency slot, issuing/executing blocks.
    Active,
    /// All blocks retired.
    Done,
}

#[derive(Debug)]
struct KernelRuntime {
    desc: Arc<KernelDesc>,
    stream: StreamId,
    /// Host time at which the launch call completed.
    launch_issued: SimTime,
    blocks_total: u64,
    blocks_issued: u64,
    blocks_done: u64,
    start: Option<SimTime>,
    end: Option<SimTime>,
    state: KState,
    footprint: BlockFootprint,
    nominal_block_ns: SimTime,
    bw_demand: f64,
}

/// Heap events.
#[derive(Debug, PartialEq, Eq)]
enum EvKind {
    /// `count` blocks of a kernel finish on an SM.
    BurstDone {
        kernel: KernelId,
        sm: usize,
        count: u64,
        demand_milli: u64,
    },
    /// A host launch time arrives for a kernel at its stream front.
    HostReady(KernelId),
    /// The host issue time of a copy's source half arrives.
    CopyHostReady(CopyId),
    /// An outbound copy's transfer completed; its source stream unparks.
    CopyDone(CopyId),
    /// An inbound copy landed on this device; a waiting `CopyDst` unblocks.
    CopyArrived(CopyId),
}

/// Source-side runtime state of a copy on its sending device.
#[derive(Debug)]
struct CopySrcState {
    stream: StreamId,
    /// Host time at which the enqueue call completed (launch overhead).
    issued: SimTime,
    /// A `CopyHostReady` wake-up has been scheduled.
    notified: bool,
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Synchronous launch-interception hook (the driver-API callback site a
/// CUPTI-style callback API subscribes to). Invoked inside
/// [`Device::launch`] with the descriptor, target stream, and the host
/// time at which the launch call completed.
pub type LaunchHook = Box<dyn FnMut(&KernelDesc, StreamId, SimTime)>;

/// A simulated GPU device.
///
/// See the [crate-level docs](crate) for the execution model.
pub struct Device {
    props: DeviceProps,
    clock: SimTime,
    host_clock: SimTime,
    launch_hook: Option<LaunchHook>,
    streams: Vec<StreamState>,
    events: Vec<EventState>,
    event_waiters: Vec<Vec<StreamId>>,
    kernels: Vec<KernelRuntime>,
    sms: Vec<SmState>,
    bw: BandwidthTracker,
    /// Kernels holding a concurrency slot.
    active: Vec<KernelId>,
    /// Ready kernels waiting for a slot (FIFO).
    pending: VecDeque<KernelId>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    trace: Vec<KernelTrace>,
    cmd_log: Vec<CmdRecord>,
    /// Reusable per-SM block-placement scratch (avoids a heap allocation
    /// per dispatch pass).
    scratch_per_sm: Vec<u64>,
    /// Source-side state of copies enqueued on this device.
    copy_src: HashMap<u64, CopySrcState>,
    /// Copies whose source half reached its stream front, awaiting link
    /// scheduling by the fabric: `(copy, ready time)`.
    copy_ready: Vec<(CopyId, SimTime)>,
    /// Inbound copies that have landed: copy → arrival time.
    copy_arrived: HashMap<u64, SimTime>,
    /// Streams blocked at a `CopyDst` front, waiting for the transfer.
    copy_waiters: HashMap<u64, StreamId>,
    /// Optional telemetry recorder (kernel spans, event-dep flow arrows).
    /// Empty slot = zero-cost off-path: no recording, no allocation, no
    /// behavioural difference.
    telemetry: RecorderSlot,
    /// Chrome-trace process id used when telemetry is attached.
    telemetry_pid: u32,
    /// Recording stream and completion time per event, kept **only** while
    /// telemetry is attached (feeds dependency flow arrows).
    event_src: HashMap<u64, (StreamId, SimTime)>,
}

impl Device {
    /// Create a device with its default stream (stream 0).
    pub fn new(props: DeviceProps) -> Self {
        let sms = vec![SmState::new(); props.num_sms as usize];
        let bw = BandwidthTracker::new(&props);
        Device {
            props,
            clock: 0,
            host_clock: 0,
            launch_hook: None,
            streams: vec![StreamState::default()],
            events: Vec::new(),
            event_waiters: Vec::new(),
            kernels: Vec::new(),
            sms,
            bw,
            active: Vec::new(),
            pending: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            trace: Vec::new(),
            cmd_log: Vec::new(),
            scratch_per_sm: Vec::new(),
            copy_src: HashMap::new(),
            copy_ready: Vec::new(),
            copy_arrived: HashMap::new(),
            copy_waiters: HashMap::new(),
            telemetry: RecorderSlot::empty(),
            telemetry_pid: 0,
            event_src: HashMap::new(),
        }
    }

    /// Device properties.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Install a synchronous launch-interception hook (at most one; the
    /// CUPTI-style callback API multiplexes its own subscribers on top).
    pub fn set_launch_hook(&mut self, hook: LaunchHook) {
        self.launch_hook = Some(hook);
    }

    /// Remove the launch hook.
    pub fn clear_launch_hook(&mut self) {
        self.launch_hook = None;
    }

    /// Attach a telemetry recorder. `pid` is the Chrome-trace process id
    /// this device reports under (its fabric/device index by convention;
    /// streams are the tids). Recording is observation-only: it never
    /// creates streams or events, advances a clock, or changes how work
    /// is scheduled, so timelines are identical with or without it.
    pub fn set_telemetry(&mut self, rec: SharedRecorder, pid: u32) {
        self.telemetry.attach(rec);
        self.telemetry_pid = pid;
    }

    /// Detach the telemetry recorder, returning to the zero-cost off-path.
    pub fn clear_telemetry(&mut self) {
        self.telemetry.clear();
        self.event_src.clear();
    }

    /// The attached telemetry recorder, if any (host-side layers — plan
    /// capture, profiling — reuse the device's handle rather than
    /// threading their own).
    pub fn telemetry(&self) -> Option<&SharedRecorder> {
        self.telemetry.get()
    }

    /// The Chrome-trace process id this device reports under.
    pub fn telemetry_pid(&self) -> u32 {
        self.telemetry_pid
    }

    /// Register this device's process/thread names (`gpuN`, `stream K`,
    /// `host`) with a concrete [`telemetry::Telemetry`] so the exported
    /// trace is labelled. Call once after the run, before export.
    pub fn annotate_telemetry(&self, t: &mut telemetry::Telemetry) {
        let pid = self.telemetry_pid;
        t.set_process_name(pid, &format!("gpu{pid}"));
        for s in 0..self.streams.len() {
            let name = if s == 0 {
                "stream 0 (default)".to_string()
            } else {
                format!("stream {s}")
            };
            t.set_thread_name(pid, s as u64, &name);
        }
        t.set_thread_name(pid, telemetry::HOST_TID, "host");
    }

    /// Current simulated device time (ns).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Create a new (non-default) stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(StreamState::default());
        StreamId((self.streams.len() - 1) as u32)
    }

    /// The default stream.
    pub fn default_stream(&self) -> StreamId {
        StreamId::DEFAULT
    }

    /// Number of streams (including the default stream).
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Enqueue a kernel launch on `stream`. The host clock advances by the
    /// launch overhead; the kernel cannot start before that point.
    ///
    /// # Panics
    /// Panics if the grid or block is empty, the block exceeds the device's
    /// max threads per block, or one block cannot fit on an empty SM.
    pub fn launch(&mut self, stream: StreamId, desc: KernelDesc) -> KernelId {
        self.launch_shared(stream, Arc::new(desc))
    }

    /// Like [`launch`](Device::launch) but takes a shared descriptor, so a
    /// replayed execution plan can re-issue the same kernel many times
    /// without cloning the descriptor (name, access sets) per launch.
    pub fn launch_shared(&mut self, stream: StreamId, desc: Arc<KernelDesc>) -> KernelId {
        assert!(desc.launch.num_blocks() > 0, "empty grid");
        let tpb = desc.launch.threads_per_block();
        assert!(tpb > 0, "empty block");
        assert!(
            tpb <= self.props.max_threads_per_block,
            "block of {} threads exceeds device limit {}",
            tpb,
            self.props.max_threads_per_block
        );
        let footprint = BlockFootprint::of(&self.props, &desc.launch);
        assert!(
            SmState::new().fits(&self.props, &footprint),
            "kernel {} block does not fit on an empty SM",
            desc.name
        );

        // Host launch serialization: the dispatcher cannot issue before the
        // device-side present either (enqueue happens in host real time,
        // which we pin to the device clock at enqueue).
        self.host_clock = self.host_clock.max(self.clock) + self.props.launch_overhead_ns;
        let id = KernelId(self.kernels.len() as u64);
        let nominal = desc.cost.nominal_block_time_ns(&self.props, tpb);
        let demand = desc.cost.bandwidth_demand(&self.props, tpb);
        self.kernels.push(KernelRuntime {
            blocks_total: desc.launch.num_blocks(),
            blocks_issued: 0,
            blocks_done: 0,
            start: None,
            end: None,
            state: KState::Queued,
            stream,
            launch_issued: self.host_clock,
            footprint,
            nominal_block_ns: nominal,
            bw_demand: demand,
            desc,
        });
        if let Some(hook) = self.launch_hook.as_mut() {
            hook(
                self.kernels[id.0 as usize].desc.as_ref(),
                stream,
                self.host_clock,
            );
        }
        self.cmd_log.push(CmdRecord::Launch { stream, kernel: id });
        self.streams[stream.0 as usize]
            .queue
            .push_back(Command::Launch(id));
        id
    }

    /// Create an event (not yet recorded).
    pub fn create_event(&mut self) -> EventId {
        self.events.push(EventState::Created);
        self.event_waiters.push(Vec::new());
        EventId((self.events.len() - 1) as u64)
    }

    /// Record `event` into `stream`: it completes when all prior work in
    /// the stream completes.
    pub fn record_event(&mut self, stream: StreamId, event: EventId) {
        self.events[event.0 as usize] = EventState::Pending;
        self.cmd_log.push(CmdRecord::RecordEvent { stream, event });
        self.streams[stream.0 as usize]
            .queue
            .push_back(Command::RecordEvent(event));
    }

    /// Make `stream` wait for `event` before executing subsequent commands.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) {
        self.cmd_log.push(CmdRecord::WaitEvent { stream, event });
        self.streams[stream.0 as usize]
            .queue
            .push_back(Command::WaitEvent(event));
    }

    /// Completion time of `event`, if completed.
    pub fn event_time(&self, event: EventId) -> Option<SimTime> {
        match self.events[event.0 as usize] {
            EventState::Completed(t) => Some(t),
            _ => None,
        }
    }

    /// Kernel execution interval `(start, end)`, available after [`run`].
    ///
    /// [`run`]: Device::run
    pub fn kernel_span(&self, id: KernelId) -> Option<(SimTime, SimTime)> {
        let k = &self.kernels[id.0 as usize];
        match (k.start, k.end) {
            (Some(s), Some(e)) => Some((s, e)),
            _ => None,
        }
    }

    /// All kernel traces so far, in launch order.
    pub fn trace(&self) -> &[KernelTrace] {
        &self.trace
    }

    /// The driver command log: every host-issued launch / event record /
    /// event wait in issue order, with [`CmdRecord::Sync`] markers where a
    /// [`run`](Device::run) episode completed. The schedule sanitizer
    /// replays this to reconstruct happens-before.
    pub fn command_log(&self) -> &[CmdRecord] {
        &self.cmd_log
    }

    /// Descriptor of a previously launched kernel.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this device.
    pub fn kernel_desc(&self, id: KernelId) -> &KernelDesc {
        self.kernels[id.0 as usize].desc.as_ref()
    }

    /// Utilization statistics over everything simulated so far.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats::from_parts(&self.props, &self.sms, &self.trace, self.clock)
    }

    /// Run the simulation until all streams drain; returns the final
    /// simulated time.
    ///
    /// Streams parked on peer-to-peer copy traffic are left parked — only
    /// [`Fabric::run`](crate::fabric::Fabric::run) can schedule a link
    /// transfer, so a lone `run` tolerates them and resumes them later.
    pub fn run(&mut self) -> SimTime {
        self.kick();
        while self.step_one() {}

        debug_assert!(
            self.streams.iter().all(|s| s.is_idle() || s.copy_parked()),
            "heap drained with non-idle streams (unsatisfiable event wait?)"
        );
        if self.streams.iter().all(|s| s.is_idle()) {
            self.push_sync_marker();
        }
        if self.telemetry.is_attached() {
            let stats = self.stats();
            let pid = self.telemetry_pid;
            self.telemetry.with(|r| {
                r.gauge_set(&format!("gpu{pid}.avg_occupancy"), stats.avg_occupancy);
                r.gauge_set(
                    &format!("gpu{pid}.total_kernel_time_ns"),
                    stats.total_kernel_time_ns as f64,
                );
            });
        }
        self.clock
    }

    // ----- fabric stepping API (crate-internal) ----------------------

    /// Kick all streams and the block dispatcher at the current time
    /// without consuming any heap event ([`run`](Device::run)'s preamble).
    pub(crate) fn kick(&mut self) {
        for s in 0..self.streams.len() {
            self.advance_stream(StreamId(s as u32));
        }
        self.dispatch(self.clock);
    }

    /// Time of the next pending heap event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Process exactly one heap event (advancing the clock to it) and
    /// re-dispatch. Returns `false` when no event was pending.
    pub(crate) fn step_one(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.clock, "time went backwards");
        self.clock = ev.time;
        match ev.kind {
            EvKind::BurstDone {
                kernel,
                sm,
                count,
                demand_milli,
            } => self.on_burst_done(kernel, sm, count, demand_milli),
            EvKind::HostReady(k) => self.on_host_ready(k),
            EvKind::CopyHostReady(c) => {
                if let Some(st) = self.copy_src.get(&c.0) {
                    let sid = st.stream;
                    self.advance_stream(sid);
                }
            }
            EvKind::CopyDone(c) => self.on_copy_done(c),
            EvKind::CopyArrived(c) => self.on_copy_arrived(c),
        }
        self.dispatch(self.clock);
        true
    }

    /// Whether every stream is fully idle (no copy-parked streams either)
    /// and no events are pending.
    pub(crate) fn fully_idle(&self) -> bool {
        self.heap.is_empty() && self.streams.iter().all(|s| s.is_idle())
    }

    /// Append a [`CmdRecord::Sync`] barrier marker unless one is already
    /// last. The fabric calls this on every device when a multi-device
    /// episode drains, so per-device logs stay segment-aligned.
    pub(crate) fn push_sync_marker(&mut self) {
        if self.cmd_log.last().is_some_and(|c| *c != CmdRecord::Sync) {
            self.cmd_log.push(CmdRecord::Sync);
        }
    }

    /// Enqueue the source half of copy `id` on `stream`: pays the host
    /// launch overhead (it is a driver call) and parks the stream when it
    /// reaches the front until the fabric finishes the transfer. Returns
    /// the host issue time.
    pub(crate) fn enqueue_copy_src(&mut self, stream: StreamId, id: CopyId) -> SimTime {
        self.host_clock = self.host_clock.max(self.clock) + self.props.launch_overhead_ns;
        self.cmd_log.push(CmdRecord::CopySrc { stream, copy: id });
        self.copy_src.insert(
            id.0,
            CopySrcState {
                stream,
                issued: self.host_clock,
                notified: false,
            },
        );
        self.streams[stream.0 as usize]
            .queue
            .push_back(Command::CopySrc(id));
        self.host_clock
    }

    /// Enqueue the destination half of copy `id` on `stream`: a pure wait
    /// marker (no host launch overhead, like an event wait).
    pub(crate) fn enqueue_copy_dst(&mut self, stream: StreamId, id: CopyId) {
        self.cmd_log.push(CmdRecord::CopyDst { stream, copy: id });
        self.streams[stream.0 as usize]
            .queue
            .push_back(Command::CopyDst(id));
    }

    /// Take the copies whose source half has reached its stream front
    /// since the last call (ready for link scheduling), with ready times.
    pub(crate) fn take_ready_copies(&mut self) -> Vec<(CopyId, SimTime)> {
        std::mem::take(&mut self.copy_ready)
    }

    /// The fabric scheduled copy `id` (sourced here) to complete at `end`:
    /// wake the parked source stream then.
    pub(crate) fn finish_copy_src(&mut self, id: CopyId, end: SimTime) {
        self.push_ev(end.max(self.clock), EvKind::CopyDone(id));
    }

    /// The fabric scheduled copy `id` (landing here) to arrive at `end`:
    /// complete the destination-side wait then.
    pub(crate) fn finish_copy_dst(&mut self, id: CopyId, end: SimTime) {
        self.push_ev(end.max(self.clock), EvKind::CopyArrived(id));
    }

    /// Append a fabric-constructed trace entry (a completed copy, rendered
    /// in the timeline exactly like a kernel).
    pub(crate) fn push_trace_entry(&mut self, trace: KernelTrace) {
        self.trace.push(trace);
    }

    fn on_copy_done(&mut self, id: CopyId) {
        let st = self.copy_src.get(&id.0).expect("copy source state");
        let sid = st.stream;
        debug_assert_eq!(self.streams[sid.0 as usize].copy_inflight, Some(id));
        self.streams[sid.0 as usize].copy_inflight = None;
        self.advance_stream(sid);
    }

    fn on_copy_arrived(&mut self, id: CopyId) {
        self.copy_arrived.insert(id.0, self.clock);
        if let Some(sid) = self.copy_waiters.remove(&id.0) {
            let s = sid.0 as usize;
            if let Some(Command::CopyDst(c)) = self.streams[s].queue.front() {
                if *c == id {
                    self.streams[s].queue.pop_front();
                }
            }
            self.advance_stream(sid);
        }
    }

    /// Convenience: wait for everything previously enqueued, like
    /// `cudaDeviceSynchronize`. Returns the completion time.
    pub fn synchronize(&mut self) -> SimTime {
        self.run()
    }

    /// Fast-forward an idle device's clock to `t` (no-op if `t` is in the
    /// past). A serving event loop uses this to jump to the next request
    /// arrival when the device has drained; the host dispatcher clock
    /// follows so later launches pay their overhead relative to `t`.
    ///
    /// # Panics
    /// Panics (debug builds) if called with work still in flight — the
    /// clock may only move between [`run`](Device::run) episodes.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            self.heap.is_empty() && self.streams.iter().all(|s| s.is_idle()),
            "advance_to on a busy device"
        );
        if t > self.clock {
            self.clock = t;
        }
        self.host_clock = self.host_clock.max(self.clock);
    }

    // ----- internals -------------------------------------------------

    fn push_ev(&mut self, time: SimTime, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Pop and process stream commands until the stream blocks.
    fn advance_stream(&mut self, sid: StreamId) {
        let s = sid.0 as usize;
        loop {
            if self.streams[s].inflight.is_some() || self.streams[s].copy_inflight.is_some() {
                return; // in-order: wait for the running kernel / copy
            }
            let Some(cmd) = self.streams[s].queue.front() else {
                self.streams[s].last_idle = self.clock;
                return;
            };
            match cmd {
                Command::Launch(id) => {
                    let id = *id;
                    let k = &mut self.kernels[id.0 as usize];
                    if k.launch_issued > self.clock {
                        // Host has not issued this launch yet.
                        if k.state == KState::Queued {
                            k.state = KState::WaitingHost;
                            let t = k.launch_issued;
                            self.push_ev(t, EvKind::HostReady(id));
                        }
                        return;
                    }
                    self.streams[s].queue.pop_front();
                    self.streams[s].inflight = Some(id);
                    self.make_ready(id);
                    return; // in-order: nothing further until it completes
                }
                Command::RecordEvent(ev) => {
                    let ev = *ev;
                    self.streams[s].queue.pop_front();
                    self.complete_event(ev, sid);
                }
                Command::WaitEvent(ev) => {
                    let ev = *ev;
                    match self.events[ev.0 as usize] {
                        EventState::Completed(_) => {
                            self.streams[s].queue.pop_front();
                            // The wait never blocked, but the ordering
                            // edge still exists — record it.
                            self.tel_dep_flow(ev, sid);
                        }
                        _ => {
                            // Block until the event completes.
                            if !self.event_waiters[ev.0 as usize].contains(&sid) {
                                self.event_waiters[ev.0 as usize].push(sid);
                            }
                            return;
                        }
                    }
                }
                Command::CopySrc(id) => {
                    let id = *id;
                    let st = self.copy_src.get_mut(&id.0).expect("copy source state");
                    if st.issued > self.clock {
                        // Host has not issued this copy yet.
                        if !st.notified {
                            st.notified = true;
                            let t = st.issued;
                            self.push_ev(t, EvKind::CopyHostReady(id));
                        }
                        return;
                    }
                    self.streams[s].queue.pop_front();
                    self.streams[s].copy_inflight = Some(id);
                    // Hand to the fabric for link scheduling; the stream
                    // stays parked until `CopyDone`.
                    self.copy_ready.push((id, self.clock));
                    return;
                }
                Command::CopyDst(id) => {
                    let id = *id;
                    if self.copy_arrived.contains_key(&id.0) {
                        self.streams[s].queue.pop_front();
                    } else {
                        // Block until the transfer lands.
                        self.copy_waiters.insert(id.0, sid);
                        return;
                    }
                }
            }
        }
    }

    fn complete_event(&mut self, ev: EventId, recorded_in: StreamId) {
        self.events[ev.0 as usize] = EventState::Completed(self.clock);
        if self.telemetry.is_attached() {
            self.event_src.insert(ev.0, (recorded_in, self.clock));
        }
        let waiters = std::mem::take(&mut self.event_waiters[ev.0 as usize]);
        for sid in waiters {
            self.tel_dep_flow(ev, sid);
            // Drop the WaitEvent at the waiter's front and continue it.
            let s = sid.0 as usize;
            if let Some(Command::WaitEvent(e)) = self.streams[s].queue.front() {
                if *e == ev {
                    self.streams[s].queue.pop_front();
                }
            }
            self.advance_stream(sid);
        }
    }

    /// Flow arrow for the ordering edge `ev` imposes from its recording
    /// stream onto `waiter`, when telemetry is attached.
    fn tel_dep_flow(&mut self, ev: EventId, waiter: StreamId) {
        if !self.telemetry.is_attached() {
            return;
        }
        let Some(&(src, completed)) = self.event_src.get(&ev.0) else {
            return;
        };
        let pid = self.telemetry_pid;
        let now = self.clock;
        self.telemetry.with(|r| {
            r.flow(
                "dep",
                "event",
                (pid, src.0 as u64, completed),
                (pid, waiter.0 as u64, now),
            );
        });
    }

    /// A kernel reached its stream front with its launch issued.
    fn make_ready(&mut self, id: KernelId) {
        let c = self.props.concurrency_degree() as usize;
        let k = &mut self.kernels[id.0 as usize];
        debug_assert!(matches!(k.state, KState::Queued | KState::WaitingHost));
        if self.active.len() < c {
            k.state = KState::Active;
            self.active.push(id);
        } else {
            k.state = KState::Pending;
            self.pending.push_back(id);
        }
    }

    fn on_host_ready(&mut self, id: KernelId) {
        // The launch time arrived; the kernel may or may not still be at its
        // stream front (it is, by in-order construction, unless already ready).
        if self.kernels[id.0 as usize].state == KState::WaitingHost {
            self.kernels[id.0 as usize].state = KState::Queued;
            let sid = self.kernels[id.0 as usize].stream;
            self.advance_stream(sid);
        }
    }

    fn on_burst_done(&mut self, id: KernelId, sm: usize, count: u64, demand_milli: u64) {
        let fp = self.kernels[id.0 as usize].footprint;
        for _ in 0..count {
            self.sms[sm].update(&self.props, self.clock, &fp, false);
        }
        self.bw.retire(demand_milli as f64 / 1000.0);
        let k = &mut self.kernels[id.0 as usize];
        k.blocks_done += count;
        debug_assert!(k.blocks_done <= k.blocks_total);
        if k.blocks_done == k.blocks_total {
            k.end = Some(self.clock);
            k.state = KState::Done;
            let sid = k.stream;
            self.trace.push(KernelTrace::from_runtime(
                id,
                self.kernels[id.0 as usize].desc.as_ref(),
                sid,
                self.kernels[id.0 as usize].launch_issued,
                self.kernels[id.0 as usize].start.unwrap_or(self.clock),
                self.clock,
            ));
            if self.telemetry.is_attached() {
                let t = self.trace.last().expect("just pushed");
                let pid = self.telemetry_pid;
                self.telemetry.with(|r| {
                    r.span(pid, sid.0 as u64, &t.name, "kernel", t.start_ns, t.end_ns);
                    r.counter_add("gpu.kernels_completed", 1);
                });
            }
            self.active.retain(|&a| a != id);
            if let Some(next) = self.pending.pop_front() {
                self.kernels[next.0 as usize].state = KState::Active;
                self.active.push(next);
            }
            self.streams[sid.0 as usize].inflight = None;
            self.advance_stream(sid);
        }
    }

    /// Place as many blocks of active kernels as fit, round-robin across
    /// kernels, bursting per SM.
    fn dispatch(&mut self, now: SimTime) {
        loop {
            let mut placed_any = false;
            // Round-robin one SM-burst per kernel per pass. Index loop:
            // `active` is not mutated inside a dispatch pass, and indexing
            // avoids cloning the active set every pass.
            for ai in 0..self.active.len() {
                let id = self.active[ai];
                let (remaining, fp, nominal, demand) = {
                    let k = &self.kernels[id.0 as usize];
                    if k.state != KState::Active {
                        continue;
                    }
                    (
                        k.blocks_total - k.blocks_issued,
                        k.footprint,
                        k.nominal_block_ns,
                        k.bw_demand,
                    )
                };
                if remaining == 0 {
                    continue;
                }
                let _ = nominal;
                // Wave placement: spread blocks one-per-SM in rotation,
                // like the hardware block scheduler, until the grid is
                // exhausted or no SM has room.
                let num_sms = self.sms.len();
                let mut per_sm = std::mem::take(&mut self.scratch_per_sm);
                per_sm.clear();
                per_sm.resize(num_sms, 0);
                let mut placed_total = 0u64;
                let mut progress = true;
                while placed_total < remaining && progress {
                    progress = false;
                    for (smi, placed) in per_sm.iter_mut().enumerate().take(num_sms) {
                        if placed_total >= remaining {
                            break;
                        }
                        if self.sms[smi].fits(&self.props, &fp) {
                            self.sms[smi].update(&self.props, now, &fp, true);
                            *placed += 1;
                            placed_total += 1;
                            progress = true;
                        }
                    }
                }
                if placed_total == 0 {
                    self.scratch_per_sm = per_sm;
                    continue;
                }
                let factor = self.bw.place(demand * placed_total as f64);
                // Residency-aware burst duration: SM issue throughput
                // scales with resident warps up to `warps_for_peak`
                // (latency hiding), then is shared warp-proportionally.
                let cost = self.kernels[id.0 as usize].desc.cost;
                let w_block = fp.threads.div_ceil(self.props.warp_size).max(1);
                let bw_share = self.props.mem_bw_gbps * 1e9 / self.props.num_sms as f64;
                for (smi, &n) in per_sm.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let w_total = self.sms[smi]
                        .threads_used
                        .div_ceil(self.props.warp_size)
                        .max(w_block);
                    let rate_c = self.props.sm_peak_flops() * w_block as f64
                        / w_total.max(self.props.warps_for_peak) as f64;
                    let t_c = if cost.flops_per_block > 0.0 {
                        cost.flops_per_block / rate_c
                    } else {
                        0.0
                    };
                    let t_m = if cost.dram_bytes_per_block > 0.0 {
                        cost.dram_bytes_per_block / bw_share * factor
                    } else {
                        0.0
                    };
                    // The shared rate above already splits the SM among all
                    // resident warps, so the n co-resident blocks of this
                    // burst progress in parallel and retire together.
                    let dur = (t_c.max(t_m) * 1e9 + 1000.0).ceil() as SimTime;
                    self.push_ev(
                        now + dur.max(1),
                        EvKind::BurstDone {
                            kernel: id,
                            sm: smi,
                            count: n,
                            demand_milli: (demand * n as f64 * 1000.0).round() as u64,
                        },
                    );
                }
                self.scratch_per_sm = per_sm;
                let k = &mut self.kernels[id.0 as usize];
                k.blocks_issued += placed_total;
                if k.start.is_none() {
                    k.start = Some(now);
                }
                placed_any = true;
            }
            if !placed_any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn kernel(name: &str, blocks: u32, threads: u32, flops: f64) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(threads), 32, 0),
            KernelCost::new(flops, flops / 4.0),
        )
    }

    #[test]
    fn single_kernel_completes() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        let id = dev.launch(s, kernel("k", 56, 256, 1.0e6));
        let end = dev.run();
        let (start, fin) = dev.kernel_span(id).unwrap();
        assert!(start >= dev.props().launch_overhead_ns);
        assert!(fin > start);
        assert_eq!(fin, end);
        assert_eq!(dev.trace().len(), 1);
    }

    #[test]
    fn same_stream_serializes() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        let a = dev.launch(s, kernel("a", 56, 256, 1.0e7));
        let b = dev.launch(s, kernel("b", 56, 256, 1.0e7));
        dev.run();
        let (_, a_end) = dev.kernel_span(a).unwrap();
        let (b_start, _) = dev.kernel_span(b).unwrap();
        assert!(b_start >= a_end, "in-order stream must serialize");
    }

    #[test]
    fn different_streams_overlap() {
        let mut dev = Device::new(DeviceProps::p100());
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        // Small grids so both kernels fit on the device simultaneously.
        let a = dev.launch(s1, kernel("a", 28, 256, 5.0e7));
        let b = dev.launch(s2, kernel("b", 28, 256, 5.0e7));
        dev.run();
        let (a_s, a_e) = dev.kernel_span(a).unwrap();
        let (b_s, b_e) = dev.kernel_span(b).unwrap();
        let overlap = a_e.min(b_e).saturating_sub(a_s.max(b_s));
        assert!(
            overlap > 0,
            "concurrent streams must overlap: {a_s}-{a_e} vs {b_s}-{b_e}"
        );
    }

    #[test]
    fn two_streams_faster_than_one_for_underfilling_kernels() {
        // Kernels that fill only half the SMs: serial = 2T, concurrent ≈ T.
        let run = |nstreams: usize| {
            let mut dev = Device::new(DeviceProps::p100());
            let streams: Vec<_> = (0..nstreams).map(|_| dev.create_stream()).collect();
            for i in 0..2 {
                dev.launch(streams[i % nstreams], kernel("k", 28, 512, 2.0e8));
            }
            dev.run()
        };
        let t1 = run(1);
        let t2 = run(2);
        assert!(
            (t2 as f64) < (t1 as f64) * 0.75,
            "2 streams should be clearly faster: t1={t1} t2={t2}"
        );
    }

    #[test]
    fn concurrency_degree_caps_active_kernels() {
        // On Kepler (C=32) launching 40 tiny kernels: all complete, and the
        // engine never holds more than C active (observable via pending
        // FIFO — here we just assert completion and ordering sanity).
        let mut dev = Device::new(DeviceProps::k40c());
        let streams: Vec<_> = (0..40).map(|_| dev.create_stream()).collect();
        let ids: Vec<_> = (0..40)
            .map(|i| dev.launch(streams[i], kernel("t", 1, 64, 1.0e5)))
            .collect();
        dev.run();
        for id in ids {
            assert!(dev.kernel_span(id).is_some());
        }
        assert_eq!(dev.trace().len(), 40);
    }

    #[test]
    fn launch_overhead_serializes_host() {
        let mut dev = Device::new(DeviceProps::p100());
        let ovh = dev.props().launch_overhead_ns;
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        let a = dev.launch(s1, kernel("a", 1, 64, 1.0e5));
        let b = dev.launch(s2, kernel("b", 1, 64, 1.0e5));
        dev.run();
        let (a_s, _) = dev.kernel_span(a).unwrap();
        let (b_s, _) = dev.kernel_span(b).unwrap();
        assert!(a_s >= ovh);
        assert!(b_s >= 2 * ovh, "second launch pays two launch overheads");
    }

    #[test]
    fn events_order_across_streams() {
        let mut dev = Device::new(DeviceProps::p100());
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        let ev = dev.create_event();
        let a = dev.launch(s1, kernel("a", 56, 256, 1.0e8));
        dev.record_event(s1, ev);
        dev.wait_event(s2, ev);
        let b = dev.launch(s2, kernel("b", 56, 256, 1.0e6));
        dev.run();
        let (_, a_e) = dev.kernel_span(a).unwrap();
        let (b_s, _) = dev.kernel_span(b).unwrap();
        assert!(b_s >= a_e, "event wait must order b after a");
        assert_eq!(dev.event_time(ev), Some(a_e));
    }

    #[test]
    fn wait_on_already_completed_event_is_noop() {
        let mut dev = Device::new(DeviceProps::p100());
        let s1 = dev.create_stream();
        let ev = dev.create_event();
        dev.launch(s1, kernel("a", 1, 64, 1.0e5));
        dev.record_event(s1, ev);
        dev.run();
        let s2 = dev.create_stream();
        dev.wait_event(s2, ev);
        let b = dev.launch(s2, kernel("b", 1, 64, 1.0e5));
        dev.run();
        assert!(dev.kernel_span(b).is_some());
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut dev = Device::new(DeviceProps::titan_xp());
            let streams: Vec<_> = (0..4).map(|_| dev.create_stream()).collect();
            for i in 0..12u32 {
                dev.launch(
                    streams[(i % 4) as usize],
                    kernel(&format!("k{i}"), 10 + i, 128, 1.0e6 * (i + 1) as f64),
                );
            }
            dev.run();
            dev.trace()
                .iter()
                .map(|t| (t.start_ns, t.end_ns))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn advance_to_fast_forwards_idle_clock() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        dev.launch(s, kernel("a", 8, 128, 1.0e6));
        let t1 = dev.run();
        dev.advance_to(t1 + 500_000);
        assert_eq!(dev.now(), t1 + 500_000);
        // Moving backwards is a no-op.
        dev.advance_to(t1);
        assert_eq!(dev.now(), t1 + 500_000);
        // Work after the jump starts no earlier than the new present.
        let b = dev.launch(s, kernel("b", 8, 128, 1.0e6));
        dev.run();
        let (b_s, _) = dev.kernel_span(b).unwrap();
        assert!(b_s >= t1 + 500_000);
    }

    #[test]
    fn clock_is_monotonic_across_runs() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        dev.launch(s, kernel("a", 8, 128, 1.0e6));
        let t1 = dev.run();
        dev.launch(s, kernel("b", 8, 128, 1.0e6));
        let t2 = dev.run();
        assert!(t2 > t1);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        dev.launch(s, kernel("huge", 1, 2048, 1.0e5));
    }

    #[test]
    fn concurrency_degree_one_forbids_overlap() {
        // A Tesla-class device (C = 1, Table 1) cannot overlap kernels
        // even across streams — Eq. 6's upper bound at its tightest.
        let mut props = DeviceProps::p100();
        props.arch = crate::device::Arch::Tesla;
        let mut dev = Device::new(props);
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        let a = dev.launch(s1, kernel("a", 8, 256, 1.0e7));
        let b = dev.launch(s2, kernel("b", 8, 256, 1.0e7));
        dev.run();
        let (a_s, a_e) = dev.kernel_span(a).unwrap();
        let (b_s, b_e) = dev.kernel_span(b).unwrap();
        let overlap = a_e.min(b_e).saturating_sub(a_s.max(b_s));
        assert_eq!(overlap, 0, "C=1 must serialize everything");
    }

    #[test]
    fn blocks_never_oversubscribe_sm() {
        // Launch many kernels and verify (via stats) utilization ≤ 1.
        let mut dev = Device::new(DeviceProps::k40c());
        let streams: Vec<_> = (0..8).map(|_| dev.create_stream()).collect();
        for i in 0..16u32 {
            dev.launch(streams[(i % 8) as usize], kernel("k", 64, 256, 5.0e6));
        }
        dev.run();
        let stats = dev.stats();
        assert!(stats.avg_occupancy <= 1.0 + 1e-9);
        assert!(stats.avg_occupancy > 0.0);
    }
}
