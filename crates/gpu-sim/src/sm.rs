//! Per-SM resource accounting and block placement.

use crate::device::DeviceProps;
use crate::kernel::LaunchConfig;

/// Resources consumed by one resident block; returned to the SM when the
/// block retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFootprint {
    /// Threads occupied.
    pub threads: u32,
    /// Shared-memory bytes occupied.
    pub smem: u32,
    /// Registers occupied (allocation-granule rounded).
    pub regs: u32,
}

impl BlockFootprint {
    /// Footprint of one block of `cfg` on `dev`.
    pub fn of(dev: &DeviceProps, cfg: &LaunchConfig) -> Self {
        let warps = cfg.threads_per_block().div_ceil(dev.warp_size);
        let per_warp = cfg.regs_per_thread * dev.warp_size;
        let granule = 256;
        BlockFootprint {
            threads: cfg.threads_per_block(),
            smem: cfg.smem_per_block(),
            regs: warps * per_warp.div_ceil(granule) * granule,
        }
    }
}

/// Mutable residency state of one streaming multiprocessor.
#[derive(Debug, Clone)]
pub struct SmState {
    /// Threads currently resident.
    pub threads_used: u32,
    /// Blocks currently resident.
    pub blocks_used: u32,
    /// Shared-memory bytes currently allocated.
    pub smem_used: u32,
    /// Registers currently allocated.
    pub regs_used: u32,
    /// Accumulated busy integral: Σ (resident warps × dt), for utilization
    /// statistics.
    pub warp_time_integral: u128,
    /// Last time residency changed (for the integral).
    pub last_change: u64,
}

impl SmState {
    /// An empty SM at time 0.
    pub fn new() -> Self {
        SmState {
            threads_used: 0,
            blocks_used: 0,
            smem_used: 0,
            regs_used: 0,
            warp_time_integral: 0,
            last_change: 0,
        }
    }

    /// Whether a block with `fp` fits under the device limits right now.
    pub fn fits(&self, dev: &DeviceProps, fp: &BlockFootprint) -> bool {
        self.threads_used + fp.threads <= dev.max_threads_per_sm
            && self.blocks_used < dev.max_blocks_per_sm
            && self.smem_used + fp.smem <= dev.smem_per_sm
            && self.regs_used + fp.regs <= dev.regs_per_sm
    }

    /// Account the warp-time integral up to `now`, then apply a residency
    /// change of `delta` blocks with footprint `fp`.
    pub fn update(&mut self, dev: &DeviceProps, now: u64, fp: &BlockFootprint, place: bool) {
        let warps_resident = self.threads_used.div_ceil(dev.warp_size) as u128;
        self.warp_time_integral += warps_resident * (now - self.last_change) as u128;
        self.last_change = now;
        if place {
            self.threads_used += fp.threads;
            self.blocks_used += 1;
            self.smem_used += fp.smem;
            self.regs_used += fp.regs;
        } else {
            self.threads_used -= fp.threads;
            self.blocks_used -= 1;
            self.smem_used -= fp.smem;
            self.regs_used -= fp.regs;
        }
    }

    /// Fraction of the thread capacity in use right now.
    pub fn thread_utilization(&self, dev: &DeviceProps) -> f64 {
        self.threads_used as f64 / dev.max_threads_per_sm as f64
    }
}

impl Default for SmState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Dim3, LaunchConfig};

    fn cfg(threads: u32, regs: u32, smem: u32) -> LaunchConfig {
        LaunchConfig::new(Dim3::linear(100), Dim3::linear(threads), regs, smem)
    }

    #[test]
    fn footprint_computation() {
        let dev = DeviceProps::p100();
        let fp = BlockFootprint::of(&dev, &cfg(256, 33, 2048));
        assert_eq!(fp.threads, 256);
        assert_eq!(fp.smem, 2048);
        assert_eq!(fp.regs, 10240); // 8 warps * 1280 (granule-rounded 33*32)
    }

    #[test]
    fn placement_and_removal_restore_state() {
        let dev = DeviceProps::p100();
        let fp = BlockFootprint::of(&dev, &cfg(512, 32, 8192));
        let mut sm = SmState::new();
        assert!(sm.fits(&dev, &fp));
        sm.update(&dev, 100, &fp, true);
        assert_eq!(sm.threads_used, 512);
        assert_eq!(sm.blocks_used, 1);
        sm.update(&dev, 200, &fp, false);
        assert_eq!(sm.threads_used, 0);
        assert_eq!(sm.blocks_used, 0);
        assert_eq!(sm.smem_used, 0);
        assert_eq!(sm.regs_used, 0);
    }

    #[test]
    fn fits_rejects_over_subscription() {
        let dev = DeviceProps::p100(); // 2048 threads/SM
        let fp = BlockFootprint::of(&dev, &cfg(1024, 8, 0));
        let mut sm = SmState::new();
        sm.update(&dev, 0, &fp, true);
        sm.update(&dev, 0, &fp, true);
        assert_eq!(sm.threads_used, 2048);
        assert!(!sm.fits(&dev, &fp)); // third 1024-thread block won't fit
    }

    #[test]
    fn warp_time_integral_accumulates() {
        let dev = DeviceProps::p100();
        let fp = BlockFootprint::of(&dev, &cfg(64, 8, 0)); // 2 warps
        let mut sm = SmState::new();
        sm.update(&dev, 0, &fp, true); // integral += 0
        sm.update(&dev, 1000, &fp, false); // integral += 2 warps * 1000
        assert_eq!(sm.warp_time_integral, 2000);
    }

    #[test]
    fn smem_and_register_limits_enforced() {
        let dev = DeviceProps::k40c(); // 48 KiB smem
        let fp = BlockFootprint::of(&dev, &cfg(64, 8, 40 * 1024));
        let mut sm = SmState::new();
        assert!(sm.fits(&dev, &fp));
        sm.update(&dev, 0, &fp, true);
        assert!(!sm.fits(&dev, &fp)); // second 40 KiB block exceeds 48 KiB
    }
}
