//! CUDA-style occupancy calculator.
//!
//! Computes how many blocks of a given launch configuration can be resident
//! on one SM simultaneously, which limiter binds, and the resulting
//! occupancy ratio `OR_SM = ω_active / ω_max` (Eqs. 1-2 of the paper).
//! GLP4NN's kernel analyzer uses these numbers to populate the constraints
//! of its integer program.

use crate::device::DeviceProps;
use crate::kernel::LaunchConfig;

/// Which per-SM resource limits residency for a launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Resident-thread limit (`τ_max`).
    Threads,
    /// Resident-block limit (`β_max`).
    Blocks,
    /// Shared-memory capacity (`sm_max`).
    SharedMemory,
    /// Register file capacity.
    Registers,
    /// The grid itself has fewer blocks than any limit allows.
    GridSize,
}

/// Result of an occupancy query for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyResult {
    /// Max blocks of this configuration resident on one SM.
    pub blocks_per_sm: u32,
    /// Active warps per SM at that residency.
    pub active_warps: u32,
    /// `OR_SM` ∈ [0, 1].
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Registers are allocated in fixed-size granules on real hardware; use a
/// 256-register warp granularity (Kepler+).
fn reg_alloc_per_block(dev: &DeviceProps, cfg: &LaunchConfig) -> u32 {
    let warps = cfg.threads_per_block().div_ceil(dev.warp_size);
    let per_warp = cfg.regs_per_thread * dev.warp_size;
    let granule = 256;
    warps * per_warp.div_ceil(granule) * granule
}

/// Compute residency of a single launch configuration on one SM of `dev`.
pub fn occupancy(dev: &DeviceProps, cfg: &LaunchConfig) -> OccupancyResult {
    let threads = cfg.threads_per_block().max(1);

    let by_threads = dev.max_threads_per_sm / threads;
    let by_blocks = dev.max_blocks_per_sm;
    let by_smem = if cfg.smem_per_block() > 0 {
        dev.smem_per_sm / cfg.smem_per_block()
    } else {
        u32::MAX
    };
    let regs = reg_alloc_per_block(dev, cfg);
    let by_regs = dev.regs_per_sm.checked_div(regs).unwrap_or(u32::MAX);

    let mut blocks = by_threads.min(by_blocks).min(by_smem).min(by_regs);
    let mut limiter = if blocks == by_threads {
        Limiter::Threads
    } else if blocks == by_blocks {
        Limiter::Blocks
    } else if blocks == by_smem {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    };

    // A small grid may not even fill one SM's residency.
    let grid_blocks = cfg.num_blocks();
    let per_sm_from_grid = grid_blocks.div_ceil(dev.num_sms as u64) as u32;
    if per_sm_from_grid < blocks {
        blocks = per_sm_from_grid;
        limiter = Limiter::GridSize;
    }

    let warps_per_block = threads.div_ceil(dev.warp_size);
    let active_warps = blocks * warps_per_block;
    let occupancy = active_warps as f64 / dev.max_warps_per_sm() as f64;
    OccupancyResult {
        blocks_per_sm: blocks,
        active_warps,
        occupancy: occupancy.min(1.0),
        limiter,
    }
}

/// The paper's Eq. 8: blocks of kernel `K_i` placed on a single SM when the
/// grid is spread evenly (`β_{K_i} = ⌊#β_{K_i} / #SM⌋`, floored at 1 so a
/// small kernel still counts as occupying one slot).
pub fn blocks_per_sm_even_spread(dev: &DeviceProps, cfg: &LaunchConfig) -> u32 {
    ((cfg.num_blocks() / dev.num_sms as u64) as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Dim3, LaunchConfig};

    fn cfg(blocks: u32, threads: u32, regs: u32, smem: u32) -> LaunchConfig {
        LaunchConfig::new(Dim3::linear(blocks), Dim3::linear(threads), regs, smem)
    }

    #[test]
    fn thread_limited() {
        let dev = DeviceProps::p100();
        // 1024-thread blocks: 2048/1024 = 2 resident.
        let r = occupancy(&dev, &cfg(10_000, 1024, 8, 0));
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.limiter, Limiter::Threads);
        assert!((r.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_limited() {
        let dev = DeviceProps::p100(); // max 32 blocks/SM
        let r = occupancy(&dev, &cfg(100_000, 32, 8, 0));
        assert_eq!(r.blocks_per_sm, 32);
        assert_eq!(r.limiter, Limiter::Blocks);
        // 32 blocks * 1 warp = 32 of 64 warps.
        assert!((r.occupancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smem_limited() {
        let dev = DeviceProps::p100(); // 64 KiB smem
        let r = occupancy(&dev, &cfg(10_000, 128, 8, 16 * 1024));
        assert_eq!(r.blocks_per_sm, 4);
        assert_eq!(r.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn register_limited() {
        let dev = DeviceProps::p100(); // 64K regs
                                       // 256 threads * 64 regs = 16384 regs/block -> 4 blocks.
        let r = occupancy(&dev, &cfg(10_000, 256, 64, 0));
        assert_eq!(r.blocks_per_sm, 4);
        assert_eq!(r.limiter, Limiter::Registers);
    }

    #[test]
    fn grid_limited_small_kernel() {
        let dev = DeviceProps::p100(); // 56 SMs
                                       // 18-block grid (the paper's im2col example on K40C has grid [18,1,1]):
                                       // fewer blocks than SMs -> at most 1 per SM, grid-limited.
        let r = occupancy(&dev, &cfg(18, 128, 16, 0));
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limiter, Limiter::GridSize);
        assert!(r.occupancy < 0.1);
    }

    #[test]
    fn even_spread_eq8() {
        let dev = DeviceProps::k40c(); // 15 SMs
        assert_eq!(blocks_per_sm_even_spread(&dev, &cfg(150, 128, 8, 0)), 10);
        assert_eq!(blocks_per_sm_even_spread(&dev, &cfg(151, 128, 8, 0)), 10);
        // Floors at 1 for tiny grids.
        assert_eq!(blocks_per_sm_even_spread(&dev, &cfg(3, 128, 8, 0)), 1);
    }

    #[test]
    fn occupancy_never_exceeds_one() {
        let dev = DeviceProps::k40c();
        for threads in [32u32, 64, 128, 256, 512, 1024] {
            let r = occupancy(&dev, &cfg(1_000_000, threads, 8, 0));
            assert!(r.occupancy <= 1.0 + 1e-12);
            assert!(r.active_warps <= dev.max_warps_per_sm());
        }
    }

    #[test]
    fn register_allocation_granularity() {
        let dev = DeviceProps::p100();
        // 33 regs/thread (the paper's im2col example) on a 256-thread block:
        // 8 warps * ceil(33*32/256)*256 = 8 * 1280 = 10240 regs.
        let c = cfg(1000, 256, 33, 0);
        assert_eq!(reg_alloc_per_block(&dev, &c), 10240);
    }
}
