//! Device properties and presets.
//!
//! Encodes the hardware rows of the paper's Table 1 (architecture features)
//! and Table 3 (the three evaluation machines). Numbers not printed in the
//! paper (register file size, max threads per SM, launch overhead) use the
//! published CUDA specifications for the corresponding compute capability.

/// GPU microarchitecture generation (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Tesla (pre-Fermi): no streams, single kernel at a time.
    Tesla,
    /// Fermi: CUDA streams, up to 16 concurrent kernels.
    Fermi,
    /// Kepler: Hyper-Q, 32 concurrent kernels, dynamic parallelism.
    Kepler,
    /// Maxwell: 16 concurrent kernels (paper's Table 1), dynamic parallelism.
    Maxwell,
    /// Pascal: 128 concurrent kernels, unified memory.
    Pascal,
    /// Volta: 128 concurrent kernels, unified memory, tensor cores.
    Volta,
}

impl Arch {
    /// All architectures in Table 1 order.
    pub const ALL: [Arch; 6] = [
        Arch::Tesla,
        Arch::Fermi,
        Arch::Kepler,
        Arch::Maxwell,
        Arch::Pascal,
        Arch::Volta,
    ];

    /// Human-readable architecture name.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Tesla => "Tesla",
            Arch::Fermi => "Fermi",
            Arch::Kepler => "Kepler",
            Arch::Maxwell => "Maxwell",
            Arch::Pascal => "Pascal",
            Arch::Volta => "Volta",
        }
    }

    /// Feature row of the paper's Table 1 for this architecture.
    pub fn features(self) -> ArchFeatures {
        match self {
            Arch::Tesla => ArchFeatures {
                cuda_streams: false,
                dynamic_parallelism: false,
                max_concurrent_kernels: 1,
                unified_memory: false,
                tensor_cores: false,
            },
            Arch::Fermi => ArchFeatures {
                cuda_streams: true,
                dynamic_parallelism: false,
                max_concurrent_kernels: 16,
                unified_memory: false,
                tensor_cores: false,
            },
            Arch::Kepler => ArchFeatures {
                cuda_streams: true,
                dynamic_parallelism: true,
                max_concurrent_kernels: 32,
                unified_memory: false,
                tensor_cores: false,
            },
            Arch::Maxwell => ArchFeatures {
                cuda_streams: true,
                dynamic_parallelism: true,
                max_concurrent_kernels: 16,
                unified_memory: false,
                tensor_cores: false,
            },
            Arch::Pascal => ArchFeatures {
                cuda_streams: true,
                dynamic_parallelism: true,
                max_concurrent_kernels: 128,
                unified_memory: true,
                tensor_cores: false,
            },
            Arch::Volta => ArchFeatures {
                cuda_streams: true,
                dynamic_parallelism: true,
                max_concurrent_kernels: 128,
                unified_memory: true,
                tensor_cores: true,
            },
        }
    }
}

/// Architecture feature flags (columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchFeatures {
    /// Multiple CUDA streams supported.
    pub cuda_streams: bool,
    /// Device-side kernel launches supported.
    pub dynamic_parallelism: bool,
    /// Hardware concurrency degree `C` (Eq. 6 of the paper).
    pub max_concurrent_kernels: u32,
    /// Unified virtual memory supported.
    pub unified_memory: bool,
    /// Tensor cores present.
    pub tensor_cores: bool,
}

/// Full device description used by the simulator, the occupancy calculator
/// and GLP4NN's analytical model ("platform property" notations, Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name, e.g. "Tesla P100".
    pub name: String,
    /// Microarchitecture generation.
    pub arch: Arch,
    /// Number of streaming multiprocessors (`#SM`).
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device memory size in GiB.
    pub mem_size_gb: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Shared memory per SM in bytes (`sm_max`).
    pub smem_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident threads per SM (`τ_max`).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (`β_max`).
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Warp size (`θ`, 32 on all current GPUs).
    pub warp_size: u32,
    /// Host-side kernel launch overhead (`T_launch`) in nanoseconds.
    pub launch_overhead_ns: u64,
    /// FLOPs per cycle per CUDA core (2 for FMA).
    pub flops_per_cycle_per_core: f64,
    /// Resident warps an SM needs to hide pipeline/memory latency and
    /// reach peak issue rate. Below this, SM throughput scales linearly
    /// with occupancy — the physical reason the paper maximizes `OR_SM`
    /// (Eq. 1): more co-resident blocks ⇒ more active warps ⇒ more of the
    /// SM's peak actually delivered.
    pub warps_for_peak: u32,
}

impl DeviceProps {
    /// Hardware concurrency degree `C` (from the architecture).
    pub fn concurrency_degree(&self) -> u32 {
        self.arch.features().max_concurrent_kernels
    }

    /// Peak single-precision throughput of one SM in FLOP/s.
    pub fn sm_peak_flops(&self) -> f64 {
        self.cores_per_sm as f64 * self.flops_per_cycle_per_core * self.clock_ghz * 1e9
    }

    /// Peak single-precision throughput of the whole device in FLOP/s.
    pub fn device_peak_flops(&self) -> f64 {
        self.sm_peak_flops() * self.num_sms as f64
    }

    /// Maximum active warps per SM (`ω_SM` in Eq. 1).
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Tesla K40C — Kepler GK110B, the paper's Table 3 column 1.
    pub fn k40c() -> Self {
        DeviceProps {
            name: "Tesla K40C".to_string(),
            arch: Arch::Kepler,
            num_sms: 15,
            cores_per_sm: 192,
            clock_ghz: 0.745,
            mem_size_gb: 12.0,
            mem_bw_gbps: 288.0,
            smem_per_sm: 48 * 1024,
            regs_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 4_000,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 30,
        }
    }

    /// Tesla P100 — Pascal GP100, the paper's Table 3 column 2.
    pub fn p100() -> Self {
        DeviceProps {
            name: "Tesla P100".to_string(),
            arch: Arch::Pascal,
            num_sms: 56,
            cores_per_sm: 64,
            clock_ghz: 1.189,
            mem_size_gb: 12.0,
            mem_bw_gbps: 549.0,
            smem_per_sm: 64 * 1024,
            regs_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 3_500,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 12,
        }
    }

    /// Titan XP — Pascal GP102, the paper's Table 3 column 3.
    pub fn titan_xp() -> Self {
        DeviceProps {
            name: "Titan XP".to_string(),
            arch: Arch::Pascal,
            num_sms: 30,
            cores_per_sm: 128,
            clock_ghz: 1.455,
            mem_size_gb: 12.0,
            mem_bw_gbps: 547.7,
            smem_per_sm: 48 * 1024,
            regs_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 3_500,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 24,
        }
    }

    /// The three evaluation devices of the paper, in Table 3 order.
    pub fn evaluation_set() -> Vec<DeviceProps> {
        vec![Self::k40c(), Self::p100(), Self::titan_xp()]
    }

    /// Tesla M2090 — Fermi GF110 (Table 1 generation study; not part of
    /// the paper's Table 3 testbed).
    pub fn m2090() -> Self {
        DeviceProps {
            name: "Tesla M2090".to_string(),
            arch: Arch::Fermi,
            num_sms: 16,
            cores_per_sm: 32,
            clock_ghz: 1.3,
            mem_size_gb: 6.0,
            mem_bw_gbps: 177.0,
            smem_per_sm: 48 * 1024,
            regs_per_sm: 32768,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 5_000,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 12,
        }
    }

    /// GeForce GTX Titan X — Maxwell GM200 (Table 1 generation study).
    pub fn titan_x_maxwell() -> Self {
        DeviceProps {
            name: "Titan X (Maxwell)".to_string(),
            arch: Arch::Maxwell,
            num_sms: 24,
            cores_per_sm: 128,
            clock_ghz: 1.0,
            mem_size_gb: 12.0,
            mem_bw_gbps: 336.5,
            smem_per_sm: 96 * 1024,
            regs_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 4_000,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 24,
        }
    }

    /// Tesla V100 — Volta GV100 (Table 1 generation study).
    pub fn v100() -> Self {
        DeviceProps {
            name: "Tesla V100".to_string(),
            arch: Arch::Volta,
            num_sms: 80,
            cores_per_sm: 64,
            clock_ghz: 1.38,
            mem_size_gb: 16.0,
            mem_bw_gbps: 900.0,
            smem_per_sm: 96 * 1024,
            regs_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            warp_size: 32,
            launch_overhead_ns: 3_000,
            flops_per_cycle_per_core: 2.0,
            warps_for_peak: 12,
        }
    }

    /// One representative device per architecture generation that supports
    /// CUDA streams (Fermi → Volta), for generation-sweep experiments.
    pub fn generation_set() -> Vec<DeviceProps> {
        vec![
            Self::m2090(),
            Self::k40c(),
            Self::titan_x_maxwell(),
            Self::p100(),
            Self::titan_xp(),
            Self::v100(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_feature_rows() {
        assert!(!Arch::Tesla.features().cuda_streams);
        assert_eq!(Arch::Tesla.features().max_concurrent_kernels, 1);
        assert_eq!(Arch::Fermi.features().max_concurrent_kernels, 16);
        assert_eq!(Arch::Kepler.features().max_concurrent_kernels, 32);
        assert_eq!(Arch::Maxwell.features().max_concurrent_kernels, 16);
        assert_eq!(Arch::Pascal.features().max_concurrent_kernels, 128);
        assert_eq!(Arch::Volta.features().max_concurrent_kernels, 128);
        assert!(Arch::Volta.features().tensor_cores);
        assert!(!Arch::Pascal.features().tensor_cores);
        assert!(Arch::Pascal.features().unified_memory);
        assert!(!Arch::Kepler.features().unified_memory);
        assert!(Arch::Kepler.features().dynamic_parallelism);
        assert!(!Arch::Fermi.features().dynamic_parallelism);
    }

    #[test]
    fn table3_hardware_profile() {
        let k40 = DeviceProps::k40c();
        assert_eq!(k40.num_sms, 15);
        assert_eq!(k40.cores_per_sm, 192);
        assert_eq!(k40.smem_per_sm, 48 * 1024);
        assert_eq!(k40.concurrency_degree(), 32);

        let p100 = DeviceProps::p100();
        assert_eq!(p100.num_sms, 56);
        assert_eq!(p100.cores_per_sm, 64);
        assert_eq!(p100.smem_per_sm, 64 * 1024);
        assert_eq!(p100.concurrency_degree(), 128);

        let xp = DeviceProps::titan_xp();
        assert_eq!(xp.num_sms, 30);
        assert_eq!(xp.cores_per_sm, 128);
        assert_eq!(xp.concurrency_degree(), 128);
    }

    #[test]
    fn derived_quantities() {
        let p100 = DeviceProps::p100();
        // 64 cores * 2 flops * 1.189 GHz.
        let per_sm = p100.sm_peak_flops();
        assert!((per_sm - 64.0 * 2.0 * 1.189e9).abs() < 1.0);
        assert!((p100.device_peak_flops() - per_sm * 56.0).abs() < 1.0);
        assert_eq!(p100.max_warps_per_sm(), 64);
    }

    #[test]
    fn evaluation_set_matches_paper_order() {
        let devs = DeviceProps::evaluation_set();
        assert_eq!(devs.len(), 3);
        assert_eq!(devs[0].name, "Tesla K40C");
        assert_eq!(devs[1].name, "Tesla P100");
        assert_eq!(devs[2].name, "Titan XP");
    }

    #[test]
    fn generation_set_spans_fermi_to_volta() {
        let devs = DeviceProps::generation_set();
        assert_eq!(devs.len(), 6);
        let archs: Vec<Arch> = devs.iter().map(|d| d.arch).collect();
        assert_eq!(
            archs,
            vec![
                Arch::Fermi,
                Arch::Kepler,
                Arch::Maxwell,
                Arch::Pascal,
                Arch::Pascal,
                Arch::Volta
            ]
        );
        // Concurrency degrees follow Table 1.
        assert_eq!(devs[0].concurrency_degree(), 16);
        assert_eq!(devs[2].concurrency_degree(), 16);
        assert_eq!(devs[5].concurrency_degree(), 128);
        // All stream-capable.
        assert!(devs.iter().all(|d| d.arch.features().cuda_streams));
    }
}
