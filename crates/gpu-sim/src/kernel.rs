//! Kernel descriptions: launch configuration and cost model inputs.

use crate::device::DeviceProps;
use crate::SimTime;

/// A CUDA-style 3-dimensional extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// Build an explicit 3-D extent.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A 1-D extent `(n, 1, 1)`.
    pub fn linear(n: u32) -> Self {
        Dim3 { x: n, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub fn plane(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{},{}]", self.x, self.y, self.z)
    }
}

/// Kernel launch configuration: the "profiling input" notations of the
/// paper's Table 2 (`#β_K`, `τ_K`, `sm_K`, registers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Grid dimensions (total blocks = `#β_K`).
    pub grid: Dim3,
    /// Block dimensions (threads per block = `τ_K`).
    pub block: Dim3,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes.
    pub smem_static: u32,
    /// Dynamic shared memory per block in bytes.
    pub smem_dynamic: u32,
}

impl LaunchConfig {
    /// Launch config with static shared memory only.
    pub fn new(grid: Dim3, block: Dim3, regs_per_thread: u32, smem_static: u32) -> Self {
        LaunchConfig {
            grid,
            block,
            regs_per_thread,
            smem_static,
            smem_dynamic: 0,
        }
    }

    /// Total number of thread blocks (`#β_K`).
    pub fn num_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Threads per block (`τ_K`).
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Shared memory per block (`sm_K` = static + dynamic).
    pub fn smem_per_block(&self) -> u32 {
        self.smem_static + self.smem_dynamic
    }

    /// Registers used by one block.
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block()
    }
}

/// Per-block work of a kernel, driving the simulator's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations executed by one thread block.
    pub flops_per_block: f64,
    /// DRAM bytes moved (read + write) by one thread block.
    pub dram_bytes_per_block: f64,
}

impl KernelCost {
    /// Build a cost from per-block FLOPs and DRAM bytes.
    pub fn new(flops_per_block: f64, dram_bytes_per_block: f64) -> Self {
        KernelCost {
            flops_per_block,
            dram_bytes_per_block,
        }
    }

    /// Nominal (uncontended, alone-on-an-SM) execution time of one block
    /// on `dev`, in ns.
    ///
    /// Roofline-style. The compute rate reflects *latency-limited issue*:
    /// a lone block delivers only `warps_block / warps_for_peak` of the
    /// SM's peak until enough warps are co-resident to hide latency — the
    /// under-utilization that GLP4NN's concurrent kernels fill (and the
    /// reason the paper's model maximizes occupancy). The memory term
    /// assumes an uncontended fair share of device bandwidth per SM;
    /// contention on top of this is handled by [`crate::contention`] and
    /// by the engine's residency-aware burst timing.
    pub fn nominal_block_time_ns(&self, dev: &DeviceProps, threads_per_block: u32) -> SimTime {
        let warps = threads_per_block.div_ceil(dev.warp_size);
        let rate_c = dev.sm_peak_flops() * warps as f64 / warps.max(dev.warps_for_peak) as f64;
        let t_compute = if self.flops_per_block > 0.0 {
            self.flops_per_block / rate_c
        } else {
            0.0
        };
        // Uncontended per-SM bandwidth share.
        let bw_share = dev.mem_bw_gbps * 1e9 / dev.num_sms as f64;
        let t_mem = if self.dram_bytes_per_block > 0.0 {
            self.dram_bytes_per_block / bw_share
        } else {
            0.0
        };
        // Fixed per-block issue latency (~1 µs of scheduling/drain — the
        // floor below which real kernels never finish).
        const BLOCK_OVERHEAD_NS: f64 = 1000.0;
        let t = t_compute.max(t_mem) * 1e9 + BLOCK_OVERHEAD_NS;
        t.ceil() as SimTime
    }

    /// The block's nominal DRAM bandwidth demand in bytes/s (used by the
    /// contention model).
    pub fn bandwidth_demand(&self, dev: &DeviceProps, threads_per_block: u32) -> f64 {
        let t_ns = self.nominal_block_time_ns(dev, threads_per_block) as f64;
        if t_ns <= 0.0 {
            return 0.0;
        }
        self.dram_bytes_per_block / (t_ns * 1e-9)
    }
}

/// Identifier of a launched kernel instance within a [`crate::Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub(crate) u64);

impl KernelId {
    /// Raw index (launch order).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A kernel ready to be launched: name + configuration + cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel name as a profiler would report it (e.g. `im2col`, `sgemm`).
    pub name: String,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Per-block cost.
    pub cost: KernelCost,
    /// Opaque correlation tag (layer id, batch-chunk index...) carried into
    /// the timeline and the profiler records.
    pub tag: u64,
}

impl KernelDesc {
    /// Build a kernel description with tag 0.
    pub fn new(name: &str, launch: LaunchConfig, cost: KernelCost) -> Self {
        KernelDesc {
            name: name.to_string(),
            launch,
            cost,
            tag: 0,
        }
    }

    /// Attach a correlation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_helpers() {
        assert_eq!(Dim3::linear(18).count(), 18);
        assert_eq!(Dim3::plane(4, 5).count(), 20);
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::linear(7).to_string(), "[7,1,1]");
    }

    #[test]
    fn launch_config_derived() {
        let lc = LaunchConfig {
            grid: Dim3::plane(8, 4),
            block: Dim3::linear(256),
            regs_per_thread: 33,
            smem_static: 1024,
            smem_dynamic: 512,
        };
        assert_eq!(lc.num_blocks(), 32);
        assert_eq!(lc.threads_per_block(), 256);
        assert_eq!(lc.smem_per_block(), 1536);
        assert_eq!(lc.regs_per_block(), 33 * 256);
    }

    #[test]
    fn compute_bound_block_time_scales_with_flops() {
        let dev = DeviceProps::p100();
        let small = KernelCost::new(1.0e5, 0.0);
        let large = KernelCost::new(1.0e6, 0.0);
        let t1 = small.nominal_block_time_ns(&dev, 256);
        let t2 = large.nominal_block_time_ns(&dev, 256);
        assert!(t2 > t1 * 5, "t1={t1} t2={t2}");
    }

    #[test]
    fn narrow_block_cannot_saturate_sm() {
        // Same per-block flops: a 32-thread block must take longer than a
        // 1024-thread block on a wide SM.
        let dev = DeviceProps::k40c(); // 192 cores/SM
        let cost = KernelCost::new(5.0e5, 0.0);
        let narrow = cost.nominal_block_time_ns(&dev, 32);
        let wide = cost.nominal_block_time_ns(&dev, 1024);
        assert!(narrow > wide, "narrow={narrow} wide={wide}");
    }

    #[test]
    fn memory_bound_block_time_uses_bandwidth() {
        let dev = DeviceProps::p100();
        let cost = KernelCost::new(0.0, 1.0e6); // 1 MB per block, no flops
        let t = cost.nominal_block_time_ns(&dev, 256);
        // 1 MB over (549 GB/s / 56 SMs) ≈ 102 µs.
        let expected = 1.0e6 / (549.0e9 / 56.0) * 1e9;
        assert!((t as f64 - expected).abs() < expected * 0.1, "t={t}");
    }

    #[test]
    fn zero_cost_block_still_has_overhead() {
        let dev = DeviceProps::p100();
        let t = KernelCost::new(0.0, 0.0).nominal_block_time_ns(&dev, 128);
        assert!(t >= 500);
    }

    #[test]
    fn bandwidth_demand_is_bytes_over_time() {
        let dev = DeviceProps::p100();
        let cost = KernelCost::new(0.0, 1.0e6);
        let d = cost.bandwidth_demand(&dev, 256);
        let t = cost.nominal_block_time_ns(&dev, 256) as f64 * 1e-9;
        assert!((d - 1.0e6 / t).abs() < 1.0);
    }
}
