//! Kernel descriptions: launch configuration and cost model inputs.

use crate::device::DeviceProps;
use crate::SimTime;

/// A CUDA-style 3-dimensional extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// Build an explicit 3-D extent.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A 1-D extent `(n, 1, 1)`.
    pub fn linear(n: u32) -> Self {
        Dim3 { x: n, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub fn plane(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{},{}]", self.x, self.y, self.z)
    }
}

/// Kernel launch configuration: the "profiling input" notations of the
/// paper's Table 2 (`#β_K`, `τ_K`, `sm_K`, registers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Grid dimensions (total blocks = `#β_K`).
    pub grid: Dim3,
    /// Block dimensions (threads per block = `τ_K`).
    pub block: Dim3,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes.
    pub smem_static: u32,
    /// Dynamic shared memory per block in bytes.
    pub smem_dynamic: u32,
}

impl LaunchConfig {
    /// Launch config with static shared memory only.
    pub fn new(grid: Dim3, block: Dim3, regs_per_thread: u32, smem_static: u32) -> Self {
        LaunchConfig {
            grid,
            block,
            regs_per_thread,
            smem_static,
            smem_dynamic: 0,
        }
    }

    /// Total number of thread blocks (`#β_K`).
    pub fn num_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Threads per block (`τ_K`).
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Shared memory per block (`sm_K` = static + dynamic).
    pub fn smem_per_block(&self) -> u32 {
        self.smem_static + self.smem_dynamic
    }

    /// Registers used by one block.
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block()
    }
}

/// Per-block work of a kernel, driving the simulator's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations executed by one thread block.
    pub flops_per_block: f64,
    /// DRAM bytes moved (read + write) by one thread block.
    pub dram_bytes_per_block: f64,
}

impl KernelCost {
    /// Build a cost from per-block FLOPs and DRAM bytes.
    pub fn new(flops_per_block: f64, dram_bytes_per_block: f64) -> Self {
        KernelCost {
            flops_per_block,
            dram_bytes_per_block,
        }
    }

    /// Nominal (uncontended, alone-on-an-SM) execution time of one block
    /// on `dev`, in ns.
    ///
    /// Roofline-style. The compute rate reflects *latency-limited issue*:
    /// a lone block delivers only `warps_block / warps_for_peak` of the
    /// SM's peak until enough warps are co-resident to hide latency — the
    /// under-utilization that GLP4NN's concurrent kernels fill (and the
    /// reason the paper's model maximizes occupancy). The memory term
    /// assumes an uncontended fair share of device bandwidth per SM;
    /// contention on top of this is handled by [`crate::contention`] and
    /// by the engine's residency-aware burst timing.
    pub fn nominal_block_time_ns(&self, dev: &DeviceProps, threads_per_block: u32) -> SimTime {
        let warps = threads_per_block.div_ceil(dev.warp_size);
        let rate_c = dev.sm_peak_flops() * warps as f64 / warps.max(dev.warps_for_peak) as f64;
        let t_compute = if self.flops_per_block > 0.0 {
            self.flops_per_block / rate_c
        } else {
            0.0
        };
        // Uncontended per-SM bandwidth share.
        let bw_share = dev.mem_bw_gbps * 1e9 / dev.num_sms as f64;
        let t_mem = if self.dram_bytes_per_block > 0.0 {
            self.dram_bytes_per_block / bw_share
        } else {
            0.0
        };
        // Fixed per-block issue latency (~1 µs of scheduling/drain — the
        // floor below which real kernels never finish).
        const BLOCK_OVERHEAD_NS: f64 = 1000.0;
        let t = t_compute.max(t_mem) * 1e9 + BLOCK_OVERHEAD_NS;
        t.ceil() as SimTime
    }

    /// The block's nominal DRAM bandwidth demand in bytes/s (used by the
    /// contention model).
    pub fn bandwidth_demand(&self, dev: &DeviceProps, threads_per_block: u32) -> f64 {
        let t_ns = self.nominal_block_time_ns(dev, threads_per_block) as f64;
        if t_ns <= 0.0 {
            return 0.0;
        }
        self.dram_bytes_per_block / (t_ns * 1e-9)
    }
}

/// Identifier of a logical device buffer (a blob's data or diff, a column
/// workspace, a weight matrix...).
///
/// The simulator has no real memory, so buffers are pure names: a stable
/// 64-bit id derived from a human-readable label. Kernels declare which
/// byte ranges of which buffers they read and write ([`AccessSet`]); the
/// schedule sanitizer uses these declarations to prove dispatch plans
/// race-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

fn buffer_labels() -> &'static std::sync::Mutex<std::collections::HashMap<u64, String>> {
    static LABELS: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<u64, String>>> =
        std::sync::OnceLock::new();
    LABELS.get_or_init(Default::default)
}

impl BufferId {
    /// Stable id from a human-readable label (FNV-1a), remembering the
    /// label so diagnostics can print it back.
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        buffer_labels()
            .lock()
            .expect("buffer label registry poisoned")
            .entry(h)
            .or_insert_with(|| label.to_string());
        BufferId(h)
    }

    /// The label this id was created from, if any.
    pub fn label(self) -> Option<String> {
        buffer_labels()
            .lock()
            .expect("buffer label registry poisoned")
            .get(&self.0)
            .cloned()
    }
}

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.label() {
            Some(l) => write!(f, "{l}"),
            None => write!(f, "buf#{:016x}", self.0),
        }
    }
}

/// A half-open byte range `[start, end)` within a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl ByteRange {
    /// Range `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        debug_assert!(start <= end, "byte range start {start} > end {end}");
        ByteRange { start, end }
    }

    /// Range of `len` bytes starting at `start`.
    pub fn span(start: u64, len: u64) -> Self {
        ByteRange {
            start,
            end: start + len,
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }

    /// The intersection with `other`, if non-empty.
    pub fn intersect(self, other: ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }
}

impl std::fmt::Display for ByteRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// One declared access: a byte range of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Buffer touched.
    pub buffer: BufferId,
    /// Byte range touched.
    pub range: ByteRange,
}

/// A conflict between two [`AccessSet`]s: an overlapping byte range with
/// at least one side writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessConflict {
    /// Buffer both sides touch.
    pub buffer: BufferId,
    /// The overlapping byte range.
    pub overlap: ByteRange,
    /// Whether the first access set writes the overlap.
    pub first_writes: bool,
    /// Whether the second access set writes the overlap.
    pub second_writes: bool,
}

impl AccessConflict {
    /// Short hazard label: `write/write`, `write/read`, or `read/write`.
    pub fn hazard(&self) -> &'static str {
        match (self.first_writes, self.second_writes) {
            (true, true) => "write/write",
            (true, false) => "write/read",
            _ => "read/write",
        }
    }
}

/// Declared memory access set of a kernel: which byte ranges of which
/// buffers it reads and writes.
///
/// Declarations are a contract, not a simulation of memory: the sanitizer
/// trusts them to prove chunk regions disjoint and to detect races, the
/// same way CUDA stream-capture validators trust annotated buffers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessSet {
    /// Regions read.
    pub reads: Vec<MemAccess>,
    /// Regions written.
    pub writes: Vec<MemAccess>,
}

impl AccessSet {
    /// Whether nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// The first conflict (overlap with ≥ 1 write) between `self` and
    /// `other`, if any. Write/write conflicts are reported in preference
    /// to write/read ones.
    pub fn conflict_with(&self, other: &AccessSet) -> Option<AccessConflict> {
        let overlap = |a: &[MemAccess], b: &[MemAccess]| -> Option<(BufferId, ByteRange)> {
            for x in a {
                for y in b {
                    if x.buffer == y.buffer {
                        if let Some(o) = x.range.intersect(y.range) {
                            return Some((x.buffer, o));
                        }
                    }
                }
            }
            None
        };
        if let Some((buffer, o)) = overlap(&self.writes, &other.writes) {
            return Some(AccessConflict {
                buffer,
                overlap: o,
                first_writes: true,
                second_writes: true,
            });
        }
        if let Some((buffer, o)) = overlap(&self.writes, &other.reads) {
            return Some(AccessConflict {
                buffer,
                overlap: o,
                first_writes: true,
                second_writes: false,
            });
        }
        if let Some((buffer, o)) = overlap(&self.reads, &other.writes) {
            return Some(AccessConflict {
                buffer,
                overlap: o,
                first_writes: false,
                second_writes: true,
            });
        }
        None
    }

    /// Union of two access sets (used when kernels are fused).
    pub fn union(a: &AccessSet, b: &AccessSet) -> AccessSet {
        let mut out = a.clone();
        out.reads.extend(b.reads.iter().copied());
        out.writes.extend(b.writes.iter().copied());
        out
    }
}

/// Identifier of a launched kernel instance within a [`crate::Device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub(crate) u64);

impl KernelId {
    /// Raw index (launch order).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A kernel ready to be launched: name + configuration + cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel name as a profiler would report it (e.g. `im2col`, `sgemm`).
    pub name: String,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Per-block cost.
    pub cost: KernelCost,
    /// Opaque correlation tag (layer id, batch-chunk index...) carried into
    /// the timeline and the profiler records.
    pub tag: u64,
    /// Declared memory access set (empty = undeclared; the sanitizer can
    /// only reason about kernels that declare their accesses).
    pub accesses: AccessSet,
}

impl KernelDesc {
    /// Build a kernel description with tag 0 and no declared accesses.
    pub fn new(name: &str, launch: LaunchConfig, cost: KernelCost) -> Self {
        KernelDesc {
            name: name.to_string(),
            launch,
            cost,
            tag: 0,
            accesses: AccessSet::default(),
        }
    }

    /// Attach a correlation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Declare that the kernel reads `range` of `buffer`.
    pub fn reads(mut self, buffer: BufferId, range: ByteRange) -> Self {
        self.accesses.reads.push(MemAccess { buffer, range });
        self
    }

    /// Declare that the kernel writes `range` of `buffer`.
    pub fn writes(mut self, buffer: BufferId, range: ByteRange) -> Self {
        self.accesses.writes.push(MemAccess { buffer, range });
        self
    }

    /// Replace the whole declared access set.
    pub fn with_accesses(mut self, accesses: AccessSet) -> Self {
        self.accesses = accesses;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_helpers() {
        assert_eq!(Dim3::linear(18).count(), 18);
        assert_eq!(Dim3::plane(4, 5).count(), 20);
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::linear(7).to_string(), "[7,1,1]");
    }

    #[test]
    fn launch_config_derived() {
        let lc = LaunchConfig {
            grid: Dim3::plane(8, 4),
            block: Dim3::linear(256),
            regs_per_thread: 33,
            smem_static: 1024,
            smem_dynamic: 512,
        };
        assert_eq!(lc.num_blocks(), 32);
        assert_eq!(lc.threads_per_block(), 256);
        assert_eq!(lc.smem_per_block(), 1536);
        assert_eq!(lc.regs_per_block(), 33 * 256);
    }

    #[test]
    fn compute_bound_block_time_scales_with_flops() {
        let dev = DeviceProps::p100();
        let small = KernelCost::new(1.0e5, 0.0);
        let large = KernelCost::new(1.0e6, 0.0);
        let t1 = small.nominal_block_time_ns(&dev, 256);
        let t2 = large.nominal_block_time_ns(&dev, 256);
        assert!(t2 > t1 * 5, "t1={t1} t2={t2}");
    }

    #[test]
    fn narrow_block_cannot_saturate_sm() {
        // Same per-block flops: a 32-thread block must take longer than a
        // 1024-thread block on a wide SM.
        let dev = DeviceProps::k40c(); // 192 cores/SM
        let cost = KernelCost::new(5.0e5, 0.0);
        let narrow = cost.nominal_block_time_ns(&dev, 32);
        let wide = cost.nominal_block_time_ns(&dev, 1024);
        assert!(narrow > wide, "narrow={narrow} wide={wide}");
    }

    #[test]
    fn memory_bound_block_time_uses_bandwidth() {
        let dev = DeviceProps::p100();
        let cost = KernelCost::new(0.0, 1.0e6); // 1 MB per block, no flops
        let t = cost.nominal_block_time_ns(&dev, 256);
        // 1 MB over (549 GB/s / 56 SMs) ≈ 102 µs.
        let expected = 1.0e6 / (549.0e9 / 56.0) * 1e9;
        assert!((t as f64 - expected).abs() < expected * 0.1, "t={t}");
    }

    #[test]
    fn zero_cost_block_still_has_overhead() {
        let dev = DeviceProps::p100();
        let t = KernelCost::new(0.0, 0.0).nominal_block_time_ns(&dev, 128);
        assert!(t >= 500);
    }

    #[test]
    fn byte_ranges_intersect_half_open() {
        let a = ByteRange::new(0, 100);
        let b = ByteRange::span(100, 50);
        assert_eq!(a.intersect(b), None, "touching ranges do not overlap");
        let c = ByteRange::new(64, 128);
        assert_eq!(a.intersect(c), Some(ByteRange::new(64, 100)));
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
        assert_eq!(c.to_string(), "[64, 128)");
    }

    #[test]
    fn buffer_ids_are_stable_and_labelled() {
        let a = BufferId::from_label("conv1/out");
        let b = BufferId::from_label("conv1/out");
        assert_eq!(a, b);
        assert_ne!(a, BufferId::from_label("conv1/in"));
        assert_eq!(a.label().as_deref(), Some("conv1/out"));
        assert_eq!(a.to_string(), "conv1/out");
    }

    #[test]
    fn access_sets_report_conflicts_with_a_write() {
        let buf = BufferId::from_label("b");
        let w0 = AccessSet {
            reads: vec![],
            writes: vec![MemAccess {
                buffer: buf,
                range: ByteRange::new(0, 64),
            }],
        };
        let w1 = AccessSet {
            reads: vec![],
            writes: vec![MemAccess {
                buffer: buf,
                range: ByteRange::new(32, 96),
            }],
        };
        let r1 = AccessSet {
            reads: vec![MemAccess {
                buffer: buf,
                range: ByteRange::new(32, 96),
            }],
            writes: vec![],
        };
        let c = w0.conflict_with(&w1).unwrap();
        assert_eq!(c.hazard(), "write/write");
        assert_eq!(c.overlap, ByteRange::new(32, 64));
        assert_eq!(w0.conflict_with(&r1).unwrap().hazard(), "write/read");
        assert_eq!(r1.conflict_with(&w0).unwrap().hazard(), "read/write");
        assert_eq!(r1.conflict_with(&r1), None, "read/read never conflicts");
        // Disjoint writes of the same buffer do not conflict.
        let w2 = AccessSet {
            reads: vec![],
            writes: vec![MemAccess {
                buffer: buf,
                range: ByteRange::new(64, 128),
            }],
        };
        assert_eq!(w0.conflict_with(&w2), None);
    }

    #[test]
    fn kernel_desc_access_builders_accumulate() {
        let buf = BufferId::from_label("x");
        let k = KernelDesc::new(
            "k",
            LaunchConfig::new(Dim3::linear(1), Dim3::linear(64), 16, 0),
            KernelCost::new(1.0, 1.0),
        )
        .reads(buf, ByteRange::new(0, 8))
        .writes(buf, ByteRange::new(8, 16));
        assert_eq!(k.accesses.reads.len(), 1);
        assert_eq!(k.accesses.writes.len(), 1);
        let merged = AccessSet::union(&k.accesses, &k.accesses);
        assert_eq!(merged.reads.len(), 2);
        assert_eq!(merged.writes.len(), 2);
    }

    #[test]
    fn bandwidth_demand_is_bytes_over_time() {
        let dev = DeviceProps::p100();
        let cost = KernelCost::new(0.0, 1.0e6);
        let d = cost.bandwidth_demand(&dev, 256);
        let t = cost.nominal_block_time_ns(&dev, 256) as f64 * 1e-9;
        assert!((d - 1.0e6 / t).abs() < 1.0);
    }
}
