//! CUDA-style streams and events.
//!
//! A stream is an in-order FIFO of commands; different streams may run
//! their kernels concurrently. Events provide cross-stream ordering:
//! `record` completes when all prior work in its stream completes, and
//! `wait` blocks a stream until the awaited event completes. GLP4NN's
//! stream manager builds its *concurrent stream pool* and *default stream*
//! on these primitives.

use crate::kernel::KernelId;
use std::collections::VecDeque;

/// Identifier of a stream within a device. Stream 0 is the default stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// The default stream (stream 0).
    pub const DEFAULT: StreamId = StreamId(0);

    /// Raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the default stream.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of a recorded event within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Raw index.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Identifier of a peer-to-peer copy. Allocated by the
/// [`Fabric`](crate::fabric::Fabric), unique across all devices of a
/// fabric (unlike [`KernelId`]s / [`EventId`]s, which are per-device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CopyId(pub(crate) u64);

impl CopyId {
    /// Raw index (fabric-wide enqueue order).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One command in a stream's FIFO.
#[derive(Debug, Clone)]
pub enum Command {
    /// Launch a kernel (already assigned a [`KernelId`]; the descriptor
    /// lives in the device's kernel table).
    Launch(KernelId),
    /// Record `EventId`: completes when all prior work in this stream done.
    RecordEvent(EventId),
    /// Block this stream until `EventId` completes.
    WaitEvent(EventId),
    /// Source half of a peer-to-peer copy: when it reaches the stream
    /// front the transfer may start (the fabric schedules it on the link);
    /// the stream stays busy until the transfer completes.
    CopySrc(CopyId),
    /// Destination half of a peer-to-peer copy: blocks the stream until
    /// the transfer has arrived (a cross-device event wait).
    CopyDst(CopyId),
}

/// One entry of the device command log: every host-issued stream command
/// in issue order, plus [`Sync`](CmdRecord::Sync) markers for completed
/// device-wide barriers ([`crate::Device::run`]).
///
/// The log is what a CUPTI-style activity API would expose as the *driver
/// command trace*; the schedule sanitizer replays it with vector clocks to
/// reconstruct the happens-before order of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdRecord {
    /// A kernel launch was enqueued on `stream`.
    Launch {
        /// Target stream.
        stream: StreamId,
        /// Kernel instance id (index into the device's kernel table).
        kernel: KernelId,
    },
    /// An event record was enqueued on `stream`.
    RecordEvent {
        /// Recording stream.
        stream: StreamId,
        /// Event recorded.
        event: EventId,
    },
    /// A wait on `event` was enqueued on `stream`.
    WaitEvent {
        /// Waiting stream.
        stream: StreamId,
        /// Event awaited.
        event: EventId,
    },
    /// The source half of a peer-to-peer copy was enqueued on `stream`
    /// (this device reads the source buffer).
    CopySrc {
        /// Sending stream.
        stream: StreamId,
        /// Fabric-wide copy id.
        copy: CopyId,
    },
    /// The destination half of a peer-to-peer copy was enqueued on
    /// `stream` (this device's buffer is written when the copy lands).
    CopyDst {
        /// Receiving stream.
        stream: StreamId,
        /// Fabric-wide copy id.
        copy: CopyId,
    },
    /// A [`crate::Device::run`] episode completed: everything logged before
    /// this marker happened before everything logged after it.
    Sync,
}

/// Runtime state of one stream.
#[derive(Debug, Default)]
pub struct StreamState {
    /// Pending commands, front is next to execute.
    pub queue: VecDeque<Command>,
    /// A kernel from this stream currently executing (streams are in-order,
    /// so at most one).
    pub inflight: Option<KernelId>,
    /// A peer-to-peer copy sourced from this stream currently in transit
    /// (in-order: the stream is parked until the transfer completes).
    pub copy_inflight: Option<CopyId>,
    /// Simulated time when the stream last became idle.
    pub last_idle: u64,
}

impl StreamState {
    /// Whether the stream has no pending or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_none() && self.copy_inflight.is_none()
    }

    /// Whether the stream is blocked on fabric-scheduled copy traffic: a
    /// copy in transit, or a copy command at its front (resolved only by
    /// [`Fabric::run`](crate::fabric::Fabric::run), not [`Device::run`]).
    ///
    /// [`Device::run`]: crate::Device::run
    pub fn copy_parked(&self) -> bool {
        self.copy_inflight.is_some()
            || matches!(
                self.queue.front(),
                Some(Command::CopySrc(_)) | Some(Command::CopyDst(_))
            )
    }
}

/// Lifecycle of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventState {
    /// Created, not yet recorded into a stream.
    Created,
    /// Recorded; completes when prior stream work finishes.
    Pending,
    /// Completed at the contained simulated time.
    Completed(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_identity() {
        assert!(StreamId::DEFAULT.is_default());
        assert!(!StreamId(3).is_default());
        assert_eq!(StreamId(3).raw(), 3);
    }

    #[test]
    fn stream_state_idle() {
        let mut s = StreamState::default();
        assert!(s.is_idle());
        s.inflight = Some(KernelId(0));
        assert!(!s.is_idle());
        s.inflight = None;
        s.queue.push_back(Command::RecordEvent(EventId(0)));
        assert!(!s.is_idle());
    }
}
