//! Property tests for the discrete-event engine: stream FIFO order,
//! causality, determinism, and completeness over randomized workloads.

use gpu_sim::{Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandKernel {
    blocks: u32,
    threads_pow: u32, // threads = 32 << threads_pow
    flops: f64,
    bytes: f64,
    stream: usize,
}

fn arb_kernel(num_streams: usize) -> impl Strategy<Value = RandKernel> {
    (
        1u32..200,
        0u32..5,
        1.0e4..1.0e7f64,
        0.0..1.0e6f64,
        0..num_streams,
    )
        .prop_map(|(blocks, threads_pow, flops, bytes, stream)| RandKernel {
            blocks,
            threads_pow,
            flops,
            bytes,
            stream,
        })
}

fn run_workload(dev_props: DeviceProps, ks: &[RandKernel], num_streams: usize) -> Device {
    let mut dev = Device::new(dev_props);
    let streams: Vec<_> = (0..num_streams).map(|_| dev.create_stream()).collect();
    for (i, k) in ks.iter().enumerate() {
        let desc = KernelDesc::new(
            &format!("k{i}"),
            LaunchConfig::new(
                Dim3::linear(k.blocks),
                Dim3::linear(32 << k.threads_pow),
                16,
                0,
            ),
            KernelCost::new(k.flops, k.bytes),
        )
        .with_tag(i as u64);
        dev.launch(streams[k.stream], desc);
    }
    dev.run();
    dev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every launched kernel completes, and per-stream execution intervals
    /// never overlap (streams are in-order).
    #[test]
    fn streams_are_fifo_and_all_complete(
        ks in prop::collection::vec(arb_kernel(4), 1..24)
    ) {
        let dev = run_workload(DeviceProps::p100(), &ks, 4);
        prop_assert_eq!(dev.trace().len(), ks.len());
        // Group traces by stream in tag (launch) order.
        for sid in 0..6u32 {
            let mut in_stream: Vec<_> = dev
                .trace()
                .iter()
                .filter(|t| t.stream.raw() == sid)
                .collect();
            in_stream.sort_by_key(|t| t.tag);
            for w in in_stream.windows(2) {
                prop_assert!(
                    w[1].start_ns >= w[0].end_ns,
                    "stream {} kernels overlap: {:?} then {:?}",
                    sid, (w[0].start_ns, w[0].end_ns), (w[1].start_ns, w[1].end_ns)
                );
            }
        }
    }

    /// Causality: start ≥ launch-issue time; end > start; duration ≥ the
    /// single-block nominal time.
    #[test]
    fn causality_holds(ks in prop::collection::vec(arb_kernel(3), 1..16)) {
        let dev = run_workload(DeviceProps::k40c(), &ks, 3);
        for t in dev.trace() {
            prop_assert!(t.start_ns >= t.launch_ns);
            prop_assert!(t.end_ns > t.start_ns);
        }
    }

    /// Determinism: same workload twice gives identical timelines.
    #[test]
    fn deterministic(ks in prop::collection::vec(arb_kernel(4), 1..16)) {
        let a = run_workload(DeviceProps::titan_xp(), &ks, 4);
        let b = run_workload(DeviceProps::titan_xp(), &ks, 4);
        let ta: Vec<_> = a.trace().iter().map(|t| (t.tag, t.start_ns, t.end_ns)).collect();
        let tb: Vec<_> = b.trace().iter().map(|t| (t.tag, t.start_ns, t.end_ns)).collect();
        prop_assert_eq!(ta, tb);
    }

    /// Spreading the same kernels over more streams never makes the
    /// simulated makespan dramatically worse (allow contention-induced
    /// slack of 2x), and occupancy stays within [0, 1].
    #[test]
    fn more_streams_not_catastrophic(
        ks in prop::collection::vec(arb_kernel(1), 2..10)
    ) {
        let serial = run_workload(DeviceProps::p100(), &ks, 1);
        let mut spread = ks.clone();
        for (i, k) in spread.iter_mut().enumerate() { k.stream = i % 4; }
        let conc = run_workload(DeviceProps::p100(), &spread, 4);
        prop_assert!(conc.now() <= serial.now() * 2 + 1_000_000);
        let st = conc.stats();
        prop_assert!(st.avg_occupancy >= 0.0 && st.avg_occupancy <= 1.0 + 1e-9);
    }
}
