//! End-to-end fleet tests: determinism, request conservation, routing
//! policy behaviour, telemetry layout, and sanitized runs.

use fleet::{
    fabric_hetero12, fabric_uniform8, replica_pid, AutoscaleConfig, FleetConfig, FleetSim,
    LoadPhase, PriorityMix, RouterPolicy,
};
use sanitizer::SanitizeMode;
use telemetry::FLEET_PID;

fn small_cfg(router: RouterPolicy) -> FleetConfig {
    let mut cfg = FleetConfig::cifar10(fabric_uniform8(), router, PriorityMix::premium_heavy());
    cfg.rate_rps = 60_000.0;
    cfg.num_requests = 3_000;
    cfg
}

#[test]
fn two_runs_are_identical() {
    let run = || {
        FleetSim::new(small_cfg(RouterPolicy::JoinShortestQueue))
            .unwrap()
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.offered, 3_000);
    assert_eq!(a.completed + a.shed + a.expired, a.offered);
}

#[test]
fn all_policies_complete_the_trace_under_capacity() {
    for policy in RouterPolicy::all() {
        let r = FleetSim::new(small_cfg(policy)).unwrap().run();
        assert_eq!(r.offered, 3_000, "{}", policy.name());
        // 60k r/s on an 8x P100 fleet is well under saturation: nothing
        // should shed and every deadline class should attain its SLO.
        assert_eq!(r.shed + r.expired, 0, "{}", policy.name());
        assert!(r.slo_attainment == 1.0, "{}", policy.name());
        assert!(r.throughput_rps > 0.0 && r.makespan_ns > 0);
        assert!(r.mean_wave >= 1.0 && r.mean_wave <= 8.0);
    }
}

#[test]
fn heterogeneous_overload_separates_jsq_from_rr() {
    let run = |policy| {
        let mut cfg = FleetConfig::cifar10(fabric_hetero12(), policy, PriorityMix::premium_heavy());
        cfg.rate_rps = 160_000.0;
        cfg.num_requests = 20_000;
        FleetSim::new(cfg).unwrap().run()
    };
    let rr = run(RouterPolicy::RoundRobin);
    let jsq = run(RouterPolicy::JoinShortestQueue);
    // Past the K40Cs' share of capacity, load-blind round-robin must
    // shed/expire more and attain less than queue-aware routing.
    assert!(jsq.slo_attainment >= rr.slo_attainment);
    assert!(jsq.slo_attainment > 0.9 && rr.slo_attainment < 1.0);
    assert!(jsq.completed > rr.completed);
}

#[test]
fn sanitized_run_is_clean_and_cross_checked() {
    let mut cfg = small_cfg(RouterPolicy::Weighted);
    cfg.num_requests = 500;
    cfg.engine.sanitize = Some(SanitizeMode::Full);
    let r = FleetSim::new(cfg).unwrap().run();
    assert_eq!(r.sanitizer_reports, 0);
    assert_eq!(r.completed + r.shed + r.expired, 500);
}

#[test]
fn autoscaler_scales_up_then_down_and_charges_warmup() {
    let mut cfg = small_cfg(RouterPolicy::JoinShortestQueue);
    cfg.autoscale = Some(AutoscaleConfig::new(2, 8));
    cfg.load_phases = Some(vec![
        LoadPhase {
            num_requests: 4_000,
            rate_rps: 60_000.0,
        },
        LoadPhase {
            num_requests: 1_500,
            rate_rps: 3_000.0,
        },
    ]);
    let r = FleetSim::new(cfg).unwrap().run();
    assert!(r.scale_ups >= 1, "burst must add replicas");
    assert!(r.scale_downs >= 1, "trickle must retire replicas");
    assert!(r.warmup_total_ns > 0, "fresh spawns pay plan capture");
    assert!(r.peak_replicas > 2 && r.peak_replicas <= 8);
    assert_eq!(r.replicas, 2, "starts at the autoscale floor");
    assert_eq!(r.completed + r.shed + r.expired, r.offered);
}

#[test]
fn telemetry_uses_one_pid_per_replica() {
    let mut cfg = small_cfg(RouterPolicy::RoundRobin);
    cfg.num_requests = 200;
    let mut sim = FleetSim::new(cfg).unwrap();
    let rec = telemetry::shared(telemetry::Telemetry::new());
    sim.set_telemetry(rec.clone());
    let report = sim.run();
    {
        let mut guard = rec.lock().unwrap();
        sim.annotate_telemetry(&mut guard);
    }
    drop(sim);
    let t = std::sync::Arc::try_unwrap(rec)
        .unwrap()
        .into_inner()
        .unwrap();
    // Every replica contributed spans under its own pid, and fleet wave
    // spans live there too (device kernels at tid 0 of the same pid).
    let pids: std::collections::BTreeSet<u32> = t.spans().iter().map(|s| s.pid).collect();
    for slot in 0..8 {
        assert!(
            pids.contains(&replica_pid(slot)),
            "replica {slot} missing from trace"
        );
        assert!(replica_pid(slot) > FLEET_PID);
    }
    let waves = t
        .spans()
        .iter()
        .filter(|s| s.name.starts_with("wave x"))
        .count();
    assert!(waves > 0 && waves <= report.waves);
    // The export round-trips through the Chrome-trace validator.
    let json = t.chrome_trace();
    telemetry::validate_chrome_trace(&json).expect("fleet trace must validate");
}

#[test]
fn brownout_sheds_besteffort_to_protect_tight_deadlines() {
    // A deadline barely above one wave's service time: under load the
    // premium lane's windowed p99 blows past it, so the brownout
    // controller must drop the best-effort lane at a tick boundary.
    let mix = fleet::PriorityMix::new(
        "tight",
        vec![
            fleet::ClassSpec {
                name: "premium".into(),
                share: 0.5,
                deadline_ns: 2_000_000,
            },
            fleet::ClassSpec {
                name: "besteffort".into(),
                share: 0.5,
                deadline_ns: gpu_sim::SimTime::MAX,
            },
        ],
    );
    let mut cfg = FleetConfig::cifar10(fabric_uniform8(), RouterPolicy::JoinShortestQueue, mix);
    cfg.autoscale = Some(AutoscaleConfig::new(2, 2));
    cfg.rate_rps = 30_000.0;
    cfg.num_requests = 8_000;
    let r = FleetSim::new(cfg).unwrap().run();
    assert!(r.brownout_sheds > 0, "brownout controller must engage");
    // Every brownout shed hits the best-effort lane, never premium.
    assert_eq!(
        r.per_class[0].shed + r.per_class[0].expired + r.per_class[0].completed,
        r.per_class[0].offered
    );
    assert!(
        r.per_class[1].shed >= r.brownout_sheds,
        "brownout sheds land on the best-effort class"
    );
    assert_eq!(r.completed + r.shed + r.expired, r.offered);
}
