//! Request routing across replicas.
//!
//! All policies read replica load from the *live gauges* the fleet
//! publishes into its [`telemetry::MetricsRegistry`]
//! (`fleet.replica.{slot}.queue_depth` / `.inflight`) rather than from
//! private simulator state — the same numbers an operator's dashboard
//! would show, so the router can never act on information the telemetry
//! layer doesn't export.

use telemetry::MetricsRegistry;

/// Pluggable routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cycle through active replicas in slot order, load-blind.
    RoundRobin,
    /// Send to the replica with the fewest queued + inflight requests
    /// (ties to the lowest slot index).
    JoinShortestQueue,
    /// Join-shortest-*weighted*-queue: load is divided by the slot's
    /// relative peak-FLOPs capacity, so a Titan XP absorbs
    /// proportionally more than a K40C on a heterogeneous fabric.
    Weighted,
}

impl RouterPolicy {
    /// Short name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::JoinShortestQueue => "jsq",
            RouterPolicy::Weighted => "weighted",
        }
    }

    /// All policies, in report order.
    pub fn all() -> [RouterPolicy; 3] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::Weighted,
        ]
    }
}

/// The gauge name carrying replica `slot`'s queue depth.
pub fn queue_depth_gauge(slot: usize) -> String {
    format!("fleet.replica.{slot}.queue_depth")
}

/// The gauge name carrying replica `slot`'s inflight wave size.
pub fn inflight_gauge(slot: usize) -> String {
    format!("fleet.replica.{slot}.inflight")
}

/// A router instance (owns the round-robin cursor and a per-slot gauge
/// name cache — gauge lookups happen once per arrival per replica, so
/// re-formatting the names each time would dominate the loop).
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    rr_next: usize,
    gauge_names: Vec<(String, String)>,
}

impl Router {
    /// A router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Router {
            policy,
            rr_next: 0,
            gauge_names: Vec::new(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    fn ensure_names(&mut self, slot: usize) {
        while self.gauge_names.len() <= slot {
            let s = self.gauge_names.len();
            self.gauge_names
                .push((queue_depth_gauge(s), inflight_gauge(s)));
        }
    }

    /// Replica `slot`'s queued + inflight load according to the gauges.
    fn load(&self, metrics: &MetricsRegistry, slot: usize) -> f64 {
        let (depth, inflight) = &self.gauge_names[slot];
        metrics.gauge(depth).unwrap_or(0.0) + metrics.gauge(inflight).unwrap_or(0.0)
    }

    /// Pick a replica among `active` slots.
    ///
    /// `weights[slot]` is the slot's relative capacity (peak FLOPs,
    /// normalized or not — only ratios matter) and `metrics` holds the
    /// live load gauges. Deterministic: ties break to the earliest slot
    /// in `active`.
    ///
    /// # Panics
    /// Panics if `active` is empty.
    pub fn route(&mut self, active: &[usize], metrics: &MetricsRegistry, weights: &[f64]) -> usize {
        assert!(!active.is_empty(), "routing with no active replicas");
        if let Some(&max_slot) = active.iter().max() {
            self.ensure_names(max_slot);
        }
        match self.policy {
            RouterPolicy::RoundRobin => {
                let slot = active[self.rr_next % active.len()];
                self.rr_next = self.rr_next.wrapping_add(1);
                slot
            }
            RouterPolicy::JoinShortestQueue => pick_min(active, |slot| self.load(metrics, slot)),
            RouterPolicy::Weighted => pick_min(active, |slot| {
                // +1 so an empty fast device still beats an empty slow
                // one instead of tying at zero.
                (self.load(metrics, slot) + 1.0) / weights[slot].max(f64::MIN_POSITIVE)
            }),
        }
    }
}

/// The slot minimizing `score`, first-wins on ties (stable because
/// `active` is iterated in order).
fn pick_min(active: &[usize], score: impl Fn(usize) -> f64) -> usize {
    let mut best = active[0];
    let mut best_score = score(best);
    for &slot in &active[1..] {
        let s = score(slot);
        if s < best_score {
            best = slot;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_loads(loads: &[(usize, f64, f64)]) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for &(slot, depth, inflight) in loads {
            m.gauge_set(&queue_depth_gauge(slot), depth);
            m.gauge_set(&inflight_gauge(slot), inflight);
        }
        m
    }

    #[test]
    fn round_robin_cycles_active_slots() {
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let m = MetricsRegistry::new();
        let w = [1.0; 4];
        let picks: Vec<usize> = (0..6).map(|_| r.route(&[0, 2, 3], &m, &w)).collect();
        assert_eq!(picks, [0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn jsq_reads_live_gauges_and_breaks_ties_low() {
        let mut r = Router::new(RouterPolicy::JoinShortestQueue);
        let m = metrics_with_loads(&[(0, 5.0, 8.0), (1, 2.0, 8.0), (2, 2.0, 8.0)]);
        // Slots 1 and 2 tie on load 10; the earlier slot wins.
        assert_eq!(r.route(&[0, 1, 2], &m, &[1.0; 3]), 1);
        // A missing gauge reads as zero load.
        assert_eq!(r.route(&[0, 1, 7], &m, &[1.0; 8]), 7);
    }

    #[test]
    fn weighted_prefers_faster_devices_at_equal_load() {
        let mut r = Router::new(RouterPolicy::Weighted);
        let m = metrics_with_loads(&[(0, 4.0, 0.0), (1, 4.0, 0.0)]);
        // Same load, slot 1 twice the capacity: route there.
        assert_eq!(r.route(&[0, 1], &m, &[1.0, 2.0]), 1);
        // Even empty, a faster device wins the tie on score (0+1)/w.
        let empty = MetricsRegistry::new();
        assert_eq!(r.route(&[0, 1], &empty, &[1.0, 2.0]), 1);
        // But enough load flips it back: (9+1)/2 > (4+1)/1? 5 == 5 →
        // first-wins tie; one more request breaks it.
        let m2 = metrics_with_loads(&[(0, 4.0, 0.0), (1, 10.0, 0.0)]);
        assert_eq!(r.route(&[0, 1], &m2, &[1.0, 2.0]), 0);
    }
}
