//! One serving replica: an engine on a fabric slot plus its admission
//! queue and lifecycle state.

use gpu_sim::SimTime;
use serve::{ClassQueue, ClassedRequest, ServingEngine};

/// A replica's place in the fleet: its engine (one simulated device),
/// class-aware admission queue, and the event-loop state the fleet
/// scheduler drives.
pub struct Replica {
    /// Fabric slot index (also the device model index and trace pid
    /// offset).
    pub slot: usize,
    /// The serving engine (owns the simulated device).
    pub engine: ServingEngine,
    /// Class-aware admission queue.
    pub queue: ClassQueue,
    /// The wave currently executing on the device (empty while warming).
    pub inflight: Vec<ClassedRequest>,
    /// Whether the engine is executing a wave (or warming up).
    pub busy: bool,
    /// When the current wave (or warmup) completes; meaningful while
    /// [`busy`](Replica::busy).
    pub busy_until: SimTime,
    /// Pending delay-trigger wakeup for an idle replica with queued work.
    pub wake_at: Option<SimTime>,
    /// Whether the router may send new requests here. Inactive replicas
    /// still drain their queue.
    pub active: bool,
    /// Scale-down in progress: finish queued work, then sit idle.
    pub draining: bool,
    /// Waves dispatched.
    pub waves: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Simulated time spent in warmup (plan capture), charged at spawn.
    pub warmup_ns: SimTime,
}

impl Replica {
    /// Queued plus inflight requests — the load number the router sees
    /// through the gauges.
    pub fn load(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Whether this replica holds no work at all.
    pub fn is_quiescent(&self) -> bool {
        !self.busy && self.queue.is_empty() && self.inflight.is_empty()
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("slot", &self.slot)
            .field("queued", &self.queue.len())
            .field("inflight", &self.inflight.len())
            .field("busy", &self.busy)
            .field("active", &self.active)
            .field("waves", &self.waves)
            .field("served", &self.served)
            .finish()
    }
}
