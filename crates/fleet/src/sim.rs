//! The fleet event loop: one simulated clock driving N replicas.
//!
//! The loop processes four event kinds in deterministic order — wave
//! completions, request arrivals, delay-trigger wakeups, controller
//! ticks — always at the globally earliest timestamp, with fixed
//! tie-breaks (completions before arrivals before wakeups before ticks;
//! lowest slot / lowest request id within a kind). Everything downstream
//! (routing, brownout, autoscaling) reads state produced by this
//! ordering, so two runs of the same [`FleetConfig`] are identical.

use crate::config::FleetConfig;
use crate::replica::Replica;
use crate::report::{ClassReport, FleetReport};
use crate::router::{inflight_gauge, queue_depth_gauge, Router};
use gpu_sim::{Fabric, SimTime};
use nn::models::UnknownModelError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sanitizer::Sanitizer;
use serve::{
    Admission, BatchDecision, ClassQueue, ClassedRequest, EngineOptions, PoissonArrivals,
    ServeConfig, ServingEngine,
};
use telemetry::{MetricsRegistry, SharedRecorder, FLEET_PID};

/// Ticks without an SLO violation before the brownout controller
/// re-admits a previously shed class.
const BROWNOUT_RECOVER_TICKS: u32 = 3;

/// Per-class outcome accumulators.
#[derive(Debug, Clone, Default)]
struct ClassOutcome {
    offered: usize,
    completed: usize,
    attained: usize,
    shed: usize,
    expired: usize,
    latency: telemetry::Histogram,
    /// Latencies observed since the last controller tick (brownout
    /// window).
    window: Vec<u64>,
}

/// A multi-replica serving fleet on one simulated clock.
///
/// Build with [`FleetSim::new`] (spawns and warms the initial
/// replicas), optionally attach telemetry, then [`run`](FleetSim::run)
/// once to completion.
pub struct FleetSim {
    cfg: FleetConfig,
    router: Router,
    /// Live fleet metrics — the gauges the router reads, plus counters.
    /// Always on (cheap), independent of trace recording.
    metrics: MetricsRegistry,
    recorder: Option<SharedRecorder>,
    /// One entry per fabric slot; `None` until the slot is spawned.
    replicas: Vec<Option<Replica>>,
    /// Per-slot relative capacity (peak FLOPs of the slot's model).
    weights: Vec<f64>,
    /// Cached gauge names per slot (hot path).
    gauge_names: Vec<(String, String)>,
    outcomes: Vec<ClassOutcome>,
    /// Brownout state: only classes `< admit_classes` are admitted.
    admit_classes: usize,
    clean_ticks: u32,
    brownout_sheds: usize,
    up_streak: u32,
    down_streak: u32,
    scale_ups: usize,
    scale_downs: usize,
    peak_active: usize,
    warmup_total_ns: SimTime,
    total_waves: usize,
    total_wave_requests: usize,
    last_done_ns: SimTime,
    /// Cross-device sanitizer (active when the engines sanitize).
    cross_sanitizer: Option<Sanitizer>,
    /// Measurement origin: all initial replicas warm by this time.
    t0: SimTime,
}

impl FleetSim {
    /// Build the fleet: spawn the initial replicas (warmup runs now, on
    /// each replica's own device clock) and set the measurement origin
    /// to the latest warmup completion.
    pub fn new(cfg: FleetConfig) -> Result<Self, UnknownModelError> {
        let slots = cfg.num_slots();
        let weights: Vec<f64> = (0..slots).map(|i| cfg.fabric.slot_peak_flops(i)).collect();
        let gauge_names: Vec<(String, String)> = (0..slots)
            .map(|i| (queue_depth_gauge(i), inflight_gauge(i)))
            .collect();
        let cross_sanitizer = cfg.engine.sanitize.map(Sanitizer::new);
        let mut sim = FleetSim {
            router: Router::new(cfg.router),
            metrics: MetricsRegistry::new(),
            recorder: None,
            replicas: (0..slots).map(|_| None).collect(),
            weights,
            gauge_names,
            outcomes: vec![ClassOutcome::default(); cfg.mix.num_classes()],
            admit_classes: cfg.mix.num_classes(),
            clean_ticks: 0,
            brownout_sheds: 0,
            up_streak: 0,
            down_streak: 0,
            scale_ups: 0,
            scale_downs: 0,
            peak_active: 0,
            warmup_total_ns: 0,
            total_waves: 0,
            total_wave_requests: 0,
            last_done_ns: 0,
            cross_sanitizer,
            t0: 0,
            cfg,
        };
        for slot in 0..sim.cfg.initial_replicas() {
            let r = sim.spawn_replica(slot)?;
            sim.t0 = sim.t0.max(r.warmup_ns);
            sim.replicas[slot] = Some(r);
            sim.publish_gauges(slot);
        }
        sim.last_done_ns = sim.t0;
        sim.peak_active = sim.cfg.initial_replicas();
        Ok(sim)
    }

    /// Build (but do not install) a replica for `slot`: engine plus
    /// warmup. The fresh device's clock equals the warmup duration when
    /// this returns — the plan-capture cost charged to the spawner.
    fn spawn_replica(&self, slot: usize) -> Result<Replica, UnknownModelError> {
        let serve_cfg = ServeConfig {
            device: self.cfg.fabric.slot(slot).clone(),
            mode: self.cfg.mode,
            model: self.cfg.model.clone(),
            rate_rps: self.cfg.rate_rps,
            num_requests: self.cfg.num_requests,
            policy: self.cfg.policy,
            queue_capacity: self.cfg.queue_capacity,
            seed: self.cfg.seed,
        };
        let opts = EngineOptions {
            timing_only: self.cfg.engine.timing_only,
            sanitize: self.cfg.engine.sanitize,
        };
        let mut engine = ServingEngine::new_with(&serve_cfg, opts)?;
        engine.warmup(self.cfg.policy.max_batch);
        if let Some(rec) = &self.recorder {
            engine.set_telemetry_as(std::sync::Arc::clone(rec), replica_pid(slot));
        }
        let warmup_ns = engine.now();
        Ok(Replica {
            slot,
            engine,
            queue: ClassQueue::new(self.cfg.mix.num_classes(), self.cfg.queue_capacity),
            inflight: Vec::new(),
            busy: false,
            busy_until: 0,
            wake_at: None,
            active: true,
            draining: false,
            waves: 0,
            served: 0,
            warmup_ns,
        })
    }

    /// Attach a shared trace recorder: each replica's device records
    /// kernel spans under its own pid ([`replica_pid`]), the fleet
    /// records wave spans there too, and control events (routing
    /// brownout, scaling) land under [`FLEET_PID`].
    pub fn set_telemetry(&mut self, rec: SharedRecorder) {
        for r in self.replicas.iter_mut().flatten() {
            r.engine
                .set_telemetry_as(std::sync::Arc::clone(&rec), replica_pid(r.slot));
        }
        self.recorder = Some(rec);
    }

    /// Name the fleet's processes/threads in an export target (call once
    /// before exporting a trace recorded through
    /// [`set_telemetry`](FleetSim::set_telemetry)).
    pub fn annotate_telemetry(&self, t: &mut telemetry::Telemetry) {
        t.set_process_name(FLEET_PID, "fleet");
        t.set_thread_name(FLEET_PID, 0, "control");
        for r in self.replicas.iter().flatten() {
            let pid = replica_pid(r.slot);
            t.set_process_name(
                pid,
                &format!("replica.{} ({})", r.slot, self.cfg.fabric.slot(r.slot).name),
            );
            t.set_thread_name(pid, 0, "waves");
        }
    }

    /// The fleet's live metrics registry (router gauges, counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The configuration this fleet runs.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    fn publish_gauges(&mut self, slot: usize) {
        let (queued, inflight) = match &self.replicas[slot] {
            Some(r) => (r.queue.len(), r.inflight.len()),
            None => (0, 0),
        };
        let (depth_name, inflight_name) = &self.gauge_names[slot];
        self.metrics.gauge_set(depth_name, queued as f64);
        self.metrics.gauge_set(inflight_name, inflight as f64);
    }

    fn instant(&mut self, name: &str, t: SimTime) {
        if let Some(rec) = &self.recorder {
            let mut guard = rec.lock().unwrap_or_else(|p| p.into_inner());
            guard.instant(FLEET_PID, 0, name, "fleet", t);
        }
    }

    /// Slots the router may currently target.
    fn active_slots(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .flatten()
            .filter(|r| r.active)
            .map(|r| r.slot)
            .collect()
    }

    /// Generate the run's request trace: Poisson arrivals from the
    /// measurement origin, each tagged with a class drawn from the mix's
    /// shares and an absolute deadline.
    fn generate_requests(&self) -> Vec<ClassedRequest> {
        let mut base = match &self.cfg.load_phases {
            Some(phases) => {
                // Phases run back to back: each picks up the simulated
                // clock (and a fresh sub-seed) where the last left off.
                let mut all = Vec::new();
                let mut origin = self.t0;
                for (i, phase) in phases.iter().enumerate() {
                    let mut arrivals =
                        PoissonArrivals::new(phase.rate_rps, origin, self.cfg.seed ^ i as u64);
                    all.extend(arrivals.take(phase.num_requests));
                    origin = all
                        .last()
                        .map(|r: &serve::Request| r.arrival_ns)
                        .unwrap_or(origin);
                }
                all
            }
            None => PoissonArrivals::new(self.cfg.rate_rps, self.t0, self.cfg.seed)
                .take(self.cfg.num_requests),
        };
        for (i, r) in base.iter_mut().enumerate() {
            r.id = i as u64;
        }
        // Separate stream for class draws so arrival timing and class
        // assignment stay independently seeded.
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5DEE_CE66_D123_4567);
        base.iter()
            .map(|r| {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut class = self.cfg.mix.num_classes() - 1;
                for (i, c) in self.cfg.mix.classes.iter().enumerate() {
                    acc += c.share;
                    if u < acc {
                        class = i;
                        break;
                    }
                }
                let rel = self.cfg.mix.classes[class].deadline_ns;
                let deadline_ns = if rel == SimTime::MAX {
                    SimTime::MAX
                } else {
                    r.arrival_ns + rel
                };
                ClassedRequest {
                    id: r.id,
                    class,
                    arrival_ns: r.arrival_ns,
                    deadline_ns,
                }
            })
            .collect()
    }

    /// Try to close the next wave on `slot` at time `now`.
    fn maybe_dispatch(&mut self, slot: usize, now: SimTime, just_drained: bool) {
        let num_classes = self.cfg.mix.num_classes();
        let policy = self.cfg.policy;
        let r = self.replicas[slot]
            .as_mut()
            .expect("dispatch on empty slot");
        for dead in r.queue.expire(now) {
            debug_assert!(dead.class < num_classes);
            self.outcomes[dead.class].expired += 1;
        }
        let r = self.replicas[slot]
            .as_mut()
            .expect("dispatch on empty slot");
        let decision =
            policy.decide_continuous(now, r.queue.len(), r.queue.oldest_arrival(), just_drained);
        match decision {
            BatchDecision::Fire(k) => {
                let wave = r.queue.pop_wave(k);
                let ids: Vec<u64> = wave.iter().map(|q| q.id).collect();
                let timing = r.engine.run_wave(&ids, now);
                r.busy = true;
                r.busy_until = timing.done_ns;
                r.inflight = wave;
                r.wake_at = None;
                r.waves += 1;
                self.total_waves += 1;
                self.total_wave_requests += ids.len();
                self.metrics.counter_add("fleet.waves", 1);
                if let Some(rec) = &self.recorder {
                    let mut guard = rec.lock().unwrap_or_else(|p| p.into_inner());
                    guard.span(
                        replica_pid(slot),
                        0,
                        &format!("wave x{}", ids.len()),
                        "fleet",
                        timing.start_ns,
                        timing.done_ns,
                    );
                    guard.observe("fleet.wave_size", ids.len() as u64);
                }
            }
            BatchDecision::WaitUntil(deadline) => r.wake_at = Some(deadline),
            BatchDecision::Idle => r.wake_at = None,
        }
        self.publish_gauges(slot);
    }

    /// Retire `slot`'s wave at time `t`: account completions, then close
    /// the next wave immediately (work-conserving continuous batching).
    fn complete_wave(&mut self, slot: usize, t: SimTime) {
        let r = self.replicas[slot]
            .as_mut()
            .expect("completion on empty slot");
        r.busy = false;
        let wave = std::mem::take(&mut r.inflight);
        r.served += wave.len();
        if !wave.is_empty() {
            self.last_done_ns = self.last_done_ns.max(t);
            self.metrics
                .counter_add("fleet.completed", wave.len() as u64);
        }
        for req in &wave {
            let out = &mut self.outcomes[req.class];
            out.completed += 1;
            if t <= req.deadline_ns {
                out.attained += 1;
            }
            let latency = t - req.arrival_ns;
            out.latency.record(latency);
            out.window.push(latency);
        }
        self.maybe_dispatch(slot, t, true);
    }

    /// Route and admit one arrival.
    fn on_arrival(&mut self, req: ClassedRequest) {
        self.outcomes[req.class].offered += 1;
        if req.class >= self.admit_classes {
            // Brownout: the SLO controller is shedding this class.
            self.outcomes[req.class].shed += 1;
            self.brownout_sheds += 1;
            self.metrics.counter_add("fleet.brownout_shed", 1);
            return;
        }
        let active = self.active_slots();
        let slot = self.router.route(&active, &self.metrics, &self.weights);
        let now = req.arrival_ns;
        let r = self.replicas[slot].as_mut().expect("routed to empty slot");
        match r.queue.admit(req) {
            Admission::Admitted => {}
            Admission::Preempted(victim) => {
                self.outcomes[victim.class].shed += 1;
                self.metrics.counter_add("fleet.preempted", 1);
            }
            Admission::Shed(back) => {
                self.outcomes[back.class].shed += 1;
                self.metrics.counter_add("fleet.shed", 1);
            }
        }
        self.publish_gauges(slot);
        let busy = self.replicas[slot].as_ref().map(|r| r.busy).unwrap_or(true);
        if !busy {
            self.maybe_dispatch(slot, now, false);
        }
    }

    /// Brownout controller: compare each admitted class's windowed p99
    /// against its deadline; shed the lowest-priority lane on violation,
    /// restore one lane after [`BROWNOUT_RECOVER_TICKS`] clean ticks.
    fn brownout_tick(&mut self, t: SimTime) {
        let mut violated = false;
        for (c, spec) in self.cfg.mix.classes.iter().enumerate() {
            if c >= self.admit_classes || spec.deadline_ns == SimTime::MAX {
                continue;
            }
            let window = &mut self.outcomes[c].window;
            if window.is_empty() {
                continue;
            }
            window.sort_unstable();
            let p99 = telemetry::percentile_of_sorted(window, 99.0);
            if p99 > spec.deadline_ns {
                violated = true;
            }
        }
        for out in &mut self.outcomes {
            out.window.clear();
        }
        if violated {
            self.clean_ticks = 0;
            if self.admit_classes > 1 {
                self.admit_classes -= 1;
                self.metrics.counter_add("fleet.brownout_steps", 1);
                self.instant(&format!("brownout:shed-class{}", self.admit_classes), t);
            }
        } else {
            self.clean_ticks += 1;
            if self.clean_ticks >= BROWNOUT_RECOVER_TICKS
                && self.admit_classes < self.cfg.mix.num_classes()
            {
                self.instant(&format!("brownout:restore-class{}", self.admit_classes), t);
                self.admit_classes += 1;
                self.clean_ticks = 0;
            }
        }
    }

    /// Queue-depth autoscaler with hysteresis.
    fn autoscale_tick(&mut self, t: SimTime) {
        let Some(auto) = self.cfg.autoscale else {
            return;
        };
        let active = self.active_slots();
        let mean_depth = active
            .iter()
            .map(|&s| self.replicas[s].as_ref().map_or(0, Replica::load))
            .sum::<usize>() as f64
            / active.len().max(1) as f64;
        self.metrics.gauge_set("fleet.mean_depth", mean_depth);
        if mean_depth > auto.high_watermark {
            self.up_streak += 1;
            self.down_streak = 0;
        } else if mean_depth < auto.low_watermark {
            self.down_streak += 1;
            self.up_streak = 0;
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
        let max = auto.max_replicas.min(self.cfg.num_slots());
        if self.up_streak >= auto.up_after && active.len() < max {
            self.up_streak = 0;
            self.scale_up(t);
        }
        if self.down_streak >= auto.down_after && active.len() > auto.min_replicas {
            self.down_streak = 0;
            self.scale_down(t);
        }
        let now_active = self.active_slots().len();
        self.peak_active = self.peak_active.max(now_active);
        self.metrics
            .gauge_set("fleet.active_replicas", now_active as f64);
    }

    fn scale_up(&mut self, t: SimTime) {
        // Prefer re-activating a drained (still warm) replica — its
        // plans are cached, so the restart is free. Otherwise spawn a
        // fresh one and charge the warmup (plan capture) now.
        if let Some(r) = self.replicas.iter_mut().flatten().find(|r| !r.active) {
            r.active = true;
            r.draining = false;
            let slot = r.slot;
            self.scale_ups += 1;
            self.metrics.counter_add("fleet.scale_ups", 1);
            self.instant(&format!("scale-up:reuse-slot{slot}"), t);
            return;
        }
        let Some(slot) = self.replicas.iter().position(Option::is_none) else {
            return;
        };
        let mut replica = self
            .spawn_replica(slot)
            .expect("model resolved at construction");
        let warmup = replica.warmup_ns;
        // The new replica is busy capturing plans until t + warmup.
        replica.busy = true;
        replica.busy_until = t + warmup;
        self.warmup_total_ns += warmup;
        self.replicas[slot] = Some(replica);
        self.publish_gauges(slot);
        self.scale_ups += 1;
        self.metrics.counter_add("fleet.scale_ups", 1);
        self.instant(&format!("scale-up:spawn-slot{slot}"), t);
        if let Some(rec) = &self.recorder {
            let mut guard = rec.lock().unwrap_or_else(|p| p.into_inner());
            guard.span(
                replica_pid(slot),
                0,
                "warmup (plan capture)",
                "fleet",
                t,
                t + warmup,
            );
        }
    }

    fn scale_down(&mut self, t: SimTime) {
        // Retire the highest-slot active replica: stop routing to it and
        // let it drain.
        let Some(slot) = self.active_slots().into_iter().max() else {
            return;
        };
        let r = self.replicas[slot].as_mut().expect("active slot exists");
        r.active = false;
        r.draining = true;
        self.scale_downs += 1;
        self.metrics.counter_add("fleet.scale_downs", 1);
        self.instant(&format!("scale-down:slot{slot}"), t);
    }

    /// Run the fleet to completion over the configured request trace and
    /// summarize. Consumes all simulated work: on return every queue is
    /// empty and every replica idle.
    pub fn run(&mut self) -> FleetReport {
        let requests = self.generate_requests();
        let first_arrival = requests.first().map(|r| r.arrival_ns).unwrap_or(self.t0);
        let mut next_arrival = 0usize;
        let mut next_tick = self.t0 + self.cfg.tick_ns;

        loop {
            let t_done = self
                .replicas
                .iter()
                .flatten()
                .filter(|r| r.busy)
                .map(|r| r.busy_until)
                .min();
            let t_arr = requests.get(next_arrival).map(|r| r.arrival_ns);
            let t_wake = self
                .replicas
                .iter()
                .flatten()
                .filter(|r| !r.busy)
                .filter_map(|r| r.wake_at)
                .min();
            if t_done.is_none() && t_arr.is_none() && t_wake.is_none() {
                debug_assert!(self.replicas.iter().flatten().all(Replica::is_quiescent));
                break;
            }
            let mut t = SimTime::MAX;
            for cand in [t_done, t_arr, t_wake, Some(next_tick)]
                .into_iter()
                .flatten()
            {
                t = t.min(cand);
            }

            // 1. Wave completions (lowest slot first).
            if t_done == Some(t) {
                for slot in 0..self.replicas.len() {
                    let due = self.replicas[slot]
                        .as_ref()
                        .is_some_and(|r| r.busy && r.busy_until == t);
                    if due {
                        self.complete_wave(slot, t);
                    }
                }
            }
            // 2. Arrivals (in id order).
            while next_arrival < requests.len() && requests[next_arrival].arrival_ns == t {
                self.on_arrival(requests[next_arrival]);
                next_arrival += 1;
            }
            // 3. Delay-trigger wakeups (lowest slot first).
            for slot in 0..self.replicas.len() {
                let due = self.replicas[slot]
                    .as_ref()
                    .is_some_and(|r| !r.busy && r.wake_at == Some(t));
                if due {
                    self.replicas[slot].as_mut().unwrap().wake_at = None;
                    self.maybe_dispatch(slot, t, false);
                }
            }
            // 4. Controller tick.
            if t == next_tick {
                self.brownout_tick(t);
                self.autoscale_tick(t);
                next_tick = t + self.cfg.tick_ns;
            }
        }

        self.finish_report(first_arrival)
    }

    fn finish_report(&mut self, first_arrival: SimTime) -> FleetReport {
        // Conservation: every offered request has exactly one fate.
        let offered: usize = self.outcomes.iter().map(|o| o.offered).sum();
        let completed: usize = self.outcomes.iter().map(|o| o.completed).sum();
        let shed: usize = self.outcomes.iter().map(|o| o.shed).sum();
        let expired: usize = self.outcomes.iter().map(|o| o.expired).sum();
        assert_eq!(
            completed + shed + expired,
            offered,
            "request conservation violated"
        );

        // Cross-device sanitize over every spawned replica's command log.
        let sanitizer_reports = self.run_sanitizers();

        let mut all_latency: Vec<u64> = Vec::with_capacity(completed);
        for o in &self.outcomes {
            all_latency.extend_from_slice(o.latency.values());
        }
        all_latency.sort_unstable();
        let pct = |p: f64| {
            if all_latency.is_empty() {
                0
            } else {
                telemetry::percentile_of_sorted(&all_latency, p)
            }
        };

        // SLO attainment over deadline-bearing classes: a request counts
        // as attained only if it completed within its deadline, so shed,
        // expired and late requests all count against.
        let (mut slo_offered, mut slo_attained) = (0usize, 0usize);
        let per_class: Vec<ClassReport> = self
            .cfg
            .mix
            .classes
            .iter()
            .zip(&self.outcomes)
            .map(|(spec, o)| {
                let has_deadline = spec.deadline_ns != SimTime::MAX;
                if has_deadline {
                    slo_offered += o.offered;
                    slo_attained += o.attained;
                }
                let mut sorted = o.latency.values().to_vec();
                sorted.sort_unstable();
                let cp = |p: f64| {
                    if sorted.is_empty() {
                        0
                    } else {
                        telemetry::percentile_of_sorted(&sorted, p)
                    }
                };
                ClassReport {
                    name: spec.name.clone(),
                    deadline_ns: spec.deadline_ns,
                    offered: o.offered,
                    completed: o.completed,
                    attained: o.attained,
                    shed: o.shed,
                    expired: o.expired,
                    p50_ns: cp(50.0),
                    p95_ns: cp(95.0),
                    p99_ns: cp(99.0),
                }
            })
            .collect();

        let makespan_ns = self.last_done_ns.saturating_sub(first_arrival);
        let throughput_rps = if makespan_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / makespan_ns as f64
        };
        FleetReport {
            policy: self.cfg.router.name().to_string(),
            fabric: self.cfg.fabric.name.clone(),
            mix: self.cfg.mix.name.clone(),
            replicas: self.cfg.initial_replicas(),
            peak_replicas: self.peak_active,
            offered,
            completed,
            shed,
            expired,
            brownout_sheds: self.brownout_sheds,
            waves: self.total_waves,
            mean_wave: if self.total_waves == 0 {
                0.0
            } else {
                self.total_wave_requests as f64 / self.total_waves as f64
            },
            makespan_ns,
            throughput_rps,
            p50_ns: pct(50.0),
            p95_ns: pct(95.0),
            p99_ns: pct(99.0),
            slo_attainment: if slo_offered == 0 {
                1.0
            } else {
                slo_attained as f64 / slo_offered as f64
            },
            shed_rate: if offered == 0 {
                0.0
            } else {
                (shed + expired) as f64 / offered as f64
            },
            per_class,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            warmup_total_ns: self.warmup_total_ns,
            sanitizer_reports,
        }
    }

    /// Collect per-engine sanitizer diagnostics and run the cross-device
    /// check over the fabric; returns the total report count (zero on a
    /// clean run, or when sanitizing is off).
    fn run_sanitizers(&mut self) -> usize {
        let mut total = 0usize;
        for r in self.replicas.iter().flatten() {
            total += r.engine.sanitizer().reports().len();
        }
        if let Some(sani) = &mut self.cross_sanitizer {
            let devices: Vec<&gpu_sim::Device> = self
                .replicas
                .iter()
                .flatten()
                .map(|r| r.engine.device())
                .collect();
            // The fleet never issues P2P copies, but the cross-device
            // replay still validates every replica's command log under
            // the fabric's happens-before model.
            let fabric = if devices.len() == self.cfg.num_slots() {
                self.cfg.fabric.build_fabric()
            } else {
                Fabric::new(devices.len())
            };
            sani.check_fabric(&fabric, &devices);
            total += sani.reports().len();
        }
        total
    }
}

/// Chrome-trace pid of replica `slot` (see [`FLEET_PID`]).
pub fn replica_pid(slot: usize) -> u32 {
    FLEET_PID + 1 + slot as u32
}
