//! Fleet configuration: priority classes, autoscaling knobs, fabric
//! presets, and the top-level [`FleetConfig`].

use crate::router::RouterPolicy;
use gpu_sim::{DeviceProps, FabricSpec, LinkProps, SimTime};
use nn::DispatchMode;
use serve::{BatchPolicy, EngineOptions};

/// One tenant priority class. Class index 0 is the highest priority.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Name shown in reports (e.g. `premium`).
    pub name: String,
    /// Fraction of offered traffic in this class (shares sum to 1).
    pub share: f64,
    /// Relative completion deadline in ns after arrival;
    /// [`SimTime::MAX`] for best-effort (no SLO).
    pub deadline_ns: SimTime,
}

/// A named traffic mix: an ordered list of [`ClassSpec`]s, highest
/// priority first.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityMix {
    /// Mix name shown in reports.
    pub name: String,
    /// Classes, highest priority first. Shares must sum to ~1.
    pub classes: Vec<ClassSpec>,
}

impl PriorityMix {
    /// Validate and build a mix.
    ///
    /// # Panics
    /// Panics if `classes` is empty or shares do not sum to ~1.
    pub fn new(name: &str, classes: Vec<ClassSpec>) -> Self {
        assert!(!classes.is_empty(), "a mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "class shares must sum to 1, got {total}"
        );
        PriorityMix {
            name: name.to_string(),
            classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// A premium-heavy mix: 60 % premium (10 ms SLO), 30 % standard
    /// (25 ms SLO), 10 % best-effort.
    pub fn premium_heavy() -> Self {
        PriorityMix::new(
            "premium-heavy",
            vec![
                ClassSpec {
                    name: "premium".into(),
                    share: 0.6,
                    deadline_ns: 10_000_000,
                },
                ClassSpec {
                    name: "standard".into(),
                    share: 0.3,
                    deadline_ns: 25_000_000,
                },
                ClassSpec {
                    name: "besteffort".into(),
                    share: 0.1,
                    deadline_ns: SimTime::MAX,
                },
            ],
        )
    }

    /// A best-effort-heavy mix: 20 % premium (10 ms SLO), 30 % standard
    /// (25 ms SLO), 50 % best-effort — the regime where brownout
    /// shedding of the bulk lane protects the premium SLO.
    pub fn besteffort_heavy() -> Self {
        PriorityMix::new(
            "besteffort-heavy",
            vec![
                ClassSpec {
                    name: "premium".into(),
                    share: 0.2,
                    deadline_ns: 10_000_000,
                },
                ClassSpec {
                    name: "standard".into(),
                    share: 0.3,
                    deadline_ns: 25_000_000,
                },
                ClassSpec {
                    name: "besteffort".into(),
                    share: 0.5,
                    deadline_ns: SimTime::MAX,
                },
            ],
        )
    }
}

/// One segment of a phased offered-load profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// Requests generated in this phase.
    pub num_requests: usize,
    /// Mean arrival rate during the phase (requests per simulated
    /// second).
    pub rate_rps: f64,
}

/// Queue-depth autoscaling with hysteresis. Depth is the mean of
/// `queued + inflight` over active replicas, sampled every controller
/// tick; a scale action needs the watermark crossed for several
/// *consecutive* ticks so transient bursts don't flap the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Replicas at start and the floor for scale-down.
    pub min_replicas: usize,
    /// Ceiling for scale-up (at most the fabric's slot count).
    pub max_replicas: usize,
    /// Scale up when mean depth per active replica exceeds this.
    pub high_watermark: f64,
    /// Scale down when mean depth falls below this.
    pub low_watermark: f64,
    /// Consecutive ticks above the high watermark before scaling up.
    pub up_after: u32,
    /// Consecutive ticks below the low watermark before scaling down.
    pub down_after: u32,
}

impl AutoscaleConfig {
    /// A default controller: hold `min..=max` replicas, scale up past a
    /// mean depth of 12, down below 1, with 2-tick up / 6-tick down
    /// hysteresis (scaling down is the risky direction).
    pub fn new(min_replicas: usize, max_replicas: usize) -> Self {
        assert!(
            min_replicas >= 1 && min_replicas <= max_replicas,
            "need 1 <= min ({min_replicas}) <= max ({max_replicas})"
        );
        AutoscaleConfig {
            min_replicas,
            max_replicas,
            high_watermark: 12.0,
            low_watermark: 1.0,
            up_after: 2,
            down_after: 6,
        }
    }
}

/// Everything a fleet run needs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Device placement: one potential replica per fabric slot.
    pub fabric: FabricSpec,
    /// Model name resolved through [`nn::models::spec_by_name`].
    pub model: String,
    /// Kernel dispatch mode for every replica.
    pub mode: DispatchMode,
    /// Per-replica dynamic batching policy.
    pub policy: BatchPolicy,
    /// Per-replica admission queue capacity.
    pub queue_capacity: usize,
    /// Request routing policy.
    pub router: RouterPolicy,
    /// Tenant priority classes and traffic shares.
    pub mix: PriorityMix,
    /// Aggregate offered load (requests per simulated second).
    pub rate_rps: f64,
    /// Requests to generate.
    pub num_requests: usize,
    /// Phased load profile; when set it overrides `rate_rps` /
    /// `num_requests` (phases run back to back on the simulated clock —
    /// the burst-then-trickle shape the autoscaler demo drives).
    pub load_phases: Option<Vec<LoadPhase>>,
    /// Seed for arrivals, class assignment and model parameters.
    pub seed: u64,
    /// Controller cadence (brownout + autoscaler), simulated ns.
    pub tick_ns: SimTime,
    /// Queue-depth autoscaling; `None` keeps every fabric slot active.
    pub autoscale: Option<AutoscaleConfig>,
    /// Replica engine options (timing-only, sanitizer).
    pub engine: EngineOptions,
}

impl FleetConfig {
    /// A CIFAR10 fleet on the given fabric: GLP4NN dispatch, batch-8 /
    /// 2 ms batching, timing-only replicas, 5 ms controller ticks, no
    /// autoscaling.
    pub fn cifar10(fabric: FabricSpec, router: RouterPolicy, mix: PriorityMix) -> Self {
        FleetConfig {
            fabric,
            model: "CIFAR10".to_string(),
            mode: DispatchMode::Glp4nn,
            policy: BatchPolicy::new(8, 2_000_000),
            queue_capacity: 64,
            router,
            mix,
            rate_rps: 40_000.0,
            num_requests: 100_000,
            load_phases: None,
            seed: 42,
            tick_ns: 5_000_000,
            autoscale: None,
            engine: EngineOptions {
                timing_only: true,
                sanitize: None,
            },
        }
    }

    /// Number of fabric slots (the replica ceiling).
    pub fn num_slots(&self) -> usize {
        self.fabric.num_slots()
    }

    /// Replicas active at start: the autoscaler's floor, or every slot.
    pub fn initial_replicas(&self) -> usize {
        match self.autoscale {
            Some(a) => a.min_replicas.min(self.num_slots()),
            None => self.num_slots(),
        }
    }
}

/// A homogeneous 8-slot P100 fabric on NVLink.
pub fn fabric_uniform8() -> FabricSpec {
    FabricSpec::uniform(
        "uniform8-nvlink",
        8,
        DeviceProps::p100(),
        LinkProps::nvlink(),
    )
}

/// A heterogeneous 12-slot PCIe fabric: 4× K40C, 4× P100, 4× Titan XP —
/// the paper's three evaluation devices side by side, where
/// capacity-blind routing visibly hurts.
pub fn fabric_hetero12() -> FabricSpec {
    let mut slots = Vec::new();
    for _ in 0..4 {
        slots.push(DeviceProps::k40c());
    }
    for _ in 0..4 {
        slots.push(DeviceProps::p100());
    }
    for _ in 0..4 {
        slots.push(DeviceProps::titan_xp());
    }
    FabricSpec::heterogeneous("hetero12-pcie", slots, LinkProps::pcie3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_well_formed() {
        for mix in [
            PriorityMix::premium_heavy(),
            PriorityMix::besteffort_heavy(),
        ] {
            assert_eq!(mix.num_classes(), 3);
            let total: f64 = mix.classes.iter().map(|c| c.share).sum();
            assert!((total - 1.0).abs() < 1e-9);
            // Priority order: deadlines loosen with class index.
            assert!(mix.classes[0].deadline_ns <= mix.classes[1].deadline_ns);
            assert!(mix.classes[1].deadline_ns <= mix.classes[2].deadline_ns);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_shares_panic() {
        PriorityMix::new(
            "bad",
            vec![ClassSpec {
                name: "only".into(),
                share: 0.5,
                deadline_ns: SimTime::MAX,
            }],
        );
    }

    #[test]
    fn fabric_presets_have_expected_shape() {
        assert_eq!(fabric_uniform8().num_slots(), 8);
        let h = fabric_hetero12();
        assert_eq!(h.num_slots(), 12);
        // Heterogeneous: slots differ in capacity.
        assert!(h.slot_peak_flops(11) > h.slot_peak_flops(0));
    }

    #[test]
    fn initial_replicas_follow_autoscale_floor() {
        let mut cfg = FleetConfig::cifar10(
            fabric_uniform8(),
            RouterPolicy::RoundRobin,
            PriorityMix::premium_heavy(),
        );
        assert_eq!(cfg.initial_replicas(), 8);
        cfg.autoscale = Some(AutoscaleConfig::new(2, 8));
        assert_eq!(cfg.initial_replicas(), 2);
    }
}
