#![warn(missing_docs)]

//! A multi-replica serving fleet over the simulated GPU fabric.
//!
//! PR 1 built a single-replica serving engine; this crate scales it to
//! the ROADMAP's "millions of users" regime: N [`serve::ServingEngine`]
//! replicas placed across a [`gpu_sim::FabricSpec`] of possibly
//! heterogeneous devices, driven from **one** simulated-clock event loop
//! ([`FleetSim`]). The pieces:
//!
//! - [`router`]: pluggable request routing — round-robin,
//!   join-shortest-queue, and a capacity-weighted variant for
//!   heterogeneous fabrics. All load signals come from the live
//!   queue-depth gauges the fleet publishes into its
//!   [`telemetry::MetricsRegistry`], not from private simulator state.
//! - **Continuous batching**: arrivals are admitted into a replica's
//!   *next* wave rather than waiting for a full drain
//!   ([`serve::BatchPolicy::decide_continuous`] +
//!   [`serve::ServingEngine::run_wave`]); warm ExecPlan replay makes the
//!   per-wave dispatch cost a cache hit.
//! - **SLO-aware admission** ([`config::PriorityMix`]): per-tenant
//!   priority classes with deadlines; queues preempt lower classes
//!   first, expired requests are evicted rather than served, and a
//!   windowed-p99 brownout controller sheds best-effort lanes when a
//!   premium SLO is violated.
//! - **Autoscaling** ([`config::AutoscaleConfig`]): replica count
//!   follows mean queue depth with scale-up/down hysteresis; fresh
//!   spawns pay their warmup (plan capture) in simulated time.
//!
//! Determinism: arrivals, class draws, routing, batching, and device
//! timing all derive from seeds and the simulated clock, so two runs of
//! the same [`FleetConfig`] produce identical [`FleetReport`]s.

pub mod config;
pub mod replica;
pub mod report;
pub mod router;
pub mod sim;

pub use config::{
    fabric_hetero12, fabric_uniform8, AutoscaleConfig, ClassSpec, FleetConfig, LoadPhase,
    PriorityMix,
};
pub use replica::Replica;
pub use report::{ClassReport, FleetReport};
pub use router::{Router, RouterPolicy};
pub use sim::{replica_pid, FleetSim};
