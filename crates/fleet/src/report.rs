//! Fleet run summaries. Every number derives from the simulated clock,
//! so rendering a report is byte-stable across runs.

use gpu_sim::SimTime;

/// Per-class outcome summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class name from the mix.
    pub name: String,
    /// Relative deadline (ns); [`SimTime::MAX`] for best-effort.
    pub deadline_ns: SimTime,
    /// Requests offered in this class.
    pub offered: usize,
    /// Requests completed (within deadline or late).
    pub completed: usize,
    /// Requests completed within their deadline.
    pub attained: usize,
    /// Requests shed (admission, preemption, or brownout).
    pub shed: usize,
    /// Requests evicted from a queue past their deadline.
    pub expired: usize,
    /// p50 end-to-end latency of completions (ns); 0 when none.
    pub p50_ns: SimTime,
    /// p95 end-to-end latency (ns).
    pub p95_ns: SimTime,
    /// p99 end-to-end latency (ns).
    pub p99_ns: SimTime,
}

impl ClassReport {
    /// Fraction of offered requests completed within deadline (1.0 for
    /// a best-effort class with nothing offered).
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.attained as f64 / self.offered as f64
        }
    }
}

/// Summary of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Router policy short name.
    pub policy: String,
    /// Fabric spec name.
    pub fabric: String,
    /// Priority mix name.
    pub mix: String,
    /// Replicas active at start.
    pub replicas: usize,
    /// Peak simultaneously active replicas (equals `replicas` without
    /// autoscaling).
    pub peak_replicas: usize,
    /// Requests offered.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed (admission, preemption, brownout).
    pub shed: usize,
    /// Requests evicted past their deadline while queued.
    pub expired: usize,
    /// Of the shed, how many the brownout controller rejected.
    pub brownout_sheds: usize,
    /// Waves dispatched across all replicas.
    pub waves: usize,
    /// Mean wave size.
    pub mean_wave: f64,
    /// First arrival to last completion (ns).
    pub makespan_ns: SimTime,
    /// Completions per simulated second.
    pub throughput_rps: f64,
    /// Overall p50 end-to-end latency (ns).
    pub p50_ns: SimTime,
    /// Overall p95 end-to-end latency (ns).
    pub p95_ns: SimTime,
    /// Overall p99 end-to-end latency (ns).
    pub p99_ns: SimTime,
    /// Fraction of deadline-bearing requests completed within deadline.
    pub slo_attainment: f64,
    /// Fraction of offered requests shed or expired.
    pub shed_rate: f64,
    /// Per-class breakdown, class 0 first.
    pub per_class: Vec<ClassReport>,
    /// Autoscaler scale-up actions.
    pub scale_ups: usize,
    /// Autoscaler scale-down actions.
    pub scale_downs: usize,
    /// Total warmup (plan capture) time charged to spawns after start
    /// (ns).
    pub warmup_total_ns: SimTime,
    /// Sanitizer diagnostics across replicas plus the cross-device
    /// check (zero when sanitizing is off or the run is clean).
    pub sanitizer_reports: usize,
}

impl FleetReport {
    /// One fixed-width table row (see [`FleetReport::table_header`]).
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:<9} {:<17} {:>4} {:>8} {:>8.1} {:>9.3} {:>9.3} {:>9.3} {:>7.2}% {:>6.2}% {:>5.2}",
            self.fabric,
            self.policy,
            self.mix,
            self.peak_replicas,
            self.completed,
            self.throughput_rps,
            self.p50_ns as f64 / 1e6,
            self.p95_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
            self.slo_attainment * 100.0,
            self.shed_rate * 100.0,
            self.mean_wave,
        )
    }

    /// Header matching [`table_row`](FleetReport::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<14} {:<9} {:<17} {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>7} {:>5}",
            "fabric",
            "policy",
            "mix",
            "repl",
            "done",
            "tput r/s",
            "p50(ms)",
            "p95(ms)",
            "p99(ms)",
            "SLO att",
            "shed",
            "wave",
        )
    }

    /// Per-class sub-table rows for this run.
    pub fn class_rows(&self) -> Vec<String> {
        self.per_class
            .iter()
            .map(|c| {
                let deadline = if c.deadline_ns == SimTime::MAX {
                    "-".to_string()
                } else {
                    format!("{:.0}", c.deadline_ns as f64 / 1e6)
                };
                format!(
                    "  {:<12} {:>8} {:>9} {:>9} {:>7} {:>7} {:>9.3} {:>9.3} {:>8.2}% {:>6}",
                    c.name,
                    c.offered,
                    c.completed,
                    c.attained,
                    c.shed,
                    c.expired,
                    c.p50_ns as f64 / 1e6,
                    c.p99_ns as f64 / 1e6,
                    c.attainment() * 100.0,
                    deadline,
                )
            })
            .collect()
    }

    /// Header matching [`class_rows`](FleetReport::class_rows).
    pub fn class_header() -> String {
        format!(
            "  {:<12} {:>8} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9} {:>6}",
            "class",
            "offered",
            "done",
            "in-SLO",
            "shed",
            "expired",
            "p50(ms)",
            "p99(ms)",
            "attain",
            "SLO(ms)",
        )
    }
}
