//! Fault injection for the plan linter: each lint code is provoked by a
//! deliberately constructed plan (or spec) and must surface with exactly
//! that code, and rendering must be byte-identical across runs.
//!
//! Covered codes:
//! - `PW001` — an event edge already implied by the rest of happens-before.
//! - `PW002` — independent kernels serialized on one stream.
//! - `PW003` — recorded events never consumed across streams.
//! - `PL002` — a symbolic refutation (chunks provably overlap).
//! - `PL004` — a symbolic declaration that disagrees with the built kernels.
//! - `PL005` — peak live-buffer footprint over device memory.

use gpu_sim::{BufferId, ByteRange, Dim3, KernelCost, KernelDesc, LaunchConfig};
use sanitizer::{
    DiagnosticKind, DispatchPlan, LintConfig, SanitizeMode, Sanitizer, SymGroupSpec, SymKernel,
    SymRange,
};

fn kernel(name: &str) -> KernelDesc {
    KernelDesc::new(
        name,
        LaunchConfig::new(Dim3::linear(2), Dim3::linear(64), 32, 0),
        KernelCost::new(1.0e5, 1.0e4),
    )
}

fn cfg() -> LintConfig {
    LintConfig {
        mem_bytes: 1 << 30,
        max_resident_threads: 1 << 16,
    }
}

fn lint_codes(san: &Sanitizer) -> Vec<&'static str> {
    san.linter()
        .expect("linter attached")
        .diags()
        .iter()
        .map(|d| d.code.code())
        .collect()
}

#[test]
fn redundant_event_edge_surfaces_as_pw001() {
    // a(s0) → b(s1) → c(s2) plus a direct wait c → a: the direct edge is
    // outside the transitive reduction.
    let mut p = DispatchPlan::new("lf/redundant");
    let a = p.add(kernel("a"), 0, &[]);
    let b = p.add(kernel("b"), 1, &[a]);
    p.add(kernel("c"), 2, &[b, a]);
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(cfg());
    san.check_plan(&p);
    san.lint_plan_nodes("lf/redundant", &p.node_refs(), true, false);
    assert!(san.reports().is_empty(), "{:?}", san.reports());
    assert!(
        lint_codes(&san).contains(&"PW001"),
        "{:?}",
        lint_codes(&san)
    );
}

#[test]
fn same_stream_independent_pair_surfaces_as_pw002() {
    let buf = BufferId::from_label("lf/pw002");
    let mut p = DispatchPlan::new("lf/serial");
    p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
    p.add(kernel("w1").writes(buf, ByteRange::new(64, 128)), 0, &[]);
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(cfg());
    san.check_plan(&p);
    san.lint_plan_nodes("lf/serial", &p.node_refs(), false, false);
    assert!(san.reports().is_empty(), "{:?}", san.reports());
    assert_eq!(lint_codes(&san), vec!["PW002"]);
}

#[test]
fn unconsumed_events_surface_as_pw003() {
    let mut p = DispatchPlan::new("lf/unused");
    p.add(kernel("a"), 0, &[]);
    p.add(kernel("b"), 1, &[]);
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(cfg());
    san.lint_plan_nodes("lf/unused", &p.node_refs(), true, false);
    assert_eq!(lint_codes(&san), vec!["PW003"]);
}

#[test]
fn symbolic_refutation_surfaces_as_pl002_and_a_diagnostic() {
    // Chunk stride 256 but length 384: neighbours overlap by 128 bytes in
    // every shape with ≥ 2 chunks.
    let buf = BufferId::from_label("lf/pl002");
    let spec = SymGroupSpec::new()
        .kernel(SymKernel::new("k").writes(buf, SymRange::per_chunk(0, 256, 384)));
    let groups: Vec<Vec<KernelDesc>> = (0..3u64)
        .map(|i| {
            vec![kernel("k")
                .with_tag(i)
                .writes(buf, ByteRange::span(i * 256, 384))]
        })
        .collect();
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(cfg());
    let certified = san.check_chunks_spec("lf/refuted", "lf/net/conv/fwd", &spec, &groups);
    assert!(!certified);
    assert_eq!(lint_codes(&san), vec!["PL002"]);
    // The refutation is also a first-class sanitizer diagnostic.
    assert_eq!(san.reports().len(), 1);
    assert_eq!(
        san.reports()[0].kind,
        DiagnosticKind::OverlappingChunkRegions
    );
    assert_eq!(san.stats().certified_captures, 0);
}

#[test]
fn declaration_drift_surfaces_as_pl004_and_falls_back() {
    // The spec says stride 256; the built kernels actually stride 512.
    // The certificate must be refused and pairwise checking must run (and
    // stay silent — the real kernels are fine).
    let buf = BufferId::from_label("lf/pl004");
    let spec = SymGroupSpec::new()
        .kernel(SymKernel::new("k").writes(buf, SymRange::per_chunk(0, 256, 256)));
    let groups: Vec<Vec<KernelDesc>> = (0..3u64)
        .map(|i| {
            vec![kernel("k")
                .with_tag(i)
                .writes(buf, ByteRange::span(i * 512, 256))]
        })
        .collect();
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(cfg());
    let certified = san.check_chunks_spec("lf/drift", "lf/net/conv2/fwd", &spec, &groups);
    assert!(!certified);
    assert_eq!(lint_codes(&san), vec!["PL004"]);
    assert!(san.reports().is_empty(), "{:?}", san.reports());
    assert_eq!(san.stats().conformance_misses, 1);
    assert_eq!(san.stats().pairwise_fallbacks, 1);
    assert!(
        san.stats().chunk_pairs > 0,
        "pairwise checker must have run"
    );
}

#[test]
fn over_capacity_buffer_set_surfaces_as_pl005() {
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.attach_linter(LintConfig {
        mem_bytes: 1000,
        max_resident_threads: 1 << 16,
    });
    let mut p = DispatchPlan::new("lf/oom");
    let a = p.add(
        kernel("w0").writes(BufferId::from_label("lf/big0"), ByteRange::new(0, 600)),
        0,
        &[],
    );
    p.add(
        kernel("w1")
            .reads(BufferId::from_label("lf/big0"), ByteRange::new(0, 600))
            .writes(BufferId::from_label("lf/big1"), ByteRange::new(0, 600)),
        0,
        &[a],
    );
    san.lint_plan_nodes("lf/oom", &p.node_refs(), false, false);
    assert_eq!(lint_codes(&san), vec!["PL005"]);
    let rendered = san.linter().unwrap().render();
    assert!(rendered.contains("1200 B"), "{rendered}");
}

#[test]
fn rendering_is_byte_identical_across_runs() {
    let run = || {
        let buf = BufferId::from_label("lf/det");
        let mut p = DispatchPlan::new("lf/det");
        let a = p.add(kernel("a").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        let b = p.add(kernel("b").writes(buf, ByteRange::new(64, 128)), 1, &[a]);
        p.add(
            kernel("c").writes(buf, ByteRange::new(128, 192)),
            2,
            &[b, a],
        );
        p.add(kernel("d").writes(buf, ByteRange::new(192, 256)), 2, &[]);
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.attach_linter(cfg());
        san.check_plan(&p);
        san.lint_plan_nodes("lf/det", &p.node_refs(), true, false);
        san.linter().unwrap().render()
    };
    let first = run();
    assert!(!first.is_empty());
    assert_eq!(first, run());
    assert_eq!(first, run());
}
