//! Property tests for the plan linter and the symbolic prover.
//!
//! 1. **PW001 is sound**: removing *every* event edge the linter flags as
//!    redundant leaves the happens-before relation (transitive closure of
//!    declared deps + per-stream FIFO order) exactly unchanged.
//! 2. **Certificates agree with the pairwise checker**: a `Proven` spec
//!    has no cross-chunk conflict at any materialized shape, and a
//!    `Refuted` spec's witness chunks conflict concretely whenever the
//!    shape contains both.

use gpu_sim::{Dim3, KernelCost, KernelDesc, LaunchConfig};
use proptest::prelude::*;
use sanitizer::{DispatchPlan, LintConfig, Linter, SymGroupSpec, SymKernel, SymRange, SymVerdict};
use std::collections::BTreeSet;

fn kernel(name: &str) -> KernelDesc {
    KernelDesc::new(
        name,
        LaunchConfig::new(Dim3::linear(2), Dim3::linear(64), 32, 0),
        KernelCost::new(1.0e5, 1.0e4),
    )
}

/// The happens-before edge set a `DispatchPlan` induces: declared deps
/// plus the implicit FIFO edge from each node to its stream predecessor —
/// minus `removed` (declared edges only, as `(dep, node)` pairs).
fn hb_closure(
    streams: &[usize],
    deps: &[Vec<usize>],
    removed: &BTreeSet<(usize, usize)>,
) -> Vec<BTreeSet<usize>> {
    let n = streams.len();
    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut last: std::collections::BTreeMap<usize, usize> = Default::default();
    for i in 0..n {
        for &d in &deps[i] {
            if !removed.contains(&(d, i)) {
                succ[d].insert(i);
            }
        }
        if let Some(&p) = last.get(&streams[i]) {
            succ[p].insert(i);
        }
        last.insert(streams[i], i);
    }
    // Floyd–Warshall-ish closure; plans are tiny.
    let mut reach: Vec<BTreeSet<usize>> = succ.clone();
    for _ in 0..n {
        for i in 0..n {
            let step: BTreeSet<usize> = reach[i]
                .iter()
                .flat_map(|&j| reach[j].iter().copied())
                .collect();
            reach[i].extend(step);
        }
    }
    reach
}

/// Parse the dep endpoint out of a PW001 message ("… on node {d} (stream").
fn pw001_dep(message: &str) -> usize {
    let rest = message
        .split("on node ")
        .nth(1)
        .expect("PW001 message names the dep node");
    rest.split_whitespace()
        .next()
        .and_then(|w| w.parse().ok())
        .expect("dep node index parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Removing all PW001-flagged edges preserves happens-before exactly.
    #[test]
    fn removing_flagged_redundant_edges_preserves_hb(
        streams in prop::collection::vec(0usize..3, 2..12),
        seed in any::<u64>(),
    ) {
        let n = streams.len();
        // Deterministic pseudo-random dep sets from the seed.
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut s = seed | 1;
        for (i, d) in deps.iter_mut().enumerate() {
            for c in 0..i {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if s >> 61 == 0 {
                    d.push(c); // ~1/8 of candidate edges
                }
            }
        }
        let mut plan = DispatchPlan::new("pt/hb");
        for i in 0..n {
            plan.add(kernel("k"), streams[i], &deps[i]);
        }
        let mut linter = Linter::new(LintConfig {
            mem_bytes: 1 << 40,
            max_resident_threads: 1 << 16,
        });
        linter.lint_plan("pt/hb", &plan.node_refs(), false, true);
        let flagged: BTreeSet<(usize, usize)> = linter
            .diags()
            .iter()
            .filter(|d| d.code.code() == "PW001")
            .map(|d| (pw001_dep(&d.message), d.node.expect("PW001 anchors to the waiter")))
            .collect();
        let before = hb_closure(&streams, &deps, &BTreeSet::new());
        let after = hb_closure(&streams, &deps, &flagged);
        prop_assert_eq!(before, after, "flagged {:?}", flagged);
    }

    /// The symbolic verdict agrees with the concrete pairwise checker at
    /// every materialized shape.
    #[test]
    fn symbolic_verdict_matches_pairwise_instances(
        accs in prop::collection::vec(
            (0usize..2, any::<bool>(), 0u64..4, 1u64..5, 1u64..5, any::<bool>()),
            1..4,
        ),
    ) {
        // Each tuple: (buffer, is_write, base/64, stride/64, len/64, fixed?).
        let mut k = SymKernel::new("k");
        for &(buf, is_write, base, stride, len, fixed) in &accs {
            let b = gpu_sim::BufferId::from_label(&format!("pt/sym{buf}"));
            let r = if fixed {
                SymRange::fixed(gpu_sim::ByteRange::span(base * 64, len * 64))
            } else {
                SymRange::per_chunk(base * 64, stride * 64, len * 64)
            };
            k = if is_write { k.writes(b, r) } else { k.reads(b, r) };
        }
        let spec = SymGroupSpec::new().kernel(k);
        match spec.prove() {
            SymVerdict::Proven { .. } => {
                for n in 2..6u64 {
                    for i in 0..n {
                        for j in 0..n {
                            if i != j {
                                prop_assert!(
                                    spec.concrete(i).conflict_with(&spec.concrete(j)).is_none(),
                                    "proven spec conflicts at chunks {},{} of {}", i, j, n
                                );
                            }
                        }
                    }
                }
            }
            SymVerdict::Refuted(c) => {
                prop_assert!(c.chunk_a != c.chunk_b);
                prop_assert!(
                    spec.concrete(c.chunk_a)
                        .conflict_with(&spec.concrete(c.chunk_b))
                        .is_some(),
                    "witness chunks {},{} do not conflict concretely", c.chunk_a, c.chunk_b
                );
            }
            SymVerdict::Unsupported { .. } => {
                // Outside the affine fragment; the runtime falls back to
                // pairwise checking, so nothing to cross-validate.
            }
        }
    }
}
