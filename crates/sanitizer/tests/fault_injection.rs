//! Fault injection: deliberately break known-good schedules and assert the
//! sanitizer reports each class of fault with an actionable diagnostic.
//!
//! Covered classes:
//! - `missing-dependency` — a declared dep is dropped from a plan whose
//!   kernels conflict (static).
//! - `overlapping-chunk-regions` — a batch-split chunk's declared region
//!   is widened into its neighbour (static).
//! - `event-wait-cycle` — circular deps in a plan (static) and a trace
//!   whose replay stalls on an event that is never recorded (dynamic).
//! - `data-race` — conflicting launches on unordered streams (dynamic).

use gpu_sim::{
    BufferId, ByteRange, Device, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig,
};
use sanitizer::{DiagnosticKind, DispatchPlan, SanitizeMode, Sanitizer};

fn kernel(name: &str) -> KernelDesc {
    KernelDesc::new(
        name,
        LaunchConfig::new(Dim3::linear(8), Dim3::linear(128), 32, 0),
        KernelCost::new(1.0e5, 1.0e4),
    )
}

/// A conv-like per-sample chain: im2col writes col[i], sgemm reads col[i]
/// and writes out[i].
fn sample_chain(i: u64) -> Vec<KernelDesc> {
    let col = BufferId::from_label("fi/col");
    let out = BufferId::from_label("fi/out");
    vec![
        kernel("im2col")
            .with_tag(i)
            .writes(col, ByteRange::span(i * 256, 256)),
        kernel("sgemm")
            .with_tag(i)
            .reads(col, ByteRange::span(i * 256, 256))
            .writes(out, ByteRange::span(i * 128, 128)),
    ]
}

#[test]
fn dropped_dep_in_plan_is_a_missing_dependency() {
    // Correct plan: each sample's sgemm depends on its im2col, samples on
    // separate streams. Clean.
    let groups: Vec<Vec<KernelDesc>> = (0..4).map(sample_chain).collect();
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.check_plan(&DispatchPlan::round_robin("good", &groups, 4));
    assert_eq!(san.reports(), &[], "correct plan must be silent");

    // Fault: rebuild the same schedule by hand but put sample 0's sgemm on
    // a different stream than its im2col and drop the dependency between
    // them — the RAW hazard on fi/col is no longer covered.
    let mut plan = DispatchPlan::new("dropped-dep");
    let chain = sample_chain(0);
    plan.add(chain[0].clone(), 0, &[]);
    plan.add(chain[1].clone(), 1, &[]); // should have been deps = [0]
    san.check_plan(&plan);
    assert_eq!(san.reports().len(), 1);
    let d = &san.reports()[0];
    assert_eq!(d.kind, DiagnosticKind::MissingDependency);
    let msg = d.to_string();
    assert!(msg.contains("missing-dependency"), "{msg}");
    assert!(msg.contains("im2col") && msg.contains("sgemm"), "{msg}");
    assert!(msg.contains("[0, 256)"), "{msg}");
}

#[test]
fn widened_chunk_region_overlaps_its_neighbour() {
    let mut groups: Vec<Vec<KernelDesc>> = (0..4).map(sample_chain).collect();
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.check_chunks("conv1/fwd", &groups);
    assert_eq!(san.reports(), &[], "disjoint chunks must be silent");

    // Fault: widen chunk 2's output region so it bleeds into chunk 3's.
    let out = BufferId::from_label("fi/out");
    groups[2][1] = kernel("sgemm")
        .with_tag(2)
        .writes(out, ByteRange::span(2 * 128, 200));
    san.check_chunks("conv1/fwd", &groups);
    let overlaps: Vec<_> = san
        .reports()
        .iter()
        .filter(|d| d.kind == DiagnosticKind::OverlappingChunkRegions)
        .collect();
    assert_eq!(overlaps.len(), 1);
    let msg = overlaps[0].to_string();
    assert!(msg.contains("overlapping-chunk-regions"), "{msg}");
    assert!(msg.contains("fi/out"), "diagnostic names the buffer: {msg}");
    // Overlap is [384, 456): chunk 3 starts at 384, chunk 2 now ends at 456.
    assert!(msg.contains("[384, 456)"), "{msg}");
}

#[test]
fn circular_plan_deps_are_an_event_wait_cycle() {
    // DispatchPlan::add doesn't validate deps, precisely so faults like
    // this can be constructed: node 0 waits on node 1 and vice versa.
    let mut plan = DispatchPlan::new("cycle");
    plan.add(kernel("a"), 0, &[1]);
    plan.add(kernel("b"), 1, &[0]);
    let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
    san.check_plan(&plan);
    assert!(san
        .reports()
        .iter()
        .any(|d| d.kind == DiagnosticKind::EventWaitCycle));
}

#[test]
fn unordered_conflicting_launches_are_a_data_race() {
    // Dynamic variant of the dropped dependency: enqueue a correct run
    // (record/wait orders the conflict), then an incorrect one (the wait
    // is dropped), and replay both.
    let buf = BufferId::from_label("fi/dyn");
    let mut dev = Device::new(DeviceProps::p100());
    let s0 = dev.create_stream();
    let s1 = dev.create_stream();
    let mut san = Sanitizer::new(SanitizeMode::Full);

    let ev = dev.create_event();
    dev.launch(s0, kernel("producer").writes(buf, ByteRange::new(0, 512)));
    dev.record_event(s0, ev);
    dev.wait_event(s1, ev);
    dev.launch(s1, kernel("consumer").reads(buf, ByteRange::new(0, 512)));
    dev.run();
    san.check_device(&dev);
    assert_eq!(san.reports(), &[], "event-ordered trace must be silent");

    dev.launch(s0, kernel("producer").writes(buf, ByteRange::new(0, 512)));
    dev.launch(s1, kernel("consumer").reads(buf, ByteRange::new(0, 512)));
    dev.run();
    san.check_device(&dev);
    assert_eq!(san.reports().len(), 1);
    let d = &san.reports()[0];
    assert_eq!(d.kind, DiagnosticKind::DataRace);
    let msg = d.to_string();
    assert!(
        msg.contains("producer") && msg.contains("consumer"),
        "{msg}"
    );
    assert!(msg.contains("[0, 512)"), "{msg}");
    assert!(
        msg.contains("stream"),
        "diagnostic names the streams: {msg}"
    );
}

#[test]
fn stalled_trace_replay_is_reported_as_deadlock() {
    // A wait on an event that is never recorded. The engine itself would
    // hang in run(), so the commands are only enqueued (the log records
    // them at enqueue time) and the replay is run directly.
    let mut dev = Device::new(DeviceProps::p100());
    let s0 = dev.create_stream();
    let ev = dev.create_event();
    dev.wait_event(s0, ev);
    dev.launch(s0, kernel("blocked"));
    let mut san = Sanitizer::new(SanitizeMode::Full);
    san.check_device(&dev);
    let cycles: Vec<_> = san
        .reports()
        .iter()
        .filter(|d| d.kind == DiagnosticKind::EventWaitCycle)
        .collect();
    assert_eq!(cycles.len(), 1);
    let msg = cycles[0].to_string();
    assert!(msg.contains("event-wait-cycle"), "{msg}");
}

#[test]
fn all_three_required_diagnostic_classes_have_distinct_labels() {
    // The acceptance criterion asks for >= 3 distinct diagnostic classes;
    // pin their wire labels so downstream tooling can match on them.
    let labels: std::collections::HashSet<&str> = [
        DiagnosticKind::MissingDependency,
        DiagnosticKind::OverlappingChunkRegions,
        DiagnosticKind::EventWaitCycle,
        DiagnosticKind::DataRace,
    ]
    .iter()
    .map(|k| k.label())
    .collect();
    assert_eq!(labels.len(), 4);
    assert!(labels.contains("missing-dependency"));
    assert!(labels.contains("overlapping-chunk-regions"));
    assert!(labels.contains("event-wait-cycle"));
    assert!(labels.contains("data-race"));
}
