//! Property tests: the sanitizer is silent on every correctly-constructed
//! schedule, and a single injected fault — a dropped dependency or a
//! widened chunk region — is always reported.

use gpu_sim::{BufferId, ByteRange, Dim3, KernelCost, KernelDesc, LaunchConfig};
use proptest::prelude::*;
use sanitizer::{DiagnosticKind, DispatchPlan, SanitizeMode, Sanitizer};

fn kernel(name: &str, tag: u64) -> KernelDesc {
    KernelDesc::new(
        name,
        LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 32, 0),
        KernelCost::new(1.0e5, 1.0e4),
    )
    .with_tag(tag)
}

/// A batch-split schedule: `chunks` chains of `depth` kernels. Kernel `k`
/// of chunk `i` reads the chunk's stage-`k-1` region and writes its
/// stage-`k` region; per-chunk regions tile each stage buffer contiguously
/// with `stride` bytes, so distinct chunks are disjoint by construction.
fn schedule(chunks: usize, depth: usize, stride: u64) -> Vec<Vec<KernelDesc>> {
    (0..chunks as u64)
        .map(|i| {
            (0..depth)
                .map(|k| {
                    let r = ByteRange::span(i * stride, stride);
                    let mut kd =
                        kernel("stage", i).writes(BufferId::from_label(&format!("pt/buf{k}")), r);
                    if k > 0 {
                        kd = kd.reads(BufferId::from_label(&format!("pt/buf{}", k - 1)), r);
                    }
                    kd
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any legal round-robin interleaving of a valid batch-split schedule
    /// passes all static checks, whatever the pool size.
    #[test]
    fn valid_schedules_are_silent(
        chunks in 1usize..8,
        depth in 1usize..4,
        stride_elems in 1u64..64,
        pool in 1usize..6,
    ) {
        let groups = schedule(chunks, depth, stride_elems * 4);
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.check_chunks("pt", &groups);
        san.check_plan(&DispatchPlan::round_robin("pt", &groups, pool));
        prop_assert_eq!(san.reports(), &[]);
        // The checks genuinely ran (unless there was nothing to compare).
        if chunks > 1 {
            prop_assert!(san.stats().chunk_pairs > 0);
            prop_assert!(san.stats().plan_pairs > 0);
        }
    }

    /// Dropping the dependency between two consecutive chain kernels and
    /// scattering the chain across streams is always reported: a chain has
    /// no alternative dependency path, so the RAW hazard is uncovered.
    #[test]
    fn dropped_dep_is_always_reported(
        chunks in 1usize..6,
        depth in 2usize..4,
        victim_chunk in 0usize..6,
        victim_link in 0usize..3,
        stride_elems in 1u64..64,
    ) {
        let victim_chunk = victim_chunk % chunks;
        let victim_link = 1 + victim_link % (depth - 1).max(1);
        let groups = schedule(chunks, depth, stride_elems * 4);

        // Graph-style plan: every kernel on its own stream, consecutive
        // chain kernels linked by an explicit dep — the schedule shape
        // `KernelGraph::launch` executes.
        let build = |drop: Option<(usize, usize)>| {
            let mut plan = DispatchPlan::new("pt");
            let mut idx = 0usize;
            for (c, chain) in groups.iter().enumerate() {
                for (k, kd) in chain.iter().enumerate() {
                    let deps: Vec<usize> = if k == 0 || drop == Some((c, k)) {
                        vec![]
                    } else {
                        vec![idx - 1]
                    };
                    plan.add(kd.clone(), idx, &deps);
                    idx += 1;
                }
            }
            plan
        };

        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.check_plan(&build(None));
        prop_assert_eq!(san.reports(), &[]);

        san.check_plan(&build(Some((victim_chunk, victim_link))));
        let missing: Vec<_> = san
            .reports()
            .iter()
            .filter(|d| d.kind == DiagnosticKind::MissingDependency)
            .collect();
        prop_assert!(!missing.is_empty(), "dropped dep must be reported");
    }

    /// Widening one chunk's write region into its neighbour is always
    /// caught by the chunk-disjointness check.
    #[test]
    fn widened_region_is_always_reported(
        chunks in 2usize..8,
        depth in 1usize..4,
        victim in 0usize..8,
        widen_elems in 1u64..32,
        stride_elems in 1u64..64,
    ) {
        // Widen any chunk but the last, into its right-hand neighbour.
        let victim = victim % (chunks - 1);
        let stride = stride_elems * 4;
        let mut groups = schedule(chunks, depth, stride);
        let last = depth - 1;
        let r = ByteRange::span(victim as u64 * stride, stride + widen_elems * 4);
        groups[victim][last] = kernel("stage", victim as u64)
            .writes(BufferId::from_label(&format!("pt/buf{last}")), r);

        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.check_chunks("pt", &groups);
        let overlaps: Vec<_> = san
            .reports()
            .iter()
            .filter(|d| d.kind == DiagnosticKind::OverlappingChunkRegions)
            .collect();
        prop_assert!(!overlaps.is_empty(), "widened region must be reported");
    }
}
