//! Cross-device happens-before race detection over a fabric of devices.
//!
//! The per-device replay ([`crate::hb`]) sees one command log at a time and
//! cannot follow a peer-to-peer copy to the other side. This module replays
//! *all* device logs of a [`Fabric`](gpu_sim::Fabric) together:
//!
//! - clocks are keyed by `(device, stream)`;
//! - a `CopySrc` is an access-carrying node — it **reads** the declared
//!   source range on the source device and **writes** the declared
//!   destination range on the destination device — and records a per-copy
//!   virtual event;
//! - a `CopyDst` waits on that virtual event, giving the cross-device
//!   happens-before edge;
//! - a device's own [`CmdRecord::Sync`] markers are per-device barriers:
//!   commands of a later sync phase join the barrier clock of everything
//!   the device completed in earlier phases (device logs do **not** need
//!   the same number of sync markers — each device's phases advance
//!   independently, which is exactly what happens when replicas run
//!   eagerly and only meet inside `Fabric::run`).
//!
//! Buffers live in **per-device address spaces**: the same buffer label on
//! two replicas names two different allocations (layers derive labels from
//! layer names, identical across replicas), so accesses conflict only when
//! they touch the same byte range of the same buffer *on the same device*.
//! A copy's destination write participates in the destination device's
//! space — the edge the fault-injection tests exercise.

use crate::report::{ConflictSite, Diagnostic, DiagnosticKind, KernelRef};
use gpu_sim::{AccessSet, CmdRecord, Device, Fabric, MemAccess, StreamId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Merged-replay clock key: a stream of a particular device.
type Key = (usize, StreamId);

/// One access-carrying node of the merged replay (a kernel launch or a
/// peer-to-peer copy).
struct Node {
    name: String,
    tag: u64,
    key: Key,
    epoch: u64,
    clock: HashMap<Key, u64>,
    log_index: usize,
    /// Accesses, each in a `(device, sync phase)` address-space bucket.
    accesses: Vec<(usize, usize, AccessSet)>,
}

impl Node {
    fn happens_before(&self, other: &Node) -> bool {
        other.clock.get(&self.key).copied().unwrap_or(0) >= self.epoch
    }
}

fn read_set(a: MemAccess) -> AccessSet {
    AccessSet {
        reads: vec![a],
        writes: vec![],
    }
}

fn write_set(a: MemAccess) -> AccessSet {
    AccessSet {
        reads: vec![],
        writes: vec![a],
    }
}

/// Replay per-device log suffixes together, appending diagnostics to
/// `out`. Returns `(access_nodes_replayed, pairs_compared)`.
pub(crate) fn check_fabric_logs(
    fabric: &Fabric,
    devs: &[&Device],
    logs: &[&[CmdRecord]],
    context: &str,
    out: &mut Vec<Diagnostic>,
) -> (u64, u64) {
    debug_assert_eq!(devs.len(), logs.len());

    // ---- partition into per-(device, stream) FIFOs, tagging each command
    // with its device's sync phase -------------------------------------
    struct Fifo {
        queue: VecDeque<(usize, usize, CmdRecord)>, // (log index, phase, cmd)
        /// Barrier clock of phases < N already joined into the stream.
        joined_phase: usize,
    }
    let mut fifos: HashMap<Key, Fifo> = HashMap::new();
    let mut key_order: Vec<Key> = Vec::new();
    // Commands per (device, phase), for barrier completion tracking.
    let mut phase_totals: Vec<Vec<usize>> = vec![Vec::new(); devs.len()];
    // Destination-side sync phase of each copy (address-space bucket of
    // its landing write).
    let mut copy_dst_phase: HashMap<u64, usize> = HashMap::new();
    // Events / copies whose record half appears in these suffixes; waits
    // on anything older are joins with pre-suffix history, already ordered
    // by the completed episodes the cursor skipped.
    let mut recorded_events: HashSet<(usize, u64)> = HashSet::new();
    let mut recorded_copies: HashSet<u64> = HashSet::new();

    for (d, log) in logs.iter().enumerate() {
        let mut phase = 0usize;
        for (i, c) in log.iter().enumerate() {
            let sid = match c {
                CmdRecord::Sync => {
                    phase += 1;
                    continue;
                }
                CmdRecord::Launch { stream, .. }
                | CmdRecord::RecordEvent { stream, .. }
                | CmdRecord::WaitEvent { stream, .. }
                | CmdRecord::CopySrc { stream, .. }
                | CmdRecord::CopyDst { stream, .. } => *stream,
            };
            match c {
                CmdRecord::RecordEvent { event, .. } => {
                    recorded_events.insert((d, event.raw()));
                }
                CmdRecord::CopySrc { copy, .. } => {
                    recorded_copies.insert(copy.raw());
                }
                CmdRecord::CopyDst { copy, .. } => {
                    copy_dst_phase.insert(copy.raw(), phase);
                }
                _ => {}
            }
            if phase_totals[d].len() <= phase {
                phase_totals[d].resize(phase + 1, 0);
            }
            phase_totals[d][phase] += 1;
            let key = (d, sid);
            if !fifos.contains_key(&key) {
                key_order.push(key);
            }
            fifos
                .entry(key)
                .or_insert_with(|| Fifo {
                    queue: VecDeque::new(),
                    joined_phase: 0,
                })
                .queue
                .push_back((i, phase, *c));
        }
    }

    // ---- worklist replay ---------------------------------------------
    let mut clocks: HashMap<Key, HashMap<Key, u64>> = HashMap::new();
    let mut event_clock: HashMap<(usize, u64), HashMap<Key, u64>> = HashMap::new();
    let mut copy_clock: HashMap<u64, HashMap<Key, u64>> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    // Per-device barrier: clock joining everything in completed phases,
    // and how many phases have completed.
    let mut barrier: Vec<HashMap<Key, u64>> = vec![HashMap::new(); devs.len()];
    let mut barrier_phase: Vec<usize> = vec![0; devs.len()];
    let mut phase_fired: Vec<Vec<usize>> = phase_totals.iter().map(|t| vec![0; t.len()]).collect();

    loop {
        let mut progressed = false;
        for &key in &key_order {
            let (d, _sid) = key;
            loop {
                let fifo = fifos.get_mut(&key).expect("fifo exists");
                let Some(&(log_index, phase, cmd)) = fifo.queue.front() else {
                    break;
                };
                // Per-device barrier: a command of phase p may only fire
                // once all of its device's commands in phases < p fired.
                if barrier_phase[d] < phase {
                    break;
                }
                if fifo.joined_phase < phase {
                    fifo.joined_phase = phase;
                    let b = barrier[d].clone();
                    let clock = clocks.entry(key).or_default();
                    for (k, t) in b {
                        let e = clock.entry(k).or_insert(0);
                        *e = (*e).max(t);
                    }
                }
                match cmd {
                    CmdRecord::Launch { kernel, .. } => {
                        let clock = clocks.entry(key).or_default();
                        let epoch = clock.entry(key).or_insert(0);
                        *epoch += 1;
                        let epoch = *epoch;
                        let desc = devs[d].kernel_desc(kernel);
                        if !desc.accesses.is_empty() {
                            nodes.push(Node {
                                name: desc.name.clone(),
                                tag: desc.tag,
                                key,
                                epoch,
                                clock: clock.clone(),
                                log_index,
                                accesses: vec![(d, phase, desc.accesses.clone())],
                            });
                        }
                    }
                    CmdRecord::RecordEvent { event, .. } => {
                        let clock = clocks.entry(key).or_default().clone();
                        event_clock.insert((d, event.raw()), clock);
                    }
                    CmdRecord::WaitEvent { event, .. } => {
                        match event_clock.get(&(d, event.raw())) {
                            Some(ev) => {
                                let ev = ev.clone();
                                let clock = clocks.entry(key).or_default();
                                for (k, t) in ev {
                                    let e = clock.entry(k).or_insert(0);
                                    *e = (*e).max(t);
                                }
                            }
                            None if recorded_events.contains(&(d, event.raw())) => {
                                break; // blocked: record not yet replayed
                            }
                            // Recorded before these suffixes: the wait is
                            // a join with already-checked history.
                            None => {}
                        }
                    }
                    CmdRecord::CopySrc { copy, .. } => {
                        let desc = fabric.copy_desc(copy);
                        let clock = clocks.entry(key).or_default();
                        let epoch = clock.entry(key).or_insert(0);
                        *epoch += 1;
                        let epoch = *epoch;
                        copy_clock.insert(copy.raw(), clock.clone());
                        let mut accesses = vec![(desc.src, phase, read_set(desc.src_access))];
                        if let Some(&dp) = copy_dst_phase.get(&copy.raw()) {
                            accesses.push((desc.dst, dp, write_set(desc.dst_access)));
                        }
                        nodes.push(Node {
                            name: desc.name.clone(),
                            tag: copy.raw(),
                            key,
                            epoch,
                            clock: clock.clone(),
                            log_index,
                            accesses,
                        });
                    }
                    CmdRecord::CopyDst { copy, .. } => {
                        match copy_clock.get(&copy.raw()) {
                            Some(cc) => {
                                let cc = cc.clone();
                                let clock = clocks.entry(key).or_default();
                                for (k, t) in cc {
                                    let e = clock.entry(k).or_insert(0);
                                    *e = (*e).max(t);
                                }
                            }
                            None if recorded_copies.contains(&copy.raw()) => {
                                break; // blocked: source half not replayed
                            }
                            None => {} // copy resolved before these suffixes
                        }
                    }
                    CmdRecord::Sync => {}
                }
                fifo.queue.pop_front();
                progressed = true;
                // Barrier bookkeeping: completing the last command of the
                // device's current phase freezes the barrier clock and
                // unlocks the next phase (skipping empty phases).
                phase_fired[d][phase] += 1;
                while barrier_phase[d] < phase_totals[d].len()
                    && phase_fired[d][barrier_phase[d]] == phase_totals[d][barrier_phase[d]]
                {
                    let mut b = std::mem::take(&mut barrier[d]);
                    for (k, clock) in clocks.iter() {
                        if k.0 != d {
                            continue;
                        }
                        for (ck, t) in clock {
                            let e = b.entry(*ck).or_insert(0);
                            *e = (*e).max(*t);
                        }
                    }
                    barrier[d] = b;
                    barrier_phase[d] += 1;
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // ---- deadlock detection ------------------------------------------
    let stuck: Vec<String> = key_order
        .iter()
        .filter_map(|key| {
            let f = &fifos[key];
            f.queue.front().map(|&(i, _, c)| {
                let what = match c {
                    CmdRecord::WaitEvent { event, .. } => {
                        format!("waiting on event {}", event.raw())
                    }
                    CmdRecord::CopyDst { copy, .. } => {
                        format!("waiting on copy {}", copy.raw())
                    }
                    _ => "blocked behind its device's sync barrier".to_string(),
                };
                format!(
                    "device {} stream {} blocked at log[{i}] {what}",
                    key.0,
                    key.1.raw()
                )
            })
        })
        .collect();
    if !stuck.is_empty() {
        out.push(Diagnostic {
            kind: DiagnosticKind::EventWaitCycle,
            context: context.to_string(),
            first: None,
            second: None,
            site: None,
            detail: format!(
                "fabric trace replay deadlocks: {} (a copy or event half is \
                 missing, or waits form a cross-device cycle)",
                stuck.join("; ")
            ),
        });
    }

    // ---- race detection ----------------------------------------------
    // Bucket access entries by (device, phase): entries in different
    // phases of the same device are ordered by its sync barrier, and
    // entries on different devices live in different address spaces.
    let mut buckets: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        for (ai, (d, p, _)) in n.accesses.iter().enumerate() {
            buckets.entry((*d, *p)).or_default().push((ni, ai));
        }
    }
    let mut bucket_keys: Vec<(usize, usize)> = buckets.keys().copied().collect();
    bucket_keys.sort_unstable();
    let mut pairs = 0u64;
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for bk in bucket_keys {
        let entries = &buckets[&bk];
        for x in 0..entries.len() {
            let (ni, ai) = entries[x];
            for &(nj, aj) in &entries[x + 1..] {
                if ni == nj || reported.contains(&(ni, nj)) {
                    continue;
                }
                pairs += 1;
                let (a, b) = (&nodes[ni], &nodes[nj]);
                if a.happens_before(b) || b.happens_before(a) {
                    continue;
                }
                if let Some(c) = a.accesses[ai].2.conflict_with(&b.accesses[aj].2) {
                    reported.insert((ni, nj));
                    let node_ref = |n: &Node| KernelRef {
                        name: format!("dev{}:{}", n.key.0, n.name),
                        tag: n.tag,
                        stream: Some(n.key.1.raw()),
                        index: n.log_index,
                    };
                    out.push(Diagnostic {
                        kind: DiagnosticKind::DataRace,
                        context: context.to_string(),
                        first: Some(node_ref(a)),
                        second: Some(node_ref(b)),
                        site: Some(ConflictSite {
                            buffer: c.buffer,
                            overlap: c.overlap,
                            hazard: c.hazard(),
                        }),
                        detail: format!(
                            "no copy edge, event, or stream order makes these \
                             happens-before ordered on device {}",
                            bk.0
                        ),
                    });
                }
            }
        }
    }
    (nodes.len() as u64, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{
        BufferId, ByteRange, CopyDesc, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig,
        LinkProps,
    };

    fn kernel(name: &str) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
    }

    fn mem(label: &str, range: ByteRange) -> MemAccess {
        MemAccess {
            buffer: BufferId::from_label(label),
            range,
        }
    }

    fn check(fabric: &Fabric, devs: &[&Device]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let logs: Vec<&[CmdRecord]> = devs.iter().map(|d| d.command_log()).collect();
        check_fabric_logs(fabric, devs, &logs, "test", &mut out);
        out
    }

    /// Two devices, one stream each, a copy from 0 to 1, and a consumer
    /// kernel on device 1 reading the landed bytes.
    fn copy_then_consume(gate_consumer: bool) -> Vec<Diagnostic> {
        let mut devs = [
            Device::new(DeviceProps::p100()),
            Device::new(DeviceProps::p100()),
        ];
        let s0 = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let free = devs[1].create_stream();
        let mut fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let range = ByteRange::new(0, 4096);
        {
            let mut h: Vec<&mut Device> = devs.iter_mut().collect();
            h[0].launch(
                s0,
                kernel("produce").writes(BufferId::from_label("grad"), range),
            );
            fab.copy_p2p(
                &mut h,
                CopyDesc::new(
                    "p2p:0->1",
                    (0, s0, mem("grad", range)),
                    (1, s1, mem("staging", range)),
                ),
            )
            .expect("fully-connected fabric has a 0->1 link, so copy_p2p cannot fail");
            // The consumer either rides the gated stream (ordered after
            // the CopyDst marker) or a free stream (racy).
            let consumer_stream = if gate_consumer { s1 } else { free };
            h[1].launch(
                consumer_stream,
                kernel("reduce").reads(BufferId::from_label("staging"), range),
            );
            fab.run(&mut h);
        }
        let views: Vec<&Device> = devs.iter().collect();
        check(&fab, &views)
    }

    #[test]
    fn gated_consumer_is_race_free() {
        assert_eq!(copy_then_consume(true), vec![]);
    }

    #[test]
    fn ungated_consumer_races_with_the_copy_write() {
        let out = copy_then_consume(false);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, DiagnosticKind::DataRace);
        let s = out[0].to_string();
        assert!(s.contains("p2p:0->1"), "{s}");
        assert!(s.contains("staging"), "{s}");
    }

    #[test]
    fn same_label_on_two_devices_is_not_a_conflict() {
        // Replicas reuse layer-scoped buffer labels; per-device address
        // spaces must keep them apart.
        let mut devs = [
            Device::new(DeviceProps::p100()),
            Device::new(DeviceProps::p100()),
        ];
        let s0 = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let buf = BufferId::from_label("conv1/out");
        let range = ByteRange::new(0, 1024);
        devs[0].launch(s0, kernel("w").writes(buf, range));
        devs[1].launch(s1, kernel("w").writes(buf, range));
        let mut fab = fab;
        let mut h: Vec<&mut Device> = devs.iter_mut().collect();
        fab.run(&mut h);
        let views: Vec<&Device> = devs.iter().collect();
        assert_eq!(check(&fab, &views), vec![]);
    }

    #[test]
    fn copy_read_races_with_unordered_source_overwrite() {
        // Device 0 overwrites the source buffer on a second stream while
        // the copy reads it: write/read race on the *source* device.
        let mut devs = [
            Device::new(DeviceProps::p100()),
            Device::new(DeviceProps::p100()),
        ];
        let s0 = devs[0].create_stream();
        let other = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let mut fab = Fabric::fully_connected(2, LinkProps::pcie3());
        let range = ByteRange::new(0, 4096);
        let mut h: Vec<&mut Device> = devs.iter_mut().collect();
        fab.copy_p2p(
            &mut h,
            CopyDesc::new(
                "p2p",
                (0, s0, mem("src", range)),
                (1, s1, mem("dst", range)),
            ),
        )
        .expect("fully-connected fabric has a 0->1 link, so copy_p2p cannot fail");
        h[0].launch(
            other,
            kernel("overwrite").writes(BufferId::from_label("src"), range),
        );
        fab.run(&mut h);
        let views: Vec<&Device> = devs.iter().collect();
        let out = check(&fab, &views);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, DiagnosticKind::DataRace);
        assert!(out[0].to_string().contains("src"), "{}", out[0]);
    }

    #[test]
    fn unaligned_sync_phases_still_order_per_device() {
        // Device 0 runs two solo episodes (2 syncs) while device 1 runs
        // one; conflicting launches across device 0's episodes are
        // barrier-ordered even though phase counts differ between logs.
        let mut devs = [
            Device::new(DeviceProps::p100()),
            Device::new(DeviceProps::p100()),
        ];
        let a = devs[0].create_stream();
        let b = devs[0].create_stream();
        let s1 = devs[1].create_stream();
        let buf = BufferId::from_label("x");
        let range = ByteRange::new(0, 64);
        devs[0].launch(a, kernel("w0").writes(buf, range));
        devs[0].run();
        devs[0].launch(b, kernel("w1").writes(buf, range));
        devs[0].run();
        devs[1].launch(s1, kernel("other").writes(buf, range));
        devs[1].run();
        let mut fab = Fabric::fully_connected(2, LinkProps::nvlink());
        let mut h: Vec<&mut Device> = devs.iter_mut().collect();
        fab.run(&mut h);
        let views: Vec<&Device> = devs.iter().collect();
        assert_eq!(check(&fab, &views), vec![]);
    }

    #[test]
    fn missing_source_half_reports_deadlock_not_panic() {
        // A CopyDst wait whose CopySrc appears in the suffix but whose
        // replay can never fire does not exist by construction (copy_p2p
        // enqueues both), so exercise the cross-segment tolerance: a wait
        // on an event recorded before the suffix is a no-op.
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let ev = dev.create_event();
        dev.record_event(s0, ev);
        dev.run();
        let cut = dev.command_log().len();
        dev.wait_event(s0, ev);
        dev.launch(s0, kernel("k"));
        dev.run();
        let fab = Fabric::new(1);
        let suffix = &dev.command_log()[cut..];
        let mut out = Vec::new();
        check_fabric_logs(&fab, &[&dev], &[suffix], "test", &mut out);
        assert_eq!(out, vec![]);
    }
}
