//! Dispatch plans and the static schedule checker.
//!
//! A [`DispatchPlan`] is the sanitizer's model of what a scheduler is
//! *about* to do: an issue-ordered list of kernels, each with a target
//! stream and a set of declared dependencies. Two constructors mirror the
//! runtime's real dispatch policies ([`DispatchPlan::round_robin`] for the
//! group scheduler, [`DispatchPlan::from_graph`] for the DAG scheduler), so
//! the checker validates exactly the schedule that would execute — before
//! anything executes.

use crate::report::{ConflictSite, Diagnostic, DiagnosticKind, KernelRef};
use gpu_sim::KernelDesc;

/// One node of a dispatch plan.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The kernel to launch.
    pub kernel: KernelDesc,
    /// Target stream (pool-relative index).
    pub stream: usize,
    /// Plan-node indices whose completion this node waits for (cross-stream
    /// deps become event record/wait pairs at dispatch time).
    pub deps: Vec<usize>,
}

/// A borrowed view of one plan node, so a frozen execution plan can be
/// validated in place — no kernels cloned into a [`DispatchPlan`] per
/// check. [`DispatchPlan::check`] itself runs on this view.
#[derive(Debug, Clone, Copy)]
pub struct PlanNodeRef<'a> {
    /// The kernel to launch.
    pub kernel: &'a KernelDesc,
    /// Target stream (pool-relative index).
    pub stream: usize,
    /// Plan-node indices whose completion this node waits for.
    pub deps: &'a [usize],
}

/// An issue-ordered schedule: which kernel goes to which stream, after
/// which dependencies.
#[derive(Debug, Clone, Default)]
pub struct DispatchPlan {
    nodes: Vec<PlanNode>,
    /// Human-readable label for diagnostics (layer key, net name...).
    pub label: String,
}

impl DispatchPlan {
    /// Empty plan with a diagnostic label.
    pub fn new(label: &str) -> Self {
        DispatchPlan {
            nodes: Vec::new(),
            label: label.to_string(),
        }
    }

    /// Append a node; returns its index. Dependency indices are *not*
    /// validated here — [`check`](crate::Sanitizer::check_plan) flags
    /// out-of-range deps and wait cycles, which is the point: fault
    /// injection builds deliberately broken plans.
    pub fn add(&mut self, kernel: KernelDesc, stream: usize, deps: &[usize]) -> usize {
        self.nodes.push(PlanNode {
            kernel,
            stream,
            deps: deps.to_vec(),
        });
        self.nodes.len() - 1
    }

    /// The plan the group scheduler would execute: group `i` is an ordered
    /// chain on stream `i % num_streams`, with chain edges as deps.
    pub fn round_robin(label: &str, groups: &[Vec<KernelDesc>], num_streams: usize) -> Self {
        let num_streams = num_streams.max(1);
        let mut plan = DispatchPlan::new(label);
        for (g, group) in groups.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for k in group {
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(plan.add(k.clone(), g % num_streams, &deps));
            }
        }
        plan
    }

    /// The plan `KernelGraph::launch` would execute on a pool of
    /// `pool_len` streams: nodes inherit the stream of their first
    /// not-yet-continued dependency, otherwise take one round-robin.
    ///
    /// Takes the graph as `(nodes, deps)` slices so `core` can depend on
    /// this crate without a cycle.
    pub fn from_graph(
        label: &str,
        nodes: &[KernelDesc],
        deps: &[Vec<usize>],
        pool_len: usize,
    ) -> Self {
        let pool_len = pool_len.max(1);
        let mut plan = DispatchPlan::new(label);
        let mut stream_of: Vec<usize> = Vec::with_capacity(nodes.len());
        let mut continued = vec![false; nodes.len()];
        let mut rr = 0usize;
        for (i, k) in nodes.iter().enumerate() {
            let node_deps = deps.get(i).map(Vec::as_slice).unwrap_or(&[]);
            let inherit = node_deps.iter().copied().find(|&d| d < i && !continued[d]);
            let sid = match inherit {
                Some(d) => {
                    continued[d] = true;
                    stream_of[d]
                }
                None => {
                    let s = rr % pool_len;
                    rr += 1;
                    s
                }
            };
            stream_of.push(sid);
            plan.add(k.clone(), sid, node_deps);
        }
        plan
    }

    /// Plan nodes in issue order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Number of kernels in the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrowed node views in issue order.
    pub fn node_refs(&self) -> Vec<PlanNodeRef<'_>> {
        self.nodes
            .iter()
            .map(|n| PlanNodeRef {
                kernel: &n.kernel,
                stream: n.stream,
                deps: &n.deps,
            })
            .collect()
    }

    /// Check the plan: out-of-range deps, event-wait cycles (deadlock),
    /// and memory conflicts not covered by happens-before. Appends
    /// diagnostics to `out`; returns the number of kernel pairs compared.
    pub(crate) fn check(&self, out: &mut Vec<Diagnostic>) -> u64 {
        check_nodes(&self.label, &self.node_refs(), out, true)
    }
}

fn kernel_ref(nodes: &[PlanNodeRef<'_>], i: usize) -> KernelRef {
    let n = &nodes[i];
    KernelRef {
        name: n.kernel.name.clone(),
        tag: n.kernel.tag,
        stream: Some(n.stream as u32),
        index: i,
    }
}

/// Happens-before edges of the plan: `i → j` when `j` cannot start
/// before `i` completes. Stream FIFO order contributes edges between
/// issue-order neighbours on the same stream; declared deps contribute
/// the rest (cross-stream ones become event waits at dispatch).
pub(crate) fn hb_edges(nodes: &[PlanNodeRef<'_>]) -> Vec<Vec<usize>> {
    let n = nodes.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_on_stream: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Some(&p) = last_on_stream.get(&node.stream) {
            succ[p].push(i);
        }
        last_on_stream.insert(node.stream, i);
        for &d in node.deps {
            if d < n && d != i {
                succ[d].push(i);
            }
        }
    }
    succ
}

/// Check an issue-ordered schedule given as borrowed node views:
/// out-of-range deps, event-wait cycles (deadlock), and memory conflicts
/// not covered by happens-before. Appends diagnostics to `out`; returns
/// the number of kernel pairs compared. With `scan_pairs` false only the
/// structural checks run (dangling deps, wait cycles) — the caller holds
/// a symbolic certificate that already proves hazard-freedom, so the
/// O(n²) conflict scan would re-derive a known fact.
pub(crate) fn check_nodes(
    label: &str,
    nodes: &[PlanNodeRef<'_>],
    out: &mut Vec<Diagnostic>,
    scan_pairs: bool,
) -> u64 {
    let n = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        for &d in node.deps {
            if d >= n {
                out.push(Diagnostic {
                    kind: DiagnosticKind::EventWaitCycle,
                    context: label.to_string(),
                    first: Some(kernel_ref(nodes, i)),
                    second: None,
                    site: None,
                    detail: format!(
                        "node {i} waits on nonexistent node {d} (plan has {n} nodes): \
                         the wait can never be satisfied"
                    ),
                });
            }
        }
    }

    let succ = hb_edges(nodes);
    // Cycle detection via Kahn's algorithm on the HB edge graph: any
    // node left undrained sits on (or behind) a wait cycle.
    let mut indeg = vec![0usize; n];
    for outs in &succ {
        for &j in outs {
            indeg[j] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut drained = 0usize;
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        drained += 1;
        order.push(i);
        for &j in &succ[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push_back(j);
            }
        }
    }
    if drained < n {
        let stuck: Vec<usize> = (0..n).filter(|&i| indeg[i] > 0).collect();
        let named: Vec<String> = stuck
            .iter()
            .take(4)
            .map(|&i| kernel_ref(nodes, i).to_string())
            .collect();
        out.push(Diagnostic {
            kind: DiagnosticKind::EventWaitCycle,
            context: label.to_string(),
            first: None,
            second: None,
            site: None,
            detail: format!(
                "{} of {} kernels can never start: event waits form a cycle through {}",
                stuck.len(),
                n,
                named.join(", ")
            ),
        });
        // Conflict analysis below needs an acyclic HB relation.
        return 0;
    }
    if !scan_pairs {
        return 0;
    }

    // Transitive HB closure over the topological order, as bitsets.
    let words = n.div_ceil(64);
    let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    for &i in order.iter().rev() {
        for &j in &succ[i] {
            let (row_j, row_i) = if i < j {
                let (a, b) = reach.split_at_mut(j);
                (&b[0], &mut a[i])
            } else {
                let (a, b) = reach.split_at_mut(i);
                (&a[j], &mut b[0])
            };
            for w in 0..words {
                row_i[w] |= row_j[w];
            }
            reach[i][j / 64] |= 1 << (j % 64);
        }
    }
    let ordered = |a: usize, b: usize| reach[a][b / 64] >> (b % 64) & 1 == 1;

    let mut pairs = 0u64;
    for i in 0..n {
        if nodes[i].kernel.accesses.is_empty() {
            continue;
        }
        for j in (i + 1)..n {
            if nodes[j].kernel.accesses.is_empty() {
                continue;
            }
            pairs += 1;
            if ordered(i, j) || ordered(j, i) {
                continue;
            }
            if let Some(c) = nodes[i]
                .kernel
                .accesses
                .conflict_with(&nodes[j].kernel.accesses)
            {
                out.push(Diagnostic {
                    kind: DiagnosticKind::MissingDependency,
                    context: label.to_string(),
                    first: Some(kernel_ref(nodes, i)),
                    second: Some(kernel_ref(nodes, j)),
                    site: Some(ConflictSite {
                        buffer: c.buffer,
                        overlap: c.overlap,
                        hazard: c.hazard(),
                    }),
                    detail: "no declared dependency or stream order covers this hazard".to_string(),
                });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BufferId, ByteRange, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(8), Dim3::linear(128), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
    }

    #[test]
    fn round_robin_matches_group_scheduler_shape() {
        let groups = vec![
            vec![kernel("a0"), kernel("a1")],
            vec![kernel("b0")],
            vec![kernel("c0")],
        ];
        let p = DispatchPlan::round_robin("t", &groups, 2);
        assert_eq!(p.len(), 4);
        let streams: Vec<usize> = p.nodes().iter().map(|n| n.stream).collect();
        assert_eq!(streams, vec![0, 0, 1, 0]);
        assert_eq!(p.nodes()[1].deps, vec![0], "chain edge inside group");
        assert!(p.nodes()[2].deps.is_empty());
    }

    #[test]
    fn clean_plan_has_no_diagnostics() {
        let buf = BufferId::from_label("plan/x");
        let groups: Vec<Vec<KernelDesc>> = (0..4)
            .map(|i| {
                vec![kernel("k")
                    .with_tag(i)
                    .writes(buf, ByteRange::span(i * 64, 64))]
            })
            .collect();
        let p = DispatchPlan::round_robin("t", &groups, 4);
        let mut out = Vec::new();
        let pairs = p.check(&mut out);
        assert_eq!(out, vec![]);
        assert_eq!(pairs, 6);
    }

    #[test]
    fn unordered_conflict_is_a_missing_dependency() {
        let buf = BufferId::from_label("plan/y");
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 128)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(64, 192)), 1, &[]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagnosticKind::MissingDependency);
        let s = out[0].to_string();
        assert!(s.contains("write/write"), "{s}");
        assert!(s.contains("[64, 128)"), "{s}");
    }

    #[test]
    fn dep_or_same_stream_covers_the_hazard() {
        let buf = BufferId::from_label("plan/z");
        // Same conflict, covered by a declared dep.
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("w0").writes(buf, ByteRange::new(0, 128)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(0, 128)), 1, &[a]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out, vec![]);
        // Covered by stream FIFO order instead.
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 128)), 3, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(0, 128)), 3, &[]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out, vec![]);
    }

    #[test]
    fn transitive_order_suppresses_false_positives() {
        let buf = BufferId::from_label("plan/t");
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("a").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        let b = p.add(kernel("b"), 1, &[a]);
        p.add(kernel("c").reads(buf, ByteRange::new(0, 64)), 2, &[b]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out, vec![], "a → b → c orders a before c transitively");
    }

    #[test]
    fn cross_stream_wait_cycle_is_detected() {
        // Stream 0: k0 waits on k1 (enqueued later on stream 1); stream 1:
        // k1 waits on k0. Neither can ever start.
        let mut p = DispatchPlan::new("t");
        p.add(kernel("k0"), 0, &[1]);
        p.add(kernel("k1"), 1, &[0]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagnosticKind::EventWaitCycle);
        assert!(out[0].to_string().contains("cycle"), "{}", out[0]);
    }

    #[test]
    fn dangling_dep_is_reported() {
        let mut p = DispatchPlan::new("t");
        p.add(kernel("k"), 0, &[7]);
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagnosticKind::EventWaitCycle);
        assert!(out[0].to_string().contains("nonexistent"), "{}", out[0]);
    }

    #[test]
    fn from_graph_mirrors_graph_launch_stream_inheritance() {
        // Diamond a → {b, c} → d on 4 streams: b inherits a's stream, c
        // takes a fresh one, d inherits b's.
        let nodes = vec![kernel("a"), kernel("b"), kernel("c"), kernel("d")];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let p = DispatchPlan::from_graph("t", &nodes, &deps, 4);
        let s: Vec<usize> = p.nodes().iter().map(|n| n.stream).collect();
        assert_eq!(s[0], s[1], "b continues a's stream");
        assert_ne!(s[2], s[0], "c cannot continue a's stream twice");
        assert_eq!(s[3], s[1], "d continues b's stream");
        let mut out = Vec::new();
        p.check(&mut out);
        assert_eq!(out, vec![]);
    }
}
