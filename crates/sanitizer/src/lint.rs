//! The plan linter: static analyses over a frozen schedule.
//!
//! Where the sanitizer's plan checker ([`crate::plan`]) answers "can this
//! plan race or deadlock?", the linter also answers "is this plan
//! needlessly slow?" — once, at capture time, against the same borrowed
//! [`PlanNodeRef`] views. Findings carry stable codes ([`LintCode`]):
//!
//! - **PL001** unordered hazard, **PL003** wait cycle / dangling wait —
//!   the correctness analyses, re-expressed as lint findings (and skipped
//!   entirely when a symbolic certificate already proves hazard-freedom);
//! - **PL005** peak live-buffer footprint vs. device memory, from
//!   per-buffer lifetime intervals over the plan;
//! - **PW001** redundant synchronization: an event edge already implied
//!   by the rest of the happens-before relation (it is outside the
//!   transitive reduction), so removing it changes nothing;
//! - **PW002** false serialization: provably independent kernels queued
//!   back-to-back on one stream with no occupancy justification;
//! - **PW003** a recorded event no cross-stream wait ever consumes.
//!
//! All analyses are deterministic: nodes are visited in issue order and
//! findings render in the canonical [`crate::diag`] order, so output is
//! byte-identical across runs.

use crate::diag::{LintCode, LintDiag, Severity};
use crate::plan::{hb_edges, PlanNodeRef};
use gpu_sim::DeviceProps;
use std::collections::BTreeMap;

/// Device-derived thresholds the performance lints judge against.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Device memory capacity in bytes (PL005 bound).
    pub mem_bytes: u64,
    /// Threads the device can keep resident at once
    /// (`num_sms · max_threads_per_sm`); a kernel at or above this cap
    /// saturates the device alone, which justifies serializing its
    /// neighbours (suppresses PW002).
    pub max_resident_threads: u64,
}

impl LintConfig {
    /// Thresholds for a simulated device.
    pub fn from_props(props: &DeviceProps) -> Self {
        LintConfig {
            mem_bytes: (props.mem_size_gb * 1e9) as u64,
            max_resident_threads: props.num_sms as u64 * props.max_threads_per_sm as u64,
        }
    }
}

/// Counters describing how much linting happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Plans linted.
    pub plans_linted: u64,
    /// Plan nodes analyzed.
    pub nodes: u64,
    /// Error-severity findings.
    pub errors: u64,
    /// Warning-severity findings.
    pub warnings: u64,
    /// Note-severity findings.
    pub notes: u64,
}

/// Per-plan finding counts returned by [`Linter::lint_plan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanLintSummary {
    /// Correctness (`PLxxx`) findings on this plan.
    pub correctness: usize,
    /// Performance (`PWxxx`) findings on this plan.
    pub performance: usize,
}

/// Accumulates lint findings across captured plans.
#[derive(Debug)]
pub struct Linter {
    cfg: LintConfig,
    diags: Vec<LintDiag>,
    stats: LintStats,
}

impl Linter {
    /// Linter judging against the given device thresholds.
    pub fn new(cfg: LintConfig) -> Self {
        Linter {
            cfg,
            diags: Vec::new(),
            stats: LintStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> LintConfig {
        self.cfg
    }

    /// Record an externally produced finding (the symbolic checker pushes
    /// PL002/PL004 through here so all findings render together).
    pub fn push(&mut self, diag: LintDiag) {
        self.count(diag.code);
        self.diags.push(diag);
    }

    fn count(&mut self, code: LintCode) {
        match code.severity() {
            Severity::Error => self.stats.errors += 1,
            Severity::Warning => self.stats.warnings += 1,
            Severity::Note => self.stats.notes += 1,
        }
    }

    /// Findings accumulated so far (analysis order; sort for rendering).
    pub fn diags(&self) -> &[LintDiag] {
        &self.diags
    }

    /// Drain accumulated findings.
    pub fn take_diags(&mut self) -> Vec<LintDiag> {
        std::mem::take(&mut self.diags)
    }

    /// Render all accumulated findings in canonical order.
    pub fn render(&self) -> String {
        crate::diag::render_all(&self.diags)
    }

    /// Lint counters.
    pub fn stats(&self) -> LintStats {
        self.stats
    }

    /// Run every analysis over one frozen plan.
    ///
    /// `records_events` says whether the plan actually records events
    /// (graph-captured plans do; round-robin chain plans synchronize
    /// implicitly and get no PW003 analysis). `hazards_proven` says a
    /// symbolic certificate already proved cross-chunk hazard-freedom for
    /// this plan's kernels, so the O(n²) PL001 pair scan is skipped.
    pub fn lint_plan(
        &mut self,
        label: &str,
        nodes: &[PlanNodeRef<'_>],
        records_events: bool,
        hazards_proven: bool,
    ) -> PlanLintSummary {
        self.stats.plans_linted += 1;
        self.stats.nodes += nodes.len() as u64;
        let before = self.diags.len();
        let n = nodes.len();

        // PL003 (a): waits on nodes outside the plan can never fire.
        for (i, node) in nodes.iter().enumerate() {
            for &d in node.deps {
                if d >= n {
                    self.push(LintDiag {
                        code: LintCode::WaitCycle,
                        plan: label.to_string(),
                        node: Some(i),
                        message: format!(
                            "node {i} waits on nonexistent node {d} (plan has {n} nodes)"
                        ),
                        notes: vec![],
                    });
                }
            }
        }

        // Shared happens-before machinery: same edges as the plan checker.
        let succ = hb_edges(nodes);
        let mut indeg = vec![0usize; n];
        for outs in &succ {
            for &j in outs {
                indeg[j] += 1;
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if order.len() < n {
            // PL003 (b): a wait cycle. Everything downstream needs an
            // acyclic relation, so stop after reporting.
            let stuck: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .take(4)
                .map(|i| i.to_string())
                .collect();
            self.push(LintDiag {
                code: LintCode::WaitCycle,
                plan: label.to_string(),
                node: None,
                message: format!(
                    "{} of {n} kernels can never start: event waits form a cycle through nodes {}",
                    n - order.len(),
                    stuck.join(", ")
                ),
                notes: vec![],
            });
            return self.summarize(before);
        }

        // Transitive closure as bitsets, in reverse topological order.
        let words = n.div_ceil(64);
        let mut reach: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for &i in order.iter().rev() {
            for &j in &succ[i] {
                let (row_j, row_i) = if i < j {
                    let (a, b) = reach.split_at_mut(j);
                    (&b[0], &mut a[i])
                } else {
                    let (a, b) = reach.split_at_mut(i);
                    (&a[j], &mut b[0])
                };
                for w in 0..words {
                    row_i[w] |= row_j[w];
                }
                reach[i][j / 64] |= 1 << (j % 64);
            }
        }
        let reaches = |a: usize, b: usize| reach[a][b / 64] >> (b % 64) & 1 == 1;

        // PL001: conflicting kernels with no HB ordering (the pair scan a
        // symbolic certificate makes unnecessary).
        if !hazards_proven {
            for i in 0..n {
                if nodes[i].kernel.accesses.is_empty() {
                    continue;
                }
                for j in (i + 1)..n {
                    if nodes[j].kernel.accesses.is_empty() || reaches(i, j) || reaches(j, i) {
                        continue;
                    }
                    if let Some(c) = nodes[i]
                        .kernel
                        .accesses
                        .conflict_with(&nodes[j].kernel.accesses)
                    {
                        self.push(LintDiag {
                            code: LintCode::UnorderedHazard,
                            plan: label.to_string(),
                            node: Some(i),
                            message: format!(
                                "nodes {i} (`{}`) and {j} (`{}`) race: {} on {} over {}",
                                nodes[i].kernel.name,
                                nodes[j].kernel.name,
                                c.hazard(),
                                c.buffer,
                                c.overlap
                            ),
                            notes: vec![],
                        });
                    }
                }
            }
        }

        // PW001: event edges outside the transitive reduction. An event
        // edge is a declared cross-stream dep d → i; it is redundant iff
        // some *other* direct successor w of d already reaches i — then
        // d → w → … → i orders the pair without the event.
        for (i, node) in nodes.iter().enumerate() {
            for &d in node.deps {
                if d >= n || d == i || nodes[d].stream == node.stream {
                    continue;
                }
                let via = succ[d].iter().copied().find(|&w| w != i && reaches(w, i));
                if let Some(w) = via {
                    self.push(LintDiag {
                        code: LintCode::RedundantSync,
                        plan: label.to_string(),
                        node: Some(i),
                        message: format!(
                            "wait of node {i} (stream {}) on node {d} (stream {}) is already \
                             implied via node {w}",
                            node.stream, nodes[d].stream
                        ),
                        notes: vec![
                            "removing this event edge preserves the happens-before relation"
                                .to_string(),
                        ],
                    });
                }
            }
        }

        // PW002: independent kernels serialized by stream FIFO order.
        // Consecutive same-stream launches with no declared or transitive
        // ordering, disjoint access sets, and no occupancy justification
        // could have run concurrently. Aggregated per stream.
        let mut last_on_stream: BTreeMap<usize, usize> = BTreeMap::new();
        let mut per_stream: BTreeMap<usize, (usize, Option<(usize, usize)>)> = BTreeMap::new();
        for (c, node) in nodes.iter().enumerate() {
            let p = match last_on_stream.insert(node.stream, c) {
                Some(p) => p,
                None => continue,
            };
            if node.deps.contains(&p) {
                continue; // declared dependence: serialization is required
            }
            // Ordered through some other path anyway (the FIFO edge is not
            // what serializes them).
            let alt = succ[p].iter().any(|&w| w != c && reaches(w, c));
            if alt {
                continue;
            }
            let (ka, kb) = (&nodes[p].kernel, &nodes[c].kernel);
            if ka.accesses.is_empty() || kb.accesses.is_empty() {
                continue; // independence not provable
            }
            if ka.accesses.conflict_with(&kb.accesses).is_some() {
                continue; // dependent: must serialize
            }
            let threads =
                |k: &gpu_sim::KernelDesc| k.launch.grid.count() * k.launch.block.count();
            if threads(ka) >= self.cfg.max_resident_threads
                || threads(kb) >= self.cfg.max_resident_threads
            {
                continue; // either kernel saturates the device alone
            }
            let e = per_stream.entry(node.stream).or_insert((0, None));
            e.0 += 1;
            e.1.get_or_insert((p, c));
        }
        for (stream, (count, example)) in per_stream {
            let (p, c) = example.expect("counted stream has an example pair");
            self.push(LintDiag {
                code: LintCode::FalseSerialization,
                plan: label.to_string(),
                node: Some(p),
                message: format!(
                    "{count} independent kernel pair(s) serialized on stream {stream}; e.g. \
                     nodes {p} (`{}`) and {c} (`{}`) have disjoint accesses, no ordering \
                     requirement, and neither saturates the device",
                    nodes[p].kernel.name, nodes[c].kernel.name
                ),
                notes: vec![format!(
                    "occupancy bar: {} resident threads",
                    self.cfg.max_resident_threads
                )],
            });
        }

        // PW003: recorded events never consumed by a cross-stream wait.
        // Only meaningful for plans that record events at all.
        if records_events {
            let mut waited = vec![false; n];
            for node in nodes {
                for &d in node.deps {
                    if d < n && nodes[d].stream != node.stream {
                        waited[d] = true;
                    }
                }
            }
            let unused: Vec<usize> = (0..n).filter(|&i| !waited[i]).collect();
            if !unused.is_empty() {
                let shown: Vec<String> = unused.iter().take(4).map(|i| i.to_string()).collect();
                self.push(LintDiag {
                    code: LintCode::UnusedEvent,
                    plan: label.to_string(),
                    node: Some(unused[0]),
                    message: format!(
                        "{} of {n} recorded events are never waited on across streams \
                         (nodes {}{})",
                        unused.len(),
                        shown.join(", "),
                        if unused.len() > shown.len() {
                            ", …"
                        } else {
                            ""
                        }
                    ),
                    notes: vec![
                        "record-after-every-launch capture trades unused events for \
                         replay-time simplicity"
                            .to_string(),
                    ],
                });
            }
        }

        // PL005: peak live-buffer footprint vs. device memory. A buffer's
        // footprint is the highest byte any access touches; it is live
        // from its first to its last accessing node in issue order.
        let mut bufs: BTreeMap<u64, (usize, usize, u64)> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            for acc in node
                .kernel
                .accesses
                .reads
                .iter()
                .chain(&node.kernel.accesses.writes)
            {
                let e = bufs.entry(acc.buffer.0).or_insert((i, i, 0));
                e.1 = i;
                e.2 = e.2.max(acc.range.end);
            }
        }
        let mut delta = vec![0i128; n + 1];
        for &(first, last, bytes) in bufs.values() {
            delta[first] += bytes as i128;
            delta[last + 1] -= bytes as i128;
        }
        let mut live = 0i128;
        let mut peak = 0i128;
        let mut peak_at = 0usize;
        for (i, d) in delta.iter().enumerate().take(n) {
            live += d;
            if live > peak {
                peak = live;
                peak_at = i;
            }
        }
        if peak as u128 > self.cfg.mem_bytes as u128 {
            self.push(LintDiag {
                code: LintCode::PeakMemory,
                plan: label.to_string(),
                node: Some(peak_at),
                message: format!(
                    "peak live-buffer footprint {peak} B at node {peak_at} exceeds device \
                     memory {} B ({} buffers live)",
                    self.cfg.mem_bytes,
                    bufs.values()
                        .filter(|&&(f, l, _)| f <= peak_at && peak_at <= l)
                        .count()
                ),
                notes: vec![],
            });
        }

        self.summarize(before)
    }

    fn summarize(&self, before: usize) -> PlanLintSummary {
        let mut s = PlanLintSummary::default();
        for d in &self.diags[before..] {
            if d.code.is_correctness() {
                s.correctness += 1;
            } else {
                s.performance += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::DispatchPlan;
    use gpu_sim::{BufferId, ByteRange, Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn cfg() -> LintConfig {
        LintConfig {
            mem_bytes: 1 << 30,
            max_resident_threads: 1 << 16,
        }
    }

    fn kernel(name: &str) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(2), Dim3::linear(64), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
    }

    fn lint(plan: &DispatchPlan, records_events: bool) -> (Linter, PlanLintSummary) {
        let mut l = Linter::new(cfg());
        let s = l.lint_plan(&plan.label, &plan.node_refs(), records_events, false);
        (l, s)
    }

    #[test]
    fn redundant_event_edge_is_pw001() {
        // a(s0) → b(s1) → c(s0), plus a direct wait c → a: implied.
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("a"), 0, &[]);
        let b = p.add(kernel("b"), 1, &[a]);
        p.add(kernel("c"), 2, &[b, a]);
        let (l, s) = lint(&p, true);
        assert_eq!(s.performance, 1 + 1, "PW001 plus PW003 for unused events");
        let codes: Vec<&str> = l.diags().iter().map(|d| d.code.code()).collect();
        assert!(codes.contains(&"PW001"), "{codes:?}");
        let d = l.diags().iter().find(|d| d.code.code() == "PW001").unwrap();
        assert!(d.message.contains("implied via node 1"), "{}", d.message);
    }

    #[test]
    fn necessary_event_edge_is_not_flagged() {
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("a"), 0, &[]);
        p.add(kernel("b"), 1, &[a]);
        let (l, _) = lint(&p, false);
        assert!(l.diags().iter().all(|d| d.code.code() != "PW001"));
    }

    #[test]
    fn independent_same_stream_pair_is_pw002() {
        let buf = BufferId::from_label("lint/a");
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(64, 128)), 0, &[]);
        let (l, s) = lint(&p, false);
        assert_eq!(s.performance, 1);
        assert_eq!(l.diags()[0].code.code(), "PW002");
        assert!(l.diags()[0].message.contains("stream 0"));
    }

    #[test]
    fn pw002_suppressed_by_dep_conflict_or_occupancy() {
        let buf = BufferId::from_label("lint/b");
        // Declared dep: required serialization.
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(64, 128)), 0, &[a]);
        assert_eq!(lint(&p, false).1.performance, 0);
        // Conflicting accesses: required serialization.
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        assert_eq!(lint(&p, false).1.performance, 0);
        // Saturating kernel: occupancy-justified.
        let big = KernelDesc::new(
            "big",
            LaunchConfig::new(Dim3::linear(1024), Dim3::linear(256), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
        .writes(buf, ByteRange::new(0, 64));
        let mut p = DispatchPlan::new("t");
        p.add(big, 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(64, 128)), 0, &[]);
        assert_eq!(lint(&p, false).1.performance, 0);
    }

    #[test]
    fn unordered_hazard_is_pl001_unless_proven() {
        let buf = BufferId::from_label("lint/c");
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(32, 96)), 1, &[]);
        let (l, s) = lint(&p, false);
        assert_eq!(s.correctness, 1);
        assert_eq!(l.diags()[0].code.code(), "PL001");
        // With a certificate the scan is skipped.
        let mut l2 = Linter::new(cfg());
        let s2 = l2.lint_plan(&p.label, &p.node_refs(), false, true);
        assert_eq!(s2.correctness, 0);
    }

    #[test]
    fn wait_cycle_and_dangling_wait_are_pl003() {
        let mut p = DispatchPlan::new("t");
        p.add(kernel("k0"), 0, &[1]);
        p.add(kernel("k1"), 1, &[0]);
        let (l, s) = lint(&p, false);
        assert_eq!(s.correctness, 1);
        assert_eq!(l.diags()[0].code.code(), "PL003");

        let mut p = DispatchPlan::new("t");
        p.add(kernel("k"), 0, &[9]);
        let (l, _) = lint(&p, false);
        assert!(l.diags().iter().any(|d| d.message.contains("nonexistent")));
    }

    #[test]
    fn over_capacity_footprint_is_pl005() {
        let mut l = Linter::new(LintConfig {
            mem_bytes: 100,
            max_resident_threads: 1 << 16,
        });
        let buf = BufferId::from_label("lint/d");
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w").writes(buf, ByteRange::new(0, 200)), 0, &[]);
        let s = l.lint_plan(&p.label, &p.node_refs(), false, false);
        assert_eq!(s.correctness, 1);
        assert_eq!(l.diags()[0].code.code(), "PL005");
        assert!(
            l.diags()[0].message.contains("200 B"),
            "{}",
            l.diags()[0].message
        );
    }

    #[test]
    fn disjoint_lifetimes_do_not_sum() {
        // Two 80-byte buffers, never live together: peak 80 < 100.
        let mut l = Linter::new(LintConfig {
            mem_bytes: 100,
            max_resident_threads: 1 << 16,
        });
        let (b1, b2) = (
            BufferId::from_label("lint/e1"),
            BufferId::from_label("lint/e2"),
        );
        let mut p = DispatchPlan::new("t");
        let a = p.add(kernel("w1").writes(b1, ByteRange::new(0, 80)), 0, &[]);
        p.add(kernel("w2").writes(b2, ByteRange::new(0, 80)), 0, &[a]);
        let s = l.lint_plan(&p.label, &p.node_refs(), false, false);
        assert_eq!(s.correctness, 0, "{}", l.render());
    }

    #[test]
    fn unused_events_only_for_recording_plans() {
        let mut p = DispatchPlan::new("t");
        p.add(kernel("a"), 0, &[]);
        p.add(kernel("b"), 1, &[]);
        assert_eq!(lint(&p, false).1.performance, 0);
        let (l, s) = lint(&p, true);
        assert_eq!(s.performance, 1);
        assert_eq!(l.diags()[0].code.code(), "PW003");
    }

    #[test]
    fn stats_count_by_severity() {
        let buf = BufferId::from_label("lint/f");
        let mut l = Linter::new(cfg());
        let mut p = DispatchPlan::new("t");
        p.add(kernel("w0").writes(buf, ByteRange::new(0, 64)), 0, &[]);
        p.add(kernel("w1").writes(buf, ByteRange::new(32, 96)), 1, &[]);
        l.lint_plan(&p.label, &p.node_refs(), false, false);
        assert_eq!(l.stats().plans_linted, 1);
        assert_eq!(l.stats().errors, 1);
    }
}
