#![warn(missing_docs)]

//! Stream-schedule sanitizer for the simulated CUDA runtime.
//!
//! GLP4NN's headline claim is *convergence invariance*: re-scheduling a
//! layer's batch-split kernels onto concurrent streams never changes the
//! math, because chunk output regions are disjoint and every true
//! dependency is preserved. This crate turns that claim from an argument
//! into a machine-checked property, in two layers:
//!
//! - **Static plan checking** ([`plan::DispatchPlan`]): given the schedule
//!   a dispatcher is about to execute — kernels, target streams, declared
//!   dependencies — prove chunk output regions pairwise disjoint, flag
//!   RAW/WAW/WAR hazards not covered by a declared dep or stream order,
//!   and detect event-wait cycles (deadlock). All before anything runs.
//! - **Dynamic happens-before checking** ([`hb`]): replay the device's
//!   recorded command trace (launch, event record/wait, synchronize) with
//!   per-stream vector clocks and report any pair of overlapping accesses
//!   (at least one write) unordered by happens-before.
//!
//! Both layers consume the declared memory access sets on
//! [`gpu_sim::KernelDesc`] ([`gpu_sim::AccessSet`]); kernels that declare
//! nothing are skipped, so instrumentation can be adopted incrementally.
//!
//! The [`Sanitizer`] accumulates [`Diagnostic`]s across checks; a clean
//! run keeps [`Sanitizer::reports`] empty.

pub mod diag;
pub mod fabric;
pub mod hb;
pub mod lint;
pub mod plan;
pub mod report;
pub mod symbolic;

pub use diag::{LintCode, LintDiag, Severity};
pub use lint::{LintConfig, LintStats, Linter, PlanLintSummary};
pub use plan::{DispatchPlan, PlanNode, PlanNodeRef};
pub use report::{ConflictSite, Diagnostic, DiagnosticKind, KernelRef};
pub use symbolic::{
    SymAccess, SymAccessSet, SymConflict, SymGroupSpec, SymKernel, SymRange, SymVerdict,
};

use gpu_sim::{CmdRecord, Device, Fabric, KernelDesc};
use std::collections::HashMap;

/// How much checking the runtime should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// No checking; zero overhead (the default).
    #[default]
    Off,
    /// Static checks only: chunk disjointness and dispatch-plan validation
    /// before launch.
    PlanOnly,
    /// Static checks plus dynamic happens-before replay of the executed
    /// command trace.
    Full,
}

/// Counters describing how much checking actually happened — so tests can
/// assert the sanitizer ran, not just that it stayed silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerStats {
    /// Chunk pairs compared for output-region disjointness.
    pub chunk_pairs: u64,
    /// Kernel pairs compared by the static plan checker.
    pub plan_pairs: u64,
    /// Plans validated.
    pub plans_checked: u64,
    /// Launches replayed by the dynamic checker.
    pub trace_kernels: u64,
    /// Launch pairs compared by the dynamic checker.
    pub trace_pairs: u64,
    /// Symbolic disjointness proofs run (one per dispatch site, cached).
    pub symbolic_proofs: u64,
    /// Chunks admitted by certificate conformance instead of pairwise
    /// comparison.
    pub symbolic_chunks: u64,
    /// Captures fully admitted by a symbolic certificate (chunk pairwise
    /// scan *and* plan pair scan skipped).
    pub certified_captures: u64,
    /// Concrete groups that failed certificate conformance (fell back to
    /// pairwise checking).
    pub conformance_misses: u64,
    /// Capture checks that ran the pairwise path (no spec, unsupported
    /// spec, conformance miss, or forced baseline).
    pub pairwise_fallbacks: u64,
}

/// Accumulates checks and their diagnostics over a run.
#[derive(Debug, Default)]
pub struct Sanitizer {
    mode: SanitizeMode,
    reports: Vec<Diagnostic>,
    stats: SanitizerStats,
    /// How much of the device command log has already been replayed.
    log_cursor: usize,
    /// Per-device cursors for merged fabric replay ([`check_fabric`]
    /// (Sanitizer::check_fabric)); indexed by fabric device index.
    fabric_cursors: Vec<usize>,
    /// When set, [`check_chunks_spec`](Sanitizer::check_chunks_spec)
    /// ignores certificates and always runs the pairwise checker — the
    /// baseline arm of the symbolic-vs-pairwise benchmark.
    force_pairwise: bool,
    /// Cached symbolic verdicts, keyed by dispatch site
    /// (`net/layer/phase`) and guarded by the exact spec they were proven
    /// for: a site whose declaration changes (reshape, site collision) is
    /// re-proven rather than inheriting a stale verdict.
    certs: HashMap<String, (SymGroupSpec, SymVerdict)>,
    /// Attached plan linter, if any.
    linter: Option<Linter>,
}

impl Sanitizer {
    /// Sanitizer in the given mode.
    pub fn new(mode: SanitizeMode) -> Self {
        Sanitizer {
            mode,
            ..Default::default()
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> SanitizeMode {
        self.mode
    }

    /// Whether any checking is on.
    pub fn is_enabled(&self) -> bool {
        self.mode != SanitizeMode::Off
    }

    /// Whether dynamic (trace) checking is on.
    pub fn is_full(&self) -> bool {
        self.mode == SanitizeMode::Full
    }

    /// Static check: the batch-split chunks of one layer must have
    /// pairwise non-conflicting access sets (disjoint output regions), or
    /// dispatching them concurrently is not convergence-invariant. Each
    /// group is one chunk's kernel chain; its access set is the union over
    /// the chain.
    pub fn check_chunks(&mut self, context: &str, groups: &[Vec<KernelDesc>]) {
        if !self.is_enabled() {
            return;
        }
        let unions: Vec<gpu_sim::AccessSet> = groups
            .iter()
            .map(|g| {
                g.iter().fold(gpu_sim::AccessSet::default(), |acc, k| {
                    gpu_sim::AccessSet::union(&acc, &k.accesses)
                })
            })
            .collect();
        for i in 0..unions.len() {
            if unions[i].is_empty() {
                continue;
            }
            for j in (i + 1)..unions.len() {
                if unions[j].is_empty() {
                    continue;
                }
                self.stats.chunk_pairs += 1;
                if let Some(c) = unions[i].conflict_with(&unions[j]) {
                    let chunk_ref = |g: usize| {
                        groups[g].first().map(|k| KernelRef {
                            name: k.name.clone(),
                            tag: k.tag,
                            stream: None,
                            index: g,
                        })
                    };
                    self.reports.push(Diagnostic {
                        kind: DiagnosticKind::OverlappingChunkRegions,
                        context: context.to_string(),
                        first: chunk_ref(i),
                        second: chunk_ref(j),
                        site: Some(ConflictSite {
                            buffer: c.buffer,
                            overlap: c.overlap,
                            hazard: c.hazard(),
                        }),
                        detail: format!(
                            "chunks {i} and {j} are dispatched concurrently but their \
                             declared regions overlap"
                        ),
                    });
                }
            }
        }
    }

    /// Force the pairwise chunk checker even when a symbolic certificate
    /// is available — the baseline arm of capture-time benchmarks.
    pub fn set_force_pairwise(&mut self, force: bool) {
        self.force_pairwise = force;
    }

    /// Attach a plan linter; captured plans are linted as they are
    /// validated and symbolic findings (PL002/PL004) are mirrored into it.
    pub fn attach_linter(&mut self, cfg: LintConfig) {
        self.linter = Some(Linter::new(cfg));
    }

    /// The attached linter, if any.
    pub fn linter(&self) -> Option<&Linter> {
        self.linter.as_ref()
    }

    /// Mutable access to the attached linter, if any.
    pub fn linter_mut(&mut self) -> Option<&mut Linter> {
        self.linter.as_mut()
    }

    /// Certificate-backed chunk check. `site` keys the certificate cache
    /// (conventionally `net/layer/phase` — shape- and mode-independent);
    /// `spec` is the layer's symbolic declaration of the per-chunk kernel
    /// chain; `groups` are the concrete chunks about to be dispatched.
    ///
    /// Returns `true` iff the capture is **certified**: the spec is
    /// symbolically proven hazard-free for all shapes and every concrete
    /// group conforms to it — in which case no pairwise comparison ran
    /// and the caller may also skip the plan-level pair scan
    /// ([`check_plan_ref_certified`](Sanitizer::check_plan_ref_certified)).
    /// Any other outcome (refuted, unsupported, mismatch, forced
    /// baseline) returns `false`; unsupported/mismatch fall back to
    /// [`check_chunks`](Sanitizer::check_chunks), a refutation is
    /// reported directly.
    pub fn check_chunks_spec(
        &mut self,
        context: &str,
        site: &str,
        spec: &SymGroupSpec,
        groups: &[Vec<KernelDesc>],
    ) -> bool {
        if !self.is_enabled() {
            return false;
        }
        if self.force_pairwise {
            self.stats.pairwise_fallbacks += 1;
            self.check_chunks(context, groups);
            return false;
        }
        let verdict = match self.certs.get(site) {
            Some((cached_spec, v)) if cached_spec == spec => v.clone(),
            _ => {
                let v = spec.prove();
                self.stats.symbolic_proofs += 1;
                self.certs
                    .insert(site.to_string(), (spec.clone(), v.clone()));
                v
            }
        };
        match verdict {
            SymVerdict::Proven { .. } => {
                for (i, g) in groups.iter().enumerate() {
                    if let Err(why) = spec.conforms(g, i as u64) {
                        self.stats.conformance_misses += 1;
                        if let Some(l) = &mut self.linter {
                            l.push(LintDiag {
                                code: LintCode::SymbolicMismatch,
                                plan: context.to_string(),
                                node: None,
                                message: format!(
                                    "declaration for site `{site}` disagrees with the kernels \
                                     actually built: {why}"
                                ),
                                notes: vec![
                                    "certificate unusable; fell back to per-instance pairwise \
                                     checking"
                                        .to_string(),
                                ],
                            });
                        }
                        self.stats.pairwise_fallbacks += 1;
                        self.check_chunks(context, groups);
                        return false;
                    }
                }
                self.stats.symbolic_chunks += groups.len() as u64;
                self.stats.certified_captures += 1;
                true
            }
            SymVerdict::Refuted(c) => {
                let detail = format!(
                    "symbolic refutation for site `{site}`: chunks {} and {} overlap on {} \
                     over {} in every shape containing both",
                    c.chunk_a, c.chunk_b, c.buffer, c.overlap
                );
                if let Some(l) = &mut self.linter {
                    l.push(LintDiag {
                        code: LintCode::OverlappingChunks,
                        plan: context.to_string(),
                        node: None,
                        message: detail.clone(),
                        notes: vec![],
                    });
                }
                self.reports.push(Diagnostic {
                    kind: DiagnosticKind::OverlappingChunkRegions,
                    context: context.to_string(),
                    first: None,
                    second: None,
                    site: Some(ConflictSite {
                        buffer: c.buffer,
                        overlap: c.overlap,
                        hazard: c.hazard,
                    }),
                    detail,
                });
                false
            }
            SymVerdict::Unsupported { detail } => {
                if let Some(l) = &mut self.linter {
                    l.push(LintDiag {
                        code: LintCode::SymbolicMismatch,
                        plan: context.to_string(),
                        node: None,
                        message: format!("site `{site}` is outside the affine fragment: {detail}"),
                        notes: vec!["fell back to per-instance pairwise checking".to_string()],
                    });
                }
                self.stats.pairwise_fallbacks += 1;
                self.check_chunks(context, groups);
                false
            }
        }
    }

    /// Structure-only plan check (dangling deps, wait cycles) for
    /// captures admitted by a symbolic certificate: hazard-freedom is
    /// already proven, so the O(n²) pair scan of
    /// [`check_plan_ref`](Sanitizer::check_plan_ref) is skipped.
    pub fn check_plan_ref_certified(&mut self, label: &str, nodes: &[PlanNodeRef<'_>]) {
        if !self.is_enabled() {
            return;
        }
        self.stats.plans_checked += 1;
        plan::check_nodes(label, nodes, &mut self.reports, false);
    }

    /// Lint a captured plan through the attached linter, if any. Returns
    /// the per-plan finding counts, or `None` when no linter is attached.
    pub fn lint_plan_nodes(
        &mut self,
        label: &str,
        nodes: &[PlanNodeRef<'_>],
        records_events: bool,
        hazards_proven: bool,
    ) -> Option<PlanLintSummary> {
        self.linter
            .as_mut()
            .map(|l| l.lint_plan(label, nodes, records_events, hazards_proven))
    }

    /// Static check of a dispatch plan: out-of-range deps, event-wait
    /// cycles, and hazards not covered by declared deps or stream order.
    pub fn check_plan(&mut self, plan: &DispatchPlan) {
        if !self.is_enabled() {
            return;
        }
        self.stats.plans_checked += 1;
        self.stats.plan_pairs += plan.check(&mut self.reports);
    }

    /// Static check of a schedule given as borrowed node views — the
    /// zero-copy form of [`check_plan`](Sanitizer::check_plan), used to
    /// validate a captured execution plan exactly once at capture time
    /// without rebuilding a [`DispatchPlan`].
    pub fn check_plan_ref(&mut self, label: &str, nodes: &[PlanNodeRef<'_>]) {
        if !self.is_enabled() {
            return;
        }
        self.stats.plans_checked += 1;
        self.stats.plan_pairs += plan::check_nodes(label, nodes, &mut self.reports, true);
    }

    /// Static check of a kernel DAG (stream-agnostic): every pair of
    /// conflicting kernels must be ordered by the dependency closure —
    /// otherwise *some* legal schedule races. Pass the graph as
    /// `(nodes, deps)` slices (e.g. `KernelGraph::nodes()` +
    /// `KernelGraph::all_deps()`).
    pub fn check_graph(&mut self, context: &str, nodes: &[KernelDesc], deps: &[Vec<usize>]) {
        if !self.is_enabled() {
            return;
        }
        // A graph is a plan with every node on its own stream: the only
        // ordering left is the declared dependency closure.
        let mut plan = DispatchPlan::new(context);
        for (i, k) in nodes.iter().enumerate() {
            let d = deps.get(i).map(Vec::as_slice).unwrap_or(&[]);
            plan.add(k.clone(), i, d);
        }
        self.check_plan(&plan);
    }

    /// Dynamic check: replay the portion of `dev`'s command log recorded
    /// since the last call, with vector clocks, reporting unordered
    /// conflicting launches and stalled (deadlocked) replays.
    pub fn check_device(&mut self, dev: &Device) {
        if !self.is_full() {
            return;
        }
        let log = dev.command_log();
        if self.log_cursor >= log.len() {
            return;
        }
        // Only replay whole sync-delimited segments plus the (possibly
        // unfinished) tail; the cursor always advances to the log end, and
        // commands before the cursor are already ordered against commands
        // after it by the completed run() they precede.
        let (kernels, pairs) = hb::check_log(
            dev,
            &log[self.log_cursor..],
            "device-trace",
            &mut self.reports,
        );
        self.log_cursor = log.len();
        self.stats.trace_kernels += kernels;
        self.stats.trace_pairs += pairs;
    }

    /// Dynamic cross-device check: replay the command-log suffixes of all
    /// of a fabric's devices *together* since the last call, following
    /// peer-to-peer copies across device boundaries. A copy reads its
    /// source range on the source device and writes its destination range
    /// on the destination device; the destination-side wait marker is the
    /// happens-before edge consumers must be ordered behind. Use this (in
    /// addition to per-device [`check_device`](Sanitizer::check_device))
    /// whenever devices exchange data through a [`Fabric`].
    pub fn check_fabric(&mut self, fabric: &Fabric, devs: &[&Device]) {
        if !self.is_full() {
            return;
        }
        self.fabric_cursors.resize(devs.len(), 0);
        let logs: Vec<&[CmdRecord]> = devs
            .iter()
            .zip(&self.fabric_cursors)
            .map(|(d, &cur)| &d.command_log()[cur.min(d.command_log().len())..])
            .collect();
        if logs.iter().all(|l| l.is_empty()) {
            return;
        }
        let (kernels, pairs) =
            fabric::check_fabric_logs(fabric, devs, &logs, "fabric-trace", &mut self.reports);
        for (cur, d) in self.fabric_cursors.iter_mut().zip(devs) {
            *cur = d.command_log().len();
        }
        self.stats.trace_kernels += kernels;
        self.stats.trace_pairs += pairs;
    }

    /// Diagnostics accumulated so far.
    pub fn reports(&self) -> &[Diagnostic] {
        &self.reports
    }

    /// Drain accumulated diagnostics.
    pub fn take_reports(&mut self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.reports)
    }

    /// Checking counters.
    pub fn stats(&self) -> SanitizerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BufferId, ByteRange, DeviceProps, Dim3, KernelCost, LaunchConfig};

    fn kernel(name: &str) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
    }

    #[test]
    fn off_mode_checks_nothing() {
        let buf = BufferId::from_label("lib/a");
        let mut san = Sanitizer::new(SanitizeMode::Off);
        let groups = vec![
            vec![kernel("w").writes(buf, ByteRange::new(0, 64))],
            vec![kernel("w").writes(buf, ByteRange::new(0, 64))],
        ];
        san.check_chunks("layer", &groups);
        assert!(!san.is_enabled());
        assert_eq!(san.reports(), &[]);
        assert_eq!(san.stats().chunk_pairs, 0);
    }

    #[test]
    fn disjoint_chunks_pass_overlapping_chunks_fail() {
        let buf = BufferId::from_label("lib/b");
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        let disjoint: Vec<Vec<KernelDesc>> = (0..3)
            .map(|i| {
                vec![kernel("chunk")
                    .with_tag(i)
                    .writes(buf, ByteRange::span(i * 100, 100))]
            })
            .collect();
        san.check_chunks("net/conv/fwd", &disjoint);
        assert_eq!(san.reports(), &[]);
        assert_eq!(san.stats().chunk_pairs, 3);

        let mut overlapped = disjoint.clone();
        overlapped[2][0] = kernel("chunk")
            .with_tag(2)
            .writes(buf, ByteRange::new(150, 250));
        san.check_chunks("net/conv/fwd", &overlapped);
        assert_eq!(san.reports().len(), 1);
        assert_eq!(
            san.reports()[0].kind,
            DiagnosticKind::OverlappingChunkRegions
        );
        let s = san.reports()[0].to_string();
        assert!(s.contains("[150, 200)"), "{s}");
    }

    #[test]
    fn chunk_union_covers_whole_chain() {
        // The conflict is between the *second* kernels of each chain.
        let buf = BufferId::from_label("lib/c");
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        let groups = vec![
            vec![
                kernel("a0"),
                kernel("a1").writes(buf, ByteRange::new(0, 64)),
            ],
            vec![
                kernel("b0"),
                kernel("b1").writes(buf, ByteRange::new(32, 96)),
            ],
        ];
        san.check_chunks("layer", &groups);
        assert_eq!(san.reports().len(), 1);
    }

    #[test]
    fn full_mode_replays_device_incrementally() {
        let buf = BufferId::from_label("lib/d");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        let mut san = Sanitizer::new(SanitizeMode::Full);

        dev.launch(s0, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        san.check_device(&dev);
        assert_eq!(san.reports(), &[]);
        assert_eq!(san.stats().trace_kernels, 1);

        // Second episode conflicts with the first only across the sync —
        // which orders them, so still clean.
        dev.launch(s1, kernel("w1").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        san.check_device(&dev);
        assert_eq!(san.reports(), &[]);
        assert_eq!(san.stats().trace_kernels, 2);

        // Now a real race within one episode.
        dev.launch(s0, kernel("w2").writes(buf, ByteRange::new(0, 64)));
        dev.launch(s1, kernel("w3").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        san.check_device(&dev);
        assert_eq!(san.reports().len(), 1);
        assert_eq!(san.reports()[0].kind, DiagnosticKind::DataRace);
    }

    #[test]
    fn plan_only_mode_skips_dynamic_checks() {
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        dev.launch(s, kernel("k"));
        dev.run();
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.check_device(&dev);
        assert_eq!(san.stats().trace_kernels, 0);
    }

    #[test]
    fn graph_check_requires_deps_to_cover_conflicts() {
        let buf = BufferId::from_label("lib/e");
        let nodes = vec![
            kernel("w").writes(buf, ByteRange::new(0, 64)),
            kernel("r").reads(buf, ByteRange::new(0, 64)),
        ];
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        san.check_graph("g", &nodes, &[vec![], vec![0]]);
        assert_eq!(san.reports(), &[]);
        san.check_graph("g", &nodes, &[vec![], vec![]]);
        assert_eq!(san.reports().len(), 1);
        assert_eq!(san.reports()[0].kind, DiagnosticKind::MissingDependency);
    }

    #[test]
    fn take_reports_drains() {
        let buf = BufferId::from_label("lib/f");
        let mut san = Sanitizer::new(SanitizeMode::PlanOnly);
        let groups = vec![
            vec![kernel("w").writes(buf, ByteRange::new(0, 64))],
            vec![kernel("w").writes(buf, ByteRange::new(0, 64))],
        ];
        san.check_chunks("layer", &groups);
        assert_eq!(san.take_reports().len(), 1);
        assert_eq!(san.reports(), &[]);
    }
}
