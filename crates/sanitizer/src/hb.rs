//! Dynamic happens-before race detection over the device command log.
//!
//! The engine records every host-issued stream command ([`CmdRecord`]); the
//! checker replays that trace with one vector clock per stream, CUDA
//! semantics:
//!
//! - a stream executes its commands in FIFO order;
//! - `record(e)` snapshots the recording stream's clock into `e`;
//! - `wait(e)` joins `e`'s snapshot into the waiting stream's clock — and
//!   can only fire after the record has (the engine blocks a wait enqueued
//!   before its record until the event completes);
//! - a [`CmdRecord::Sync`] marker (a completed [`run`](gpu_sim::Device::run)
//!   episode) orders everything before it against everything after, so each
//!   sync-delimited segment is checked independently.
//!
//! Two launches with overlapping declared accesses (at least one write)
//! whose clocks are incomparable are a data race. A segment whose replay
//! stalls (a wait whose event is never recorded, or waits forming a cycle)
//! is a deadlock.

use crate::report::{ConflictSite, Diagnostic, DiagnosticKind, KernelRef};
use gpu_sim::{CmdRecord, Device, EventId, StreamId};
use std::collections::{HashMap, VecDeque};

/// A launched kernel's happens-before summary within one segment.
struct LaunchRecord {
    /// Which stream launched it.
    stream: StreamId,
    /// The launching stream's scalar clock at launch (after increment).
    epoch: u64,
    /// Snapshot of the launching stream's vector clock at launch.
    clock: HashMap<StreamId, u64>,
    /// Index into the device kernel table.
    kernel: gpu_sim::KernelId,
    /// Position in the command log (for diagnostics).
    log_index: usize,
}

impl LaunchRecord {
    /// `self` happens before `other` iff `other`'s snapshot has seen
    /// `self`'s epoch on `self`'s stream.
    fn happens_before(&self, other: &LaunchRecord) -> bool {
        other.clock.get(&self.stream).copied().unwrap_or(0) >= self.epoch
    }
}

/// Replay `log` (one sync-delimited segment at a time) against the kernel
/// descriptors of `dev`, appending diagnostics to `out` under `context`.
/// Returns `(kernels_checked, pairs_compared)`.
pub(crate) fn check_log(
    dev: &Device,
    log: &[CmdRecord],
    context: &str,
    out: &mut Vec<Diagnostic>,
) -> (u64, u64) {
    let mut kernels = 0u64;
    let mut pairs = 0u64;
    for segment in log.split(|c| *c == CmdRecord::Sync) {
        let (k, p) = check_segment(dev, segment, context, out);
        kernels += k;
        pairs += p;
    }
    (kernels, pairs)
}

fn check_segment(
    dev: &Device,
    segment: &[CmdRecord],
    context: &str,
    out: &mut Vec<Diagnostic>,
) -> (u64, u64) {
    if segment.is_empty() {
        return (0, 0);
    }

    // Partition the segment into per-stream FIFOs, remembering log order.
    let mut fifos: HashMap<StreamId, VecDeque<(usize, CmdRecord)>> = HashMap::new();
    let mut stream_order: Vec<StreamId> = Vec::new();
    for (i, c) in segment.iter().enumerate() {
        let sid = match c {
            CmdRecord::Launch { stream, .. }
            | CmdRecord::RecordEvent { stream, .. }
            | CmdRecord::WaitEvent { stream, .. } => *stream,
            // Peer-to-peer copy halves carry no *intra*-device ordering
            // beyond stream FIFO order (their edges cross devices, and the
            // merged fabric replay checks those); skip them here so a
            // single-device replay neither stalls at a `CopyDst` nor
            // misreads a copy as a launch.
            CmdRecord::CopySrc { .. } | CmdRecord::CopyDst { .. } => continue,
            CmdRecord::Sync => continue,
        };
        if !fifos.contains_key(&sid) {
            stream_order.push(sid);
        }
        fifos.entry(sid).or_default().push_back((i, *c));
    }

    let mut clocks: HashMap<StreamId, HashMap<StreamId, u64>> = HashMap::new();
    let mut event_clock: HashMap<EventId, HashMap<StreamId, u64>> = HashMap::new();
    let mut launches: Vec<LaunchRecord> = Vec::new();

    // Worklist replay: drain any stream whose head command can fire. A
    // wait enqueued before its record is legal (the engine blocks on it),
    // so issue order alone cannot drive the replay.
    loop {
        let mut progressed = false;
        for &sid in &stream_order {
            let Some(fifo) = fifos.get_mut(&sid) else {
                continue;
            };
            while let Some(&(log_index, cmd)) = fifo.front() {
                match cmd {
                    CmdRecord::Launch { kernel, .. } => {
                        let clock = clocks.entry(sid).or_default();
                        let epoch = clock.entry(sid).or_insert(0);
                        *epoch += 1;
                        let epoch = *epoch;
                        launches.push(LaunchRecord {
                            stream: sid,
                            epoch,
                            clock: clock.clone(),
                            kernel,
                            log_index,
                        });
                    }
                    CmdRecord::RecordEvent { event, .. } => {
                        let clock = clocks.entry(sid).or_default().clone();
                        event_clock.insert(event, clock);
                    }
                    CmdRecord::WaitEvent { event, .. } => {
                        let Some(ev) = event_clock.get(&event) else {
                            break; // blocked: record not yet replayed
                        };
                        let clock = clocks.entry(sid).or_default();
                        for (s, t) in ev {
                            let e = clock.entry(*s).or_insert(0);
                            *e = (*e).max(*t);
                        }
                    }
                    // Filtered out at partition time.
                    CmdRecord::CopySrc { .. } | CmdRecord::CopyDst { .. } | CmdRecord::Sync => {}
                }
                fifo.pop_front();
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // A stalled replay is a deadlock: some wait's event is never recorded,
    // or the waits form a cross-stream cycle.
    let stuck: Vec<(StreamId, usize, EventId)> = stream_order
        .iter()
        .filter_map(|sid| {
            fifos.get(sid).and_then(|f| {
                f.front().map(|&(i, c)| match c {
                    CmdRecord::WaitEvent { event, .. } => (*sid, i, event),
                    _ => unreachable!("only waits can block a stream"),
                })
            })
        })
        .collect();
    if !stuck.is_empty() {
        let named: Vec<String> = stuck
            .iter()
            .map(|(sid, i, ev)| {
                format!(
                    "stream {} blocked at log[{i}] waiting on event {}",
                    sid.raw(),
                    ev.raw()
                )
            })
            .collect();
        out.push(Diagnostic {
            kind: DiagnosticKind::EventWaitCycle,
            context: context.to_string(),
            first: None,
            second: None,
            site: None,
            detail: format!(
                "trace replay deadlocks: {} (event never recorded, or waits form a cycle)",
                named.join("; ")
            ),
        });
    }

    // Race detection over every pair of launches with declared accesses.
    let mut pairs = 0u64;
    let descs: Vec<_> = launches.iter().map(|l| dev.kernel_desc(l.kernel)).collect();
    for i in 0..launches.len() {
        if descs[i].accesses.is_empty() {
            continue;
        }
        for j in (i + 1)..launches.len() {
            if descs[j].accesses.is_empty() {
                continue;
            }
            pairs += 1;
            let (a, b) = (&launches[i], &launches[j]);
            if a.happens_before(b) || b.happens_before(a) {
                continue;
            }
            if let Some(c) = descs[i].accesses.conflict_with(&descs[j].accesses) {
                let kernel_ref = |l: &LaunchRecord, d: &gpu_sim::KernelDesc| KernelRef {
                    name: d.name.clone(),
                    tag: d.tag,
                    stream: Some(l.stream.raw()),
                    index: l.log_index,
                };
                out.push(Diagnostic {
                    kind: DiagnosticKind::DataRace,
                    context: context.to_string(),
                    first: Some(kernel_ref(a, descs[i])),
                    second: Some(kernel_ref(b, descs[j])),
                    site: Some(ConflictSite {
                        buffer: c.buffer,
                        overlap: c.overlap,
                        hazard: c.hazard(),
                    }),
                    detail: "no event or stream order makes these two launches \
                             happens-before ordered"
                        .to_string(),
                });
            }
        }
    }
    (launches.len() as u64, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BufferId, ByteRange, DeviceProps, Dim3, KernelCost, KernelDesc, LaunchConfig};

    fn kernel(name: &str) -> KernelDesc {
        KernelDesc::new(
            name,
            LaunchConfig::new(Dim3::linear(4), Dim3::linear(128), 32, 0),
            KernelCost::new(1.0e5, 1.0e4),
        )
    }

    fn check(dev: &Device) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_log(dev, dev.command_log(), "test", &mut out);
        out
    }

    #[test]
    fn same_stream_conflicts_are_ordered() {
        let buf = BufferId::from_label("hb/a");
        let mut dev = Device::new(DeviceProps::p100());
        let s = dev.create_stream();
        dev.launch(s, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        dev.launch(s, kernel("w1").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        assert_eq!(check(&dev), vec![]);
    }

    #[test]
    fn cross_stream_unordered_write_is_a_race() {
        let buf = BufferId::from_label("hb/b");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        dev.launch(s0, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        dev.launch(s1, kernel("w1").writes(buf, ByteRange::new(32, 96)));
        dev.run();
        let out = check(&dev);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, DiagnosticKind::DataRace);
        let s = out[0].to_string();
        assert!(s.contains("`w0`") && s.contains("`w1`"), "{s}");
        assert!(s.contains("[32, 64)"), "{s}");
    }

    #[test]
    fn event_order_suppresses_the_race() {
        let buf = BufferId::from_label("hb/c");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        dev.launch(s0, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        let ev = dev.create_event();
        dev.record_event(s0, ev);
        dev.wait_event(s1, ev);
        dev.launch(s1, kernel("w1").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        assert_eq!(check(&dev), vec![]);
    }

    #[test]
    fn wait_enqueued_before_record_still_orders() {
        // Host issues s1's wait before s0's record — legal, the engine
        // blocks s1. The worklist replay must handle it.
        let buf = BufferId::from_label("hb/d");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        let ev = dev.create_event();
        dev.wait_event(s1, ev);
        dev.launch(s0, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        dev.record_event(s0, ev);
        dev.launch(s1, kernel("w1").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        assert_eq!(check(&dev), vec![]);
    }

    #[test]
    fn sync_orders_across_run_episodes() {
        let buf = BufferId::from_label("hb/e");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        dev.launch(s0, kernel("w0").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        dev.launch(s1, kernel("w1").writes(buf, ByteRange::new(0, 64)));
        dev.run();
        assert_eq!(check(&dev), vec![], "run() is a device-wide barrier");
    }

    #[test]
    fn undeclared_kernels_are_skipped() {
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        dev.launch(s0, kernel("k0"));
        dev.launch(s1, kernel("k1"));
        dev.run();
        assert_eq!(check(&dev), vec![]);
    }

    #[test]
    fn read_read_overlap_is_not_a_race() {
        let buf = BufferId::from_label("hb/f");
        let mut dev = Device::new(DeviceProps::p100());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        dev.launch(s0, kernel("r0").reads(buf, ByteRange::new(0, 64)));
        dev.launch(s1, kernel("r1").reads(buf, ByteRange::new(0, 64)));
        dev.run();
        assert_eq!(check(&dev), vec![]);
    }
}
