//! Sanitizer diagnostics: what went wrong, where, and between whom.

use gpu_sim::{BufferId, ByteRange};

/// The class of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// Static: two kernels of a dispatch plan conflict on memory but no
    /// declared dependency (or stream program order) orders them.
    MissingDependency,
    /// Static: two batch-split chunks of one layer declare overlapping
    /// output regions, so dispatching them concurrently is not
    /// convergence-invariant.
    OverlappingChunkRegions,
    /// A cycle through event waits: the schedule can never drain
    /// (deadlock), statically in a plan or dynamically in a trace.
    EventWaitCycle,
    /// Dynamic: the executed trace contains two overlapping accesses
    /// (at least one write) unordered by happens-before.
    DataRace,
}

impl DiagnosticKind {
    /// Short stable label, e.g. for grouping in reports.
    pub fn label(self) -> &'static str {
        match self {
            DiagnosticKind::MissingDependency => "missing-dependency",
            DiagnosticKind::OverlappingChunkRegions => "overlapping-chunk-regions",
            DiagnosticKind::EventWaitCycle => "event-wait-cycle",
            DiagnosticKind::DataRace => "data-race",
        }
    }
}

impl std::fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One kernel's side of a conflict, for human-readable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRef {
    /// Kernel name (`im2col`, `sgemm`, ...).
    pub name: String,
    /// Correlation tag (chunk index, layer id...).
    pub tag: u64,
    /// Stream the kernel was (or would be) dispatched on, if known.
    pub stream: Option<u32>,
    /// Plan node index or launch index, whichever the checker walked.
    pub index: usize,
}

impl std::fmt::Display for KernelRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}` (tag {}, node {}", self.name, self.tag, self.index)?;
        match self.stream {
            Some(s) => write!(f, ", stream {s})"),
            None => write!(f, ")"),
        }
    }
}

/// The memory overlap behind a conflict diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictSite {
    /// Buffer both kernels touch.
    pub buffer: BufferId,
    /// Overlapping byte range.
    pub overlap: ByteRange,
    /// Hazard label (`write/write`, `write/read`, `read/write`).
    pub hazard: &'static str,
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding class.
    pub kind: DiagnosticKind,
    /// Which checker produced it and on what (layer key, plan label...).
    pub context: String,
    /// First kernel involved, if the finding is about a pair.
    pub first: Option<KernelRef>,
    /// Second kernel involved, if the finding is about a pair.
    pub second: Option<KernelRef>,
    /// The memory overlap, if the finding is about a conflict.
    pub site: Option<ConflictSite>,
    /// Free-form detail (cycle path, chunk indices...).
    pub detail: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: ", self.kind, self.context)?;
        match (&self.first, &self.second, &self.site) {
            (Some(a), Some(b), Some(s)) => write!(
                f,
                "{} {} and {} both touch {} bytes {} without ordering",
                s.hazard, a, b, s.buffer, s.overlap
            )?,
            (Some(a), Some(b), None) => write!(f, "{a} and {b}")?,
            _ => {}
        }
        if !self.detail.is_empty() {
            if self.first.is_some() {
                write!(f, " — ")?;
            }
            f.write_str(&self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_names_both_kernels_and_the_range() {
        let d = Diagnostic {
            kind: DiagnosticKind::DataRace,
            context: "net/conv1/fwd".to_string(),
            first: Some(KernelRef {
                name: "sgemm".into(),
                tag: 0,
                stream: Some(1),
                index: 1,
            }),
            second: Some(KernelRef {
                name: "sgemm".into(),
                tag: 1,
                stream: Some(2),
                index: 4,
            }),
            site: Some(ConflictSite {
                buffer: BufferId::from_label("conv1/out"),
                overlap: ByteRange::new(0, 4096),
                hazard: "write/write",
            }),
            detail: String::new(),
        };
        let s = d.to_string();
        assert!(s.contains("data-race"), "{s}");
        assert!(s.contains("`sgemm` (tag 0, node 1, stream 1)"), "{s}");
        assert!(s.contains("stream 2"), "{s}");
        assert!(s.contains("conv1/out"), "{s}");
        assert!(s.contains("[0, 4096)"), "{s}");
        assert!(s.contains("write/write"), "{s}");
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(
            DiagnosticKind::MissingDependency.label(),
            "missing-dependency"
        );
        assert_eq!(
            DiagnosticKind::EventWaitCycle.to_string(),
            "event-wait-cycle"
        );
    }
}
