//! Symbolic (shape-parametric) access sets and the chunk-disjointness
//! prover.
//!
//! The pairwise checker ([`crate::Sanitizer::check_chunks`]) proves one
//! *instance* of a layer safe in O(chunks²) access comparisons, and it
//! does so again for every captured shape. But the layers' declared
//! accesses are affine in the chunk index by construction — sample `i`
//! touches `[i·stride, i·stride + len)` of each batch-major buffer — so
//! disjointness can be proved *once per dispatch site, for every
//! admissible chunk count at once*: a [`SymGroupSpec`] describes the
//! per-chunk kernel chain parametrically, [`SymGroupSpec::prove`] decides
//! cross-chunk hazard-freedom in closed form, and the resulting
//! [`SymVerdict`] is cached as a certificate. Per capture, only an O(chunks)
//! conformance check remains: each concrete group must match the spec
//! evaluated at its index. Non-affine layers (or transformed schedules —
//! §6 fusion/reordering rewrites the groups) simply fail conformance and
//! fall back to the pairwise checker, so the certificate is an
//! optimization, never a soundness assumption.

use gpu_sim::{AccessSet, BufferId, ByteRange, KernelDesc, MemAccess};

/// A byte range parametric in the chunk index `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymRange {
    /// The same fixed range for every chunk (weights, whole-batch blobs).
    Fixed {
        /// First byte covered.
        start: u64,
        /// Bytes covered.
        len: u64,
    },
    /// Affine per-chunk range: chunk `i` covers
    /// `[base + i·stride, base + i·stride + len)`.
    PerChunk {
        /// Offset of chunk 0.
        base: u64,
        /// Bytes between consecutive chunks' starts (> 0).
        stride: u64,
        /// Bytes covered per chunk.
        len: u64,
    },
}

impl SymRange {
    /// A fixed (chunk-independent) range.
    pub fn fixed(range: ByteRange) -> Self {
        SymRange::Fixed {
            start: range.start,
            len: range.len(),
        }
    }

    /// An affine per-chunk range. A zero stride degenerates to a fixed
    /// range (every chunk touches the same bytes).
    pub fn per_chunk(base: u64, stride: u64, len: u64) -> Self {
        if stride == 0 {
            SymRange::Fixed { start: base, len }
        } else {
            SymRange::PerChunk { base, stride, len }
        }
    }

    /// The concrete range of chunk `i`.
    pub fn at(self, i: u64) -> ByteRange {
        match self {
            SymRange::Fixed { start, len } => ByteRange::span(start, len),
            SymRange::PerChunk { base, stride, len } => ByteRange::span(base + i * stride, len),
        }
    }

    fn is_empty(self) -> bool {
        match self {
            SymRange::Fixed { len, .. } | SymRange::PerChunk { len, .. } => len == 0,
        }
    }
}

/// One declared symbolic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymAccess {
    /// Buffer touched.
    pub buffer: BufferId,
    /// Parametric byte range.
    pub range: SymRange,
}

/// Symbolic access set of one kernel of the per-chunk chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymAccessSet {
    /// Regions read.
    pub reads: Vec<SymAccess>,
    /// Regions written.
    pub writes: Vec<SymAccess>,
}

/// One kernel of the per-chunk chain, with its symbolic accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymKernel {
    /// Kernel name — must match the built [`KernelDesc::name`] for
    /// conformance.
    pub name: String,
    /// Symbolic access set.
    pub accesses: SymAccessSet,
}

impl SymKernel {
    /// A named kernel with no accesses yet.
    pub fn new(name: &str) -> Self {
        SymKernel {
            name: name.to_string(),
            accesses: SymAccessSet::default(),
        }
    }

    /// Declare a parametric read.
    pub fn reads(mut self, buffer: BufferId, range: SymRange) -> Self {
        self.accesses.reads.push(SymAccess { buffer, range });
        self
    }

    /// Declare a parametric write.
    pub fn writes(mut self, buffer: BufferId, range: SymRange) -> Self {
        self.accesses.writes.push(SymAccess { buffer, range });
        self
    }
}

/// The symbolic description of one dispatch site's per-chunk kernel
/// chain: chunk `i` launches every kernel of the spec evaluated at `i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymGroupSpec {
    /// The per-chunk kernel chain, in issue order.
    pub kernels: Vec<SymKernel>,
}

/// A symbolic conflict witness: two chunks whose evaluated regions
/// overlap, for any shape with enough chunks to contain both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymConflict {
    /// Buffer both chunks touch.
    pub buffer: BufferId,
    /// Hazard label (`write/write`, `write/read`).
    pub hazard: &'static str,
    /// Witness chunk index of the first access.
    pub chunk_a: u64,
    /// Witness chunk index of the second access (≠ `chunk_a`).
    pub chunk_b: u64,
    /// The overlapping byte range at the witness indices.
    pub overlap: ByteRange,
}

/// Outcome of [`SymGroupSpec::prove`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVerdict {
    /// Cross-chunk hazard-freedom holds for every chunk count. `pairs` is
    /// the number of symbolic access pairs decided.
    Proven {
        /// Symbolic access pairs decided.
        pairs: u64,
    },
    /// Two chunks conflict for every shape containing both witnesses.
    Refuted(SymConflict),
    /// The spec is outside the affine fragment the prover decides
    /// (e.g. two per-chunk accesses with different strides); callers must
    /// fall back to per-instance pairwise checking.
    Unsupported {
        /// Why the prover gave up.
        detail: String,
    },
}

/// Smallest-magnitude nonzero integer `d` with `d·s` strictly inside
/// `(lo, hi)`, if any. `s > 0`.
fn nonzero_multiple_in(lo: i128, hi: i128, s: i128) -> Option<i128> {
    debug_assert!(s > 0);
    if lo >= hi {
        return None;
    }
    // Valid k form the contiguous range [k_min, k_max].
    let k_min = lo.div_euclid(s) + 1; // smallest k with k*s > lo
    let k_max = (hi - 1).div_euclid(s); // largest k with k*s < hi
    if k_min > k_max {
        return None;
    }
    if k_min > 0 {
        Some(k_min)
    } else if k_max < 0 {
        Some(k_max)
    } else if k_max >= 1 {
        Some(1) // range contains 0; prefer the smallest positive
    } else if k_min <= -1 {
        Some(-1)
    } else {
        None // only k = 0 fits
    }
}

/// Does access `a` at chunk `ia` ever overlap access `b` at a *different*
/// chunk `ib`, for some admissible shape? Returns a witness `(ia, ib)`
/// with minimal indices, or `Err(())` if the pair is outside the decided
/// fragment.
fn cross_chunk_overlap(a: SymRange, b: SymRange) -> Result<Option<(u64, u64)>, ()> {
    if a.is_empty() || b.is_empty() {
        return Ok(None);
    }
    match (a, b) {
        // Both chunk-independent: performed identically by every chunk,
        // so any overlap is a cross-chunk conflict (chunks 0 and 1).
        (SymRange::Fixed { .. }, SymRange::Fixed { .. }) => {
            Ok(a.at(0).intersect(b.at(0)).map(|_| (0, 1)))
        }
        // Fixed vs per-chunk: the fixed access is performed by every
        // chunk, so it suffices that *some* chunk's affine range overlaps
        // it — a different chunk always exists once that one does.
        (
            SymRange::Fixed { start, len },
            SymRange::PerChunk {
                base,
                stride,
                len: plen,
            },
        ) => {
            let i = first_overlap_index(start, len, base, stride, plen);
            Ok(i.map(|i| (if i == 0 { 1 } else { 0 }, i)))
        }
        (
            SymRange::PerChunk {
                base,
                stride,
                len: plen,
            },
            SymRange::Fixed { start, len },
        ) => {
            let i = first_overlap_index(start, len, base, stride, plen);
            Ok(i.map(|i| (i, if i == 0 { 1 } else { 0 })))
        }
        (
            SymRange::PerChunk {
                base: ab,
                stride: astr,
                len: alen,
            },
            SymRange::PerChunk {
                base: bb,
                stride: bstr,
                len: blen,
            },
        ) => {
            if astr != bstr {
                // Different strides: overlap is a divisibility question the
                // affine fragment does not decide; fall back.
                return Err(());
            }
            // Chunk i of `a` vs chunk j of `b`, d = i - j ≠ 0:
            // overlap ⇔ d·stride ∈ (bb - ab - alen, bb - ab + blen).
            let s = astr as i128;
            let delta = bb as i128 - ab as i128;
            let d = nonzero_multiple_in(delta - alen as i128, delta + blen as i128, s);
            Ok(d.map(|d| {
                if d > 0 {
                    (d as u64, 0)
                } else {
                    (0, (-d) as u64)
                }
            }))
        }
    }
}

/// Smallest `i ≥ 0` whose affine range `[base + i·stride, + plen)`
/// overlaps the fixed range `[start, start + len)`, if any.
fn first_overlap_index(start: u64, len: u64, base: u64, stride: u64, plen: u64) -> Option<u64> {
    debug_assert!(stride > 0);
    let (start, len) = (start as i128, len as i128);
    let (base, stride, plen) = (base as i128, stride as i128, plen as i128);
    // Overlap at i ⇔ base + i·stride < start + len AND start < base + i·stride + plen.
    let i0 = if base + plen > start {
        0
    } else {
        // smallest i with base + i·stride + plen > start
        (start - base - plen + stride) / stride // = ceil((start - base - plen + 1) / stride)
    };
    (base + i0 * stride < start + len).then_some(i0 as u64)
}

impl SymGroupSpec {
    /// Empty spec.
    pub fn new() -> Self {
        SymGroupSpec::default()
    }

    /// Append a kernel to the per-chunk chain.
    pub fn kernel(mut self, k: SymKernel) -> Self {
        self.kernels.push(k);
        self
    }

    /// The concrete union access set of chunk `i` (tests, fallback).
    pub fn concrete(&self, i: u64) -> AccessSet {
        let mut out = AccessSet::default();
        for k in &self.kernels {
            for a in &k.accesses.reads {
                out.reads.push(MemAccess {
                    buffer: a.buffer,
                    range: a.range.at(i),
                });
            }
            for a in &k.accesses.writes {
                out.writes.push(MemAccess {
                    buffer: a.buffer,
                    range: a.range.at(i),
                });
            }
        }
        out
    }

    /// Decide cross-chunk hazard-freedom for every admissible shape: no
    /// write of any chunk may overlap any access of a *different* chunk.
    /// Within-chunk ordering is the dispatcher's chain contract and is
    /// checked separately.
    pub fn prove(&self) -> SymVerdict {
        // Flatten the chain: cross-chunk safety concerns the union.
        let mut writes: Vec<SymAccess> = Vec::new();
        let mut reads: Vec<SymAccess> = Vec::new();
        for k in &self.kernels {
            writes.extend(k.accesses.writes.iter().copied());
            reads.extend(k.accesses.reads.iter().copied());
        }
        let mut pairs = 0u64;
        let mut check = |a: &SymAccess,
                         b: &SymAccess,
                         hazard: &'static str|
         -> Result<Option<SymConflict>, String> {
            if a.buffer != b.buffer {
                return Ok(None);
            }
            pairs += 1;
            match cross_chunk_overlap(a.range, b.range) {
                Ok(None) => Ok(None),
                Ok(Some((ia, ib))) => {
                    let overlap = a
                        .range
                        .at(ia)
                        .intersect(b.range.at(ib))
                        .expect("witness indices must overlap");
                    Ok(Some(SymConflict {
                        buffer: a.buffer,
                        hazard,
                        chunk_a: ia,
                        chunk_b: ib,
                        overlap,
                    }))
                }
                Err(()) => Err(format!(
                    "accesses of `{}` mix per-chunk strides; not affine-decidable",
                    a.buffer
                )),
            }
        };
        for (wi, w) in writes.iter().enumerate() {
            // write/write, each unordered pair once (including w vs itself:
            // a fixed write repeated by every chunk conflicts with itself).
            for w2 in &writes[wi..] {
                match check(w, w2, "write/write") {
                    Ok(Some(c)) => return SymVerdict::Refuted(c),
                    Ok(None) => {}
                    Err(detail) => return SymVerdict::Unsupported { detail },
                }
            }
            for r in &reads {
                match check(w, r, "write/read") {
                    Ok(Some(c)) => return SymVerdict::Refuted(c),
                    Ok(None) => {}
                    Err(detail) => return SymVerdict::Unsupported { detail },
                }
            }
        }
        SymVerdict::Proven { pairs }
    }

    /// Check that concrete `group` (chunk `i`'s built kernel chain) is
    /// exactly the spec evaluated at `i`: same kernel count, names, and
    /// (order-insensitive) declared access multisets. A `Proven`
    /// certificate transfers to an instance only through this check.
    pub fn conforms(&self, group: &[KernelDesc], i: u64) -> Result<(), String> {
        if group.len() != self.kernels.len() {
            return Err(format!(
                "chunk {i}: {} kernels built, {} declared",
                group.len(),
                self.kernels.len()
            ));
        }
        for (k, (built, spec)) in group.iter().zip(&self.kernels).enumerate() {
            if built.name != spec.name {
                return Err(format!(
                    "chunk {i} kernel {k}: built `{}`, declared `{}`",
                    built.name, spec.name
                ));
            }
            let key = |m: &MemAccess| (m.buffer.0, m.range.start, m.range.end);
            let canon = |accs: &[MemAccess]| -> Vec<(u64, u64, u64)> {
                let mut v: Vec<_> = accs.iter().map(key).collect();
                v.sort_unstable();
                v
            };
            let eval = |accs: &[SymAccess]| -> Vec<(u64, u64, u64)> {
                let mut v: Vec<_> = accs
                    .iter()
                    .map(|a| {
                        let r = a.range.at(i);
                        (a.buffer.0, r.start, r.end)
                    })
                    .collect();
                v.sort_unstable();
                v
            };
            if canon(&built.accesses.reads) != eval(&spec.accesses.reads) {
                return Err(format!(
                    "chunk {i} kernel {k} (`{}`): declared reads disagree with built reads",
                    built.name
                ));
            }
            if canon(&built.accesses.writes) != eval(&spec.accesses.writes) {
                return Err(format!(
                    "chunk {i} kernel {k} (`{}`): declared writes disagree with built writes",
                    built.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(l: &str) -> BufferId {
        BufferId::from_label(l)
    }

    #[test]
    fn tiled_per_chunk_writes_are_proven() {
        // Chunk i writes [i*400, i*400+400): exactly tiling, len == stride.
        let spec = SymGroupSpec::new()
            .kernel(SymKernel::new("k").writes(buf("sym/a"), SymRange::per_chunk(0, 400, 400)));
        assert!(matches!(spec.prove(), SymVerdict::Proven { .. }));
    }

    #[test]
    fn overlapping_stride_is_refuted_with_minimal_witness() {
        // len > stride: chunk i and i+1 overlap by 100 bytes.
        let spec = SymGroupSpec::new()
            .kernel(SymKernel::new("k").writes(buf("sym/b"), SymRange::per_chunk(0, 400, 500)));
        match spec.prove() {
            SymVerdict::Refuted(c) => {
                assert_eq!((c.chunk_a, c.chunk_b), (1, 0));
                assert_eq!(c.hazard, "write/write");
                assert_eq!(c.overlap, ByteRange::new(400, 500));
            }
            v => panic!("expected refutation, got {v:?}"),
        }
    }

    #[test]
    fn fixed_write_is_always_refuted() {
        // Every chunk writes the same fixed range: WW across chunks.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k").writes(buf("sym/c"), SymRange::fixed(ByteRange::new(0, 64))),
        );
        assert!(matches!(spec.prove(), SymVerdict::Refuted(c) if c.hazard == "write/write"));
    }

    #[test]
    fn fixed_read_against_disjoint_chunk_writes_is_fine() {
        // Weights read by every chunk; outputs tiled: the conv pattern.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("sgemm")
                .reads(buf("sym/w"), SymRange::fixed(ByteRange::new(0, 1024)))
                .writes(buf("sym/out"), SymRange::per_chunk(0, 256, 256)),
        );
        assert!(matches!(spec.prove(), SymVerdict::Proven { .. }));
    }

    #[test]
    fn chunk_write_overlapping_fixed_read_is_refuted() {
        // Chunk writes march into a region some other chunk reads whole.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k")
                .reads(buf("sym/d"), SymRange::fixed(ByteRange::new(0, 4096)))
                .writes(buf("sym/d"), SymRange::per_chunk(0, 256, 256)),
        );
        match spec.prove() {
            SymVerdict::Refuted(c) => assert_eq!(c.hazard, "write/read"),
            v => panic!("expected refutation, got {v:?}"),
        }
    }

    #[test]
    fn far_fixed_range_needs_a_late_witness() {
        // Fixed read at [4000, 4100); chunk writes [i*1000, +500). Chunk 4
        // is the first to reach it.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k")
                .reads(buf("sym/e"), SymRange::fixed(ByteRange::new(4000, 4100)))
                .writes(buf("sym/e"), SymRange::per_chunk(0, 1000, 500)),
        );
        match spec.prove() {
            SymVerdict::Refuted(c) => {
                assert_eq!(c.chunk_a.max(c.chunk_b), 4);
                assert_eq!(c.overlap, ByteRange::new(4000, 4100));
            }
            v => panic!("expected refutation, got {v:?}"),
        }
    }

    #[test]
    fn offset_equal_stride_accesses_can_interleave_safely() {
        // Two buffers' halves interleaved in one buffer: chunk i writes
        // [i*800, +400) and reads [i*800+400, +400) — never collide.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k")
                .writes(buf("sym/f"), SymRange::per_chunk(0, 800, 400))
                .reads(buf("sym/f"), SymRange::per_chunk(400, 800, 400)),
        );
        assert!(matches!(spec.prove(), SymVerdict::Proven { .. }));
    }

    #[test]
    fn different_strides_are_unsupported() {
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k")
                .writes(buf("sym/g"), SymRange::per_chunk(0, 400, 400))
                .reads(buf("sym/g"), SymRange::per_chunk(0, 300, 300)),
        );
        assert!(matches!(spec.prove(), SymVerdict::Unsupported { .. }));
    }

    #[test]
    fn read_read_overlap_is_not_a_hazard() {
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k").reads(buf("sym/h"), SymRange::fixed(ByteRange::new(0, 64))),
        );
        assert!(matches!(spec.prove(), SymVerdict::Proven { .. }));
    }

    #[test]
    fn conformance_accepts_exact_instance_and_rejects_drift() {
        let b = buf("sym/i");
        let spec = SymGroupSpec::new()
            .kernel(SymKernel::new("k").writes(b, SymRange::per_chunk(0, 400, 400)));
        let mk = |i: u64, start: u64| {
            vec![gpu_sim::KernelDesc::new(
                "k",
                gpu_sim::LaunchConfig::new(
                    gpu_sim::Dim3::linear(1),
                    gpu_sim::Dim3::linear(32),
                    16,
                    0,
                ),
                gpu_sim::KernelCost::new(1.0, 1.0),
            )
            .with_tag(i)
            .writes(b, ByteRange::span(start, 400))]
        };
        assert!(spec.conforms(&mk(2, 800), 2).is_ok());
        assert!(spec.conforms(&mk(2, 640), 2).is_err(), "wrong offset");
        assert!(spec.conforms(&[], 0).is_err(), "wrong kernel count");
    }

    #[test]
    fn proven_spec_matches_pairwise_on_instances() {
        // The certificate must agree with the concrete pairwise check.
        let spec = SymGroupSpec::new().kernel(
            SymKernel::new("k")
                .reads(buf("sym/j/w"), SymRange::fixed(ByteRange::new(0, 128)))
                .writes(buf("sym/j/o"), SymRange::per_chunk(64, 512, 512)),
        );
        assert!(matches!(spec.prove(), SymVerdict::Proven { .. }));
        for n in 2..6u64 {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        assert!(
                            spec.concrete(i).conflict_with(&spec.concrete(j)).is_none(),
                            "chunks {i},{j} of {n}"
                        );
                    }
                }
            }
        }
    }
}
