//! Lint diagnostics: stable codes, severities, deterministic ordering,
//! and a rustc-style text renderer.
//!
//! The plan linter ([`crate::lint`]) separates *correctness* findings
//! (`PLxxx`: the plan can race, deadlock, or exceed device memory) from
//! *performance* findings (`PWxxx`: the plan is provably correct but
//! needlessly slow). Codes are stable across releases so CI can grep for
//! them; rendering is deterministic so diagnostics are byte-identical
//! across runs.

/// How serious a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no action required.
    Note,
    /// The plan is correct but leaves performance on the table.
    Warning,
    /// The plan is (or can be) wrong: race, deadlock, over-capacity.
    Error,
}

impl Severity {
    /// Lowercase label used by the renderer (`error`, `warning`, `note`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable lint codes. `PLxxx` are correctness lints, `PWxxx` are
/// performance lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// PL001: two conflicting kernels with no happens-before ordering.
    UnorderedHazard,
    /// PL002: chunk access regions overlap (symbolically refuted or
    /// concretely detected), so concurrent dispatch is not
    /// convergence-invariant.
    OverlappingChunks,
    /// PL003: an event wait that can never be satisfied (dangling dep or
    /// wait cycle — deadlock).
    WaitCycle,
    /// PL004: a layer's symbolic access declaration disagrees with the
    /// kernels it actually built; the certificate is unusable and the
    /// checker fell back to per-instance pairwise checking.
    SymbolicMismatch,
    /// PL005: the plan's peak live-buffer footprint exceeds the device's
    /// memory capacity.
    PeakMemory,
    /// PW001: an event edge already implied by other orderings
    /// (transitively redundant synchronization).
    RedundantSync,
    /// PW002: provably independent kernels serialized on one stream with
    /// no occupancy justification (missed parallelism).
    FalseSerialization,
    /// PW003: a recorded event no cross-stream consumer ever waits on.
    UnusedEvent,
}

impl LintCode {
    /// The stable code string (`PL001`...`PW003`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnorderedHazard => "PL001",
            LintCode::OverlappingChunks => "PL002",
            LintCode::WaitCycle => "PL003",
            LintCode::SymbolicMismatch => "PL004",
            LintCode::PeakMemory => "PL005",
            LintCode::RedundantSync => "PW001",
            LintCode::FalseSerialization => "PW002",
            LintCode::UnusedEvent => "PW003",
        }
    }

    /// One-line title shown on the diagnostic's first line.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::UnorderedHazard => "conflicting kernels with no happens-before ordering",
            LintCode::OverlappingChunks => "chunk access regions overlap",
            LintCode::WaitCycle => "event wait can never be satisfied",
            LintCode::SymbolicMismatch => {
                "symbolic access declaration disagrees with built kernels"
            }
            LintCode::PeakMemory => "peak live-buffer footprint exceeds device memory",
            LintCode::RedundantSync => "event edge implied by other orderings",
            LintCode::FalseSerialization => "independent kernels serialized on one stream",
            LintCode::UnusedEvent => "recorded event is never waited on",
        }
    }

    /// Default severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnorderedHazard
            | LintCode::OverlappingChunks
            | LintCode::WaitCycle
            | LintCode::PeakMemory => Severity::Error,
            LintCode::SymbolicMismatch | LintCode::RedundantSync | LintCode::FalseSerialization => {
                Severity::Warning
            }
            LintCode::UnusedEvent => Severity::Note,
        }
    }

    /// Whether this is a correctness (`PLxxx`) code. Performance codes
    /// (`PWxxx`) never indicate a wrong result.
    pub fn is_correctness(self) -> bool {
        self.code().starts_with("PL")
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding against one plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    /// Stable code.
    pub code: LintCode,
    /// Label of the plan the finding is about.
    pub plan: String,
    /// Primary plan-node index the finding anchors to, if any.
    pub node: Option<usize>,
    /// One-line message specific to this finding.
    pub message: String,
    /// Additional `note:` lines.
    pub notes: Vec<String>,
}

impl LintDiag {
    /// Deterministic ordering key: plan label, then code, then node, then
    /// message. Sorting by this key makes rendered output byte-identical
    /// across runs regardless of analysis order.
    fn sort_key(&self) -> (&str, &'static str, usize, &str) {
        (
            &self.plan,
            self.code.code(),
            self.node.unwrap_or(usize::MAX),
            &self.message,
        )
    }

    /// Render the finding rustc-style:
    ///
    /// ```text
    /// warning[PW001]: event edge implied by other orderings
    ///   --> plan `net/conv1/fwd/b4/c4/p8`, node 7
    ///    = note: wait of node 7 on node 2 is implied via node 5
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.code.severity().label(),
            self.code.code(),
            self.code.title()
        );
        match self.node {
            Some(n) => out.push_str(&format!("  --> plan `{}`, node {n}\n", self.plan)),
            None => out.push_str(&format!("  --> plan `{}`\n", self.plan)),
        }
        if !self.message.is_empty() {
            out.push_str(&format!("   = {}\n", self.message));
        }
        for n in &self.notes {
            out.push_str(&format!("   = note: {n}\n"));
        }
        out
    }
}

/// Sort findings into the canonical deterministic order.
pub fn sort_diags(diags: &mut [LintDiag]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Render a batch of findings in canonical order, separated by blank
/// lines. Returns the empty string for no findings.
pub fn render_all(diags: &[LintDiag]) -> String {
    let mut sorted: Vec<LintDiag> = diags.to_vec();
    sort_diags(&mut sorted);
    sorted
        .iter()
        .map(LintDiag::render)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: LintCode, plan: &str, node: Option<usize>, msg: &str) -> LintDiag {
        LintDiag {
            code,
            plan: plan.to_string(),
            node,
            message: msg.to_string(),
            notes: vec![],
        }
    }

    #[test]
    fn codes_are_stable_and_classified() {
        assert_eq!(LintCode::UnorderedHazard.code(), "PL001");
        assert_eq!(LintCode::PeakMemory.code(), "PL005");
        assert_eq!(LintCode::RedundantSync.code(), "PW001");
        assert_eq!(LintCode::UnusedEvent.code(), "PW003");
        assert!(LintCode::OverlappingChunks.is_correctness());
        assert!(!LintCode::FalseSerialization.is_correctness());
        assert_eq!(LintCode::WaitCycle.severity(), Severity::Error);
        assert_eq!(LintCode::RedundantSync.severity(), Severity::Warning);
    }

    #[test]
    fn renderer_is_rustc_shaped() {
        let mut d = diag(LintCode::RedundantSync, "net/c1/fwd", Some(7), "");
        d.notes
            .push("wait of node 7 on node 2 is implied via node 5".into());
        let s = d.render();
        assert!(s.starts_with("warning[PW001]: "), "{s}");
        assert!(s.contains("--> plan `net/c1/fwd`, node 7"), "{s}");
        assert!(s.contains("= note: wait of node 7"), "{s}");
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = diag(LintCode::RedundantSync, "p2", Some(1), "x");
        let b = diag(LintCode::UnorderedHazard, "p1", Some(3), "y");
        let c = diag(LintCode::RedundantSync, "p2", Some(0), "z");
        let r1 = render_all(&[a.clone(), b.clone(), c.clone()]);
        let r2 = render_all(&[c, a, b]);
        assert_eq!(r1, r2);
        assert!(r1.find("p1").unwrap() < r1.find("p2").unwrap());
    }
}
