//! Property tests for data-parallel training: the sharded step's trained
//! weights are bitwise identical for every replica count dividing the
//! shard count — across device models, interconnects, and overlap
//! scheduling. The simulated schedule moves; the numerics never do.

use gpu_sim::{DeviceProps, LinkProps};
use nn::data::SyntheticDataset;
use nn::models;
use nn::{DataParallelTrainer, Net, SolverConfig};
use proptest::prelude::*;
use tensor::Blob;

fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
    let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
    let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
    ds.fill_batch(start, &mut data, &mut label);
    *net.blob_mut("data") = data;
    *net.blob_mut("label") = label;
}

fn device(model: usize) -> DeviceProps {
    match model % 3 {
        0 => DeviceProps::k40c(),
        1 => DeviceProps::p100(),
        _ => DeviceProps::titan_xp(),
    }
}

/// Train `iters` sharded steps on `devices` and return the final weights.
fn train(
    devices: &[DeviceProps],
    shards: usize,
    iters: usize,
    overlap: bool,
    nvlink: bool,
    data_seed: u64,
) -> Vec<Vec<f32>> {
    let shard_batch = 2;
    let ds = SyntheticDataset::cifar_like(data_seed);
    let spec = models::cifar10_quick(shard_batch, 77);
    let link = if nvlink {
        LinkProps::nvlink()
    } else {
        LinkProps::pcie3()
    };
    let mut dp = DataParallelTrainer::new(&spec, devices, false, SolverConfig::default())
        .with_link(link)
        .with_shards(shards)
        .with_overlap(overlap);
    for it in 0..iters {
        dp.step_sharded(|net, q| fill(net, &ds, (it * shards + q) * shard_batch));
    }
    dp.replica_net(0).state_dict()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One replica and N replicas produce bitwise-identical weights after
    /// K iterations, for any mix of device models, either interconnect,
    /// and either scheduling mode.
    #[test]
    fn replica_count_never_changes_the_bits(
        iters in 1usize..=2,
        models in prop::collection::vec(0usize..3, 4),
        overlap in any::<bool>(),
        nvlink in any::<bool>(),
        data_seed in 0u64..1_000,
    ) {
        let shards = 4;
        let reference = train(&[device(models[0])], shards, iters, false, false, data_seed);
        let two: Vec<DeviceProps> = models[..2].iter().map(|&m| device(m)).collect();
        let four: Vec<DeviceProps> = models.iter().map(|&m| device(m)).collect();
        let got2 = train(&two, shards, iters, overlap, nvlink, data_seed);
        let got4 = train(&four, shards, iters, overlap, nvlink, data_seed);
        prop_assert_eq!(&reference, &got2, "2 replicas diverged from 1");
        prop_assert_eq!(&reference, &got4, "4 replicas diverged from 1");
    }
}
