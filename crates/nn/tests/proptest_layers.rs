//! Property tests for the layer zoo — most importantly the premise of the
//! paper's batch-level parallelism: samples of a batch are processed
//! independently, so computing a batch in one go is bitwise identical to
//! computing its samples in any partition.

use gpu_sim::DeviceProps;
use nn::layer::Layer;
use nn::layers::conv::{ConvConfig, ConvLayer};
use nn::layers::{PoolMethod, PoolingLayer, ReluLayer};
use nn::ExecCtx;
use proptest::prelude::*;
use tensor::Blob;

fn ctx() -> ExecCtx {
    ExecCtx::naive(DeviceProps::p100())
}

fn data(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed.wrapping_mul(0xD6E8FEB86659FD93));
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn forward_conv(cfg: ConvConfig, bottom: &Blob, seed: u64) -> Vec<f32> {
    let mut l = ConvLayer::new("c", cfg, seed);
    let mut top = vec![Blob::empty()];
    let mut c = ctx();
    l.reshape(&[bottom], &mut top);
    l.forward(&mut c, &[bottom], &mut top);
    top[0].data().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batch-level-parallelism premise (paper Algorithms 1-2, line 2):
    /// forward of a batch equals the concatenation of forwards of any
    /// split of the batch, bitwise.
    #[test]
    fn conv_batch_split_is_bitwise_identical(
        n in 2usize..6,
        ci in 1usize..4,
        hw in 4usize..10,
        co in 1usize..5,
        kernel in 1usize..4,
        split in 1usize..5,
        seed in 0u64..100,
    ) {
        prop_assume!(hw >= kernel);
        prop_assume!(split < n);
        let cfg = ConvConfig { num_output: co, kernel, stride: 1, pad: 0 };
        let full = Blob::from_data(&[n, ci, hw, hw], data(n * ci * hw * hw, seed));
        let whole = forward_conv(cfg, &full, seed);

        // Split into [0, split) and [split, n).
        let stride = ci * hw * hw;
        let first = Blob::from_data(
            &[split, ci, hw, hw],
            full.data()[..split * stride].to_vec(),
        );
        let second = Blob::from_data(
            &[n - split, ci, hw, hw],
            full.data()[split * stride..].to_vec(),
        );
        let mut parts = forward_conv(cfg, &first, seed);
        parts.extend(forward_conv(cfg, &second, seed));
        prop_assert_eq!(
            whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parts.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Max pooling never invents values: every output element appears in
    /// the input, and outputs dominate their windows.
    #[test]
    fn max_pool_outputs_come_from_input(
        n in 1usize..3, c in 1usize..3, hw in 2usize..8,
        kernel in 1usize..4, seed in 0u64..100,
    ) {
        prop_assume!(kernel <= hw);
        let mut l = PoolingLayer::new("p", PoolMethod::Max, kernel, kernel);
        let bottom = Blob::from_data(&[n, c, hw, hw], data(n * c * hw * hw, seed));
        let mut top = vec![Blob::empty()];
        let mut cx = ctx();
        l.reshape(&[&bottom], &mut top);
        l.forward(&mut cx, &[&bottom], &mut top);
        let inputs: std::collections::HashSet<u32> =
            bottom.data().iter().map(|v| v.to_bits()).collect();
        for v in top[0].data() {
            prop_assert!(inputs.contains(&v.to_bits()), "pooling invented {v}");
        }
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(len in 1usize..200, seed in 0u64..100) {
        let mut l = ReluLayer::new("r");
        let bottom = Blob::from_data(&[len], data(len, seed));
        let mut top = vec![Blob::empty()];
        let mut cx = ctx();
        l.reshape(&[&bottom], &mut top);
        l.forward(&mut cx, &[&bottom], &mut top);
        prop_assert!(top[0].data().iter().all(|&v| v >= 0.0));
        let once = top[0].data().to_vec();
        let again_in = Blob::from_data(&[len], once.clone());
        let mut top2 = vec![Blob::empty()];
        l.reshape(&[&again_in], &mut top2);
        l.forward(&mut cx, &[&again_in], &mut top2);
        prop_assert_eq!(top2[0].data(), &once[..]);
    }

    /// Average pooling preserves the global mean when windows tile the
    /// input exactly.
    #[test]
    fn ave_pool_preserves_mean(
        n in 1usize..3, c in 1usize..3, tiles in 1usize..4,
        kernel in 1usize..4, seed in 0u64..100,
    ) {
        let hw = tiles * kernel;
        let mut l = PoolingLayer::new("p", PoolMethod::Average, kernel, kernel);
        let bottom = Blob::from_data(&[n, c, hw, hw], data(n * c * hw * hw, seed));
        let mut top = vec![Blob::empty()];
        let mut cx = ctx();
        l.reshape(&[&bottom], &mut top);
        l.forward(&mut cx, &[&bottom], &mut top);
        let mean_in: f64 = bottom.data().iter().map(|&v| v as f64).sum::<f64>()
            / bottom.count() as f64;
        let mean_out: f64 = top[0].data().iter().map(|&v| v as f64).sum::<f64>()
            / top[0].count() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-4,
            "mean {mean_in} vs {mean_out}");
    }
}
