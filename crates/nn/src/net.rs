//! Network assembly and execution (Caffe's `Net`).
//!
//! A [`NetSpec`] is the serde-serializable equivalent of a Caffe prototxt:
//! named input blobs plus a list of layer specs wired by blob names. A
//! [`Net`] instantiates the layers, owns all blobs, and runs forward /
//! backward passes layer by layer with an inter-layer synchronization
//! after each (paper §2.1).

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tensor::Blob;

/// Layer kind + hyper-parameters (the serializable part of a layer).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum LayerKind {
    /// 2-D convolution.
    Convolution {
        /// Output feature maps.
        num_output: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Spatial pooling.
    Pooling {
        /// `"max"` or `"ave"`.
        method: String,
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// ReLU activation.
    Relu,
    /// Local response normalization with AlexNet defaults.
    Lrn,
    /// Fully connected.
    InnerProduct {
        /// Output units.
        num_output: usize,
    },
    /// Softmax + cross-entropy loss.
    SoftmaxLoss,
    /// Top-1 accuracy (no backward).
    Accuracy,
    /// Dropout.
    Dropout {
        /// Fraction dropped.
        ratio: f32,
    },
    /// Channel concatenation.
    Concat,
    /// Contrastive (Siamese) loss.
    ContrastiveLoss {
        /// Margin for dissimilar pairs.
        margin: f32,
    },
    /// Blob duplication with gradient accumulation (enables fan-out).
    Split,
}

/// One layer in a [`NetSpec`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LayerSpec {
    /// Layer instance name.
    pub name: String,
    /// Kind and hyper-parameters.
    pub kind: LayerKind,
    /// Input blob names.
    pub bottoms: Vec<String>,
    /// Output blob names (must be fresh; in-place is not supported).
    pub tops: Vec<String>,
}

/// A complete network description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct NetSpec {
    /// Network name (keys GLP4NN's plan cache).
    pub name: String,
    /// External input blobs and their shapes.
    pub inputs: Vec<(String, Vec<usize>)>,
    /// Layers in topological order.
    pub layers: Vec<LayerSpec>,
    /// Seed for all parameter initialization.
    pub seed: u64,
}

impl NetSpec {
    /// The inference-serving variant of this network: trailing loss and
    /// accuracy layers are stripped, leaving the last scoring layer's top
    /// as the network output.
    ///
    /// Only *trailing* layers are removed, so every surviving layer keeps
    /// its position in `layers` — and therefore its derived parameter
    /// seed — making inference outputs bitwise-identical to the same
    /// layers inside the training net.
    pub fn inference(&self) -> NetSpec {
        let mut spec = self.clone();
        while let Some(last) = spec.layers.last() {
            match last.kind {
                LayerKind::SoftmaxLoss
                | LayerKind::Accuracy
                | LayerKind::ContrastiveLoss { .. } => {
                    spec.layers.pop();
                }
                _ => break,
            }
        }
        spec
    }

    /// Name of the network's final output blob (the last layer's first
    /// top), if any layer exists.
    pub fn final_top(&self) -> Option<&str> {
        self.layers
            .last()
            .and_then(|l| l.tops.first())
            .map(String::as_str)
    }
}

/// An instantiated, runnable network.
pub struct Net {
    /// Network name.
    pub name: String,
    layers: Vec<Box<dyn Layer>>,
    bottoms: Vec<Vec<usize>>,
    tops: Vec<Vec<usize>>,
    blobs: Vec<Blob>,
    blob_index: HashMap<String, usize>,
}

impl Net {
    /// Build a network from its spec.
    ///
    /// # Panics
    /// Panics on dangling blob references, duplicate tops, or a blob
    /// feeding more than one backward-participating layer (gradient
    /// accumulation across consumers is not supported — insert explicit
    /// split layers in the spec if ever needed).
    pub fn from_spec(spec: &NetSpec) -> Self {
        let mut blobs = Vec::new();
        let mut blob_index = HashMap::new();
        for (name, shape) in &spec.inputs {
            blob_index.insert(name.clone(), blobs.len());
            blobs.push(Blob::new(shape));
        }
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut bottoms = Vec::new();
        let mut tops = Vec::new();
        let mut consumers: HashMap<usize, usize> = HashMap::new();
        let num_inputs = blobs.len();

        for (li, ls) in spec.layers.iter().enumerate() {
            let seed = spec.seed.wrapping_add(li as u64 * 7919);
            let layer: Box<dyn Layer> = match &ls.kind {
                LayerKind::Convolution {
                    num_output,
                    kernel,
                    stride,
                    pad,
                } => Box::new(ConvLayer::new(
                    &ls.name,
                    conv::ConvConfig {
                        num_output: *num_output,
                        kernel: *kernel,
                        stride: *stride,
                        pad: *pad,
                    },
                    seed,
                )),
                LayerKind::Pooling {
                    method,
                    kernel,
                    stride,
                } => {
                    let m = match method.as_str() {
                        "max" => PoolMethod::Max,
                        "ave" => PoolMethod::Average,
                        other => panic!("unknown pooling method {other}"),
                    };
                    Box::new(PoolingLayer::new(&ls.name, m, *kernel, *stride))
                }
                LayerKind::Relu => Box::new(ReluLayer::new(&ls.name)),
                LayerKind::Lrn => Box::new(LrnLayer::new(&ls.name)),
                LayerKind::InnerProduct { num_output } => {
                    Box::new(InnerProductLayer::new(&ls.name, *num_output, seed))
                }
                LayerKind::SoftmaxLoss => Box::new(SoftmaxLossLayer::new(&ls.name)),
                LayerKind::Accuracy => Box::new(AccuracyLayer::new(&ls.name)),
                LayerKind::Dropout { ratio } => Box::new(DropoutLayer::new(&ls.name, *ratio, seed)),
                LayerKind::Concat => Box::new(ConcatLayer::new(&ls.name)),
                LayerKind::ContrastiveLoss { margin } => {
                    Box::new(ContrastiveLossLayer::new(&ls.name, *margin))
                }
                LayerKind::Split => Box::new(SplitLayer::new(&ls.name)),
            };
            let b_idx: Vec<usize> = ls
                .bottoms
                .iter()
                .map(|b| {
                    *blob_index
                        .get(b)
                        .unwrap_or_else(|| panic!("layer {} references unknown blob {b}", ls.name))
                })
                .collect();
            if layer.needs_backward() {
                for &b in &b_idx {
                    // External inputs may fan out (their gradient is never
                    // consumed); produced blobs must have one backward
                    // consumer, since backward overwrites bottom diffs.
                    if b >= num_inputs {
                        let c = consumers.entry(b).or_insert(0);
                        *c += 1;
                        assert!(
                            *c <= 1,
                            "blob index {b} consumed by multiple backward layers (layer {})",
                            ls.name
                        );
                    }
                }
            }
            let t_idx: Vec<usize> = ls
                .tops
                .iter()
                .map(|t| {
                    assert!(
                        !blob_index.contains_key(t),
                        "duplicate top blob {t} (in-place layers unsupported)"
                    );
                    blob_index.insert(t.clone(), blobs.len());
                    blobs.push(Blob::empty());
                    blobs.len() - 1
                })
                .collect();
            layers.push(layer);
            bottoms.push(b_idx);
            tops.push(t_idx);
        }
        Net {
            name: spec.name.clone(),
            layers,
            bottoms,
            tops,
            blobs,
            blob_index,
        }
    }

    /// Build one of the paper's evaluation networks by name (see
    /// [`crate::models::MODEL_NAMES`]).
    pub fn by_name(
        net: &str,
        batch: usize,
        seed: u64,
    ) -> Result<Net, crate::models::UnknownModelError> {
        Ok(Net::from_spec(&crate::models::spec_by_name(
            net, batch, seed,
        )?))
    }

    /// Mutable access to a blob by name (set inputs before forward).
    pub fn blob_mut(&mut self, name: &str) -> &mut Blob {
        let i = *self
            .blob_index
            .get(name)
            .unwrap_or_else(|| panic!("unknown blob {name}"));
        &mut self.blobs[i]
    }

    /// Read a blob by name.
    pub fn blob(&self, name: &str) -> &Blob {
        let i = *self
            .blob_index
            .get(name)
            .unwrap_or_else(|| panic!("unknown blob {name}"));
        &self.blobs[i]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name().to_string()).collect()
    }

    /// Run the forward pass; returns the weighted sum of loss-layer
    /// outputs.
    pub fn forward(&mut self, ctx: &mut ExecCtx) -> f32 {
        ctx.net_name = self.name.clone();
        ctx.batch = self.blobs.first().map_or(0, |b| b.num());
        let mut loss = 0.0f32;
        for i in 0..self.layers.len() {
            // Move tops out so bottoms can be borrowed immutably.
            let mut my_tops: Vec<Blob> = self.tops[i]
                .iter()
                .map(|&t| std::mem::replace(&mut self.blobs[t], Blob::empty()))
                .collect();
            {
                let my_bottoms: Vec<&Blob> =
                    self.bottoms[i].iter().map(|&b| &self.blobs[b]).collect();
                self.layers[i].reshape(&my_bottoms, &mut my_tops);
                self.layers[i].forward(ctx, &my_bottoms, &mut my_tops);
            }
            let w = self.layers[i].loss_weight();
            if w > 0.0 && ctx.compute {
                loss += w * my_tops[0].data()[0];
            }
            for (&t, blob) in self.tops[i].iter().zip(my_tops) {
                self.blobs[t] = blob;
            }
        }
        loss
    }

    /// Inference-only forward: switches every layer to inference
    /// behaviour and runs the forward pass without accumulating a loss or
    /// touching any diff/solver state. Read outputs by blob name
    /// afterwards. The net stays in inference mode until
    /// [`set_train`](Self::set_train)`(true)` is called.
    pub fn forward_inference(&mut self, ctx: &mut ExecCtx) {
        self.set_train(false);
        let _ = self.forward(ctx);
    }

    /// Run the backward pass (forward must have run first).
    pub fn backward(&mut self, ctx: &mut ExecCtx) {
        self.seed_loss_grads();
        for i in (0..self.layers.len()).rev() {
            self.backward_layer(i, ctx);
        }
    }

    /// Seed the loss-layer output gradients (`∂L/∂loss =` loss weight) —
    /// the prologue of [`backward`](Net::backward), split out so callers
    /// can step the backward pass layer by layer (e.g. to overlap each
    /// layer's gradient all-reduce with the next layer's backward).
    pub fn seed_loss_grads(&mut self) {
        for i in 0..self.layers.len() {
            let w = self.layers[i].loss_weight();
            if w > 0.0 {
                let t = self.tops[i][0];
                self.blobs[t].diff_mut()[0] = w;
            }
        }
    }

    /// Run a single layer's backward (a no-op for layers that don't
    /// participate). Call [`seed_loss_grads`](Net::seed_loss_grads) first,
    /// then step `i` from `num_layers()-1` down to 0;
    /// [`backward`](Net::backward) is exactly that loop.
    pub fn backward_layer(&mut self, i: usize, ctx: &mut ExecCtx) {
        ctx.net_name = self.name.clone();
        ctx.batch = self.blobs.first().map_or(0, |b| b.num());
        if !self.layers[i].needs_backward() {
            return;
        }
        let mut my_bottoms: Vec<Blob> = self.bottoms[i]
            .iter()
            .map(|&b| std::mem::replace(&mut self.blobs[b], Blob::empty()))
            .collect();
        {
            let my_tops: Vec<&Blob> = self.tops[i].iter().map(|&t| &self.blobs[t]).collect();
            self.layers[i].backward(ctx, &my_tops, &mut my_bottoms);
        }
        for (&b, blob) in self.bottoms[i].iter().zip(my_bottoms) {
            self.blobs[b] = blob;
        }
    }

    /// The learnable parameter blobs of layer `i` (empty for
    /// parameter-free layers).
    pub fn layer_params_mut(&mut self, i: usize) -> Vec<&mut Blob> {
        self.layers[i].params_mut()
    }

    /// All learnable parameter blobs, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Blob> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zero all parameter gradients (start of an iteration).
    pub fn zero_param_diffs(&mut self) {
        for p in self.params_mut() {
            p.zero_diff();
        }
    }

    /// Switch every layer between training and inference behaviour.
    pub fn set_train(&mut self, train: bool) {
        for l in &mut self.layers {
            l.set_train(train);
        }
    }

    /// Snapshot all learnable parameters (a checkpoint), in layer order.
    pub fn state_dict(&mut self) -> Vec<Vec<f32>> {
        self.params_mut()
            .iter()
            .map(|p| p.data().to_vec())
            .collect()
    }

    /// Restore parameters from a [`state_dict`](Self::state_dict)
    /// snapshot.
    ///
    /// # Panics
    /// Panics on a shape mismatch (wrong network or uninitialized layers —
    /// run one forward pass first so lazily-initialized parameters exist).
    pub fn load_state_dict(&mut self, state: &[Vec<f32>]) {
        let mut params = self.params_mut();
        assert_eq!(
            params.len(),
            state.len(),
            "checkpoint has {} parameter blobs, net has {}",
            state.len(),
            params.len()
        );
        for (p, s) in params.iter_mut().zip(state) {
            assert_eq!(p.count(), s.len(), "parameter shape mismatch");
            p.data_mut().copy_from_slice(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn tiny_spec() -> NetSpec {
        NetSpec {
            name: "tiny".to_string(),
            inputs: vec![
                ("data".to_string(), vec![4, 1, 8, 8]),
                ("label".to_string(), vec![4]),
            ],
            layers: vec![
                LayerSpec {
                    name: "conv1".into(),
                    kind: LayerKind::Convolution {
                        num_output: 4,
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    },
                    bottoms: vec!["data".into()],
                    tops: vec!["conv1_out".into()],
                },
                LayerSpec {
                    name: "relu1".into(),
                    kind: LayerKind::Relu,
                    bottoms: vec!["conv1_out".into()],
                    tops: vec!["relu1_out".into()],
                },
                LayerSpec {
                    name: "ip1".into(),
                    kind: LayerKind::InnerProduct { num_output: 3 },
                    bottoms: vec!["relu1_out".into()],
                    tops: vec!["ip1_out".into()],
                },
                LayerSpec {
                    name: "loss".into(),
                    kind: LayerKind::SoftmaxLoss,
                    bottoms: vec!["ip1_out".into(), "label".into()],
                    tops: vec!["loss_out".into()],
                },
            ],
            seed: 11,
        }
    }

    fn set_inputs(net: &mut Net) {
        let data: Vec<f32> = (0..4 * 64).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect();
        net.blob_mut("data").data_mut().copy_from_slice(&data);
        net.blob_mut("label")
            .data_mut()
            .copy_from_slice(&[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn builds_and_runs_forward_backward() {
        let mut net = Net::from_spec(&tiny_spec());
        assert_eq!(net.num_layers(), 4);
        set_inputs(&mut net);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let loss = net.forward(&mut ctx);
        assert!(loss.is_finite() && loss > 0.0);
        net.backward(&mut ctx);
        // Conv weights received gradient.
        let grads: f32 = net.params_mut()[0].diff().iter().map(|v| v.abs()).sum();
        assert!(grads > 0.0);
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let spec = tiny_spec();
        // serde structural equality via clone (serde_json unavailable in
        // the sanctioned offline crate set; Serialize/Deserialize impls
        // are exercised by the derive's generated code at compile time).
        let copy = spec.clone();
        assert_eq!(spec, copy);
    }

    #[test]
    fn forward_is_deterministic() {
        let run = || {
            let mut net = Net::from_spec(&tiny_spec());
            set_inputs(&mut net);
            let mut ctx = ExecCtx::naive(DeviceProps::p100());
            net.forward(&mut ctx)
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    #[should_panic(expected = "unknown blob missing")]
    fn dangling_bottom_panics() {
        let mut spec = tiny_spec();
        spec.layers[0].bottoms[0] = "missing".into();
        Net::from_spec(&spec);
    }

    #[test]
    #[should_panic(expected = "duplicate top")]
    fn inplace_tops_rejected() {
        let mut spec = tiny_spec();
        spec.layers[1].tops[0] = "conv1_out".into();
        Net::from_spec(&spec);
    }

    #[test]
    fn layer_names_in_order() {
        let net = Net::from_spec(&tiny_spec());
        assert_eq!(net.layer_names(), vec!["conv1", "relu1", "ip1", "loss"]);
    }

    #[test]
    fn checkpoint_roundtrip_restores_outputs() {
        let mut net = Net::from_spec(&tiny_spec());
        set_inputs(&mut net);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let loss0 = net.forward(&mut ctx);
        let ckpt = net.state_dict();
        assert!(!ckpt.is_empty());
        // Perturb weights, confirm the output changes, restore, confirm
        // bitwise recovery.
        for p in net.params_mut() {
            for v in p.data_mut() {
                *v += 0.1;
            }
        }
        set_inputs(&mut net);
        let perturbed = net.forward(&mut ctx);
        assert_ne!(loss0.to_bits(), perturbed.to_bits());
        net.load_state_dict(&ckpt);
        set_inputs(&mut net);
        let restored = net.forward(&mut ctx);
        assert_eq!(loss0.to_bits(), restored.to_bits());
    }

    #[test]
    #[should_panic(expected = "parameter blobs")]
    fn checkpoint_arity_checked() {
        let mut net = Net::from_spec(&tiny_spec());
        set_inputs(&mut net);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        net.forward(&mut ctx);
        net.load_state_dict(&[vec![0.0; 4]]);
    }

    #[test]
    fn set_train_toggles_dropout() {
        use crate::layer::Layer as _;
        use crate::layers::DropoutLayer;
        let mut d = DropoutLayer::new("drop", 0.5, 1);
        d.set_train(false);
        assert!(!d.train);
        d.set_train(true);
        assert!(d.train);
    }

    #[test]
    fn inference_spec_strips_trailing_loss_layers() {
        let spec = tiny_spec();
        let inf = spec.inference();
        assert_eq!(inf.layers.len(), 3);
        assert_eq!(inf.final_top(), Some("ip1_out"));
        // Surviving layers are untouched, so per-layer seeds are stable.
        assert_eq!(&inf.layers[..], &spec.layers[..3]);
    }

    #[test]
    fn inference_forward_is_bitwise_identical_to_training_forward() {
        // The served path (stripped spec + forward_inference) must produce
        // exactly the bits the training net computes for the same scoring
        // layers — the serving analogue of the paper's
        // convergence-invariance claim.
        let spec = crate::models::cifar10_quick(8, 77);
        let fill = |net: &mut Net| {
            let n = net.blob("data").count();
            let data: Vec<f32> = (0..n).map(|i| ((i % 251) as f32 - 125.0) * 0.01).collect();
            net.blob_mut("data").data_mut().copy_from_slice(&data);
        };

        let mut train_net = Net::from_spec(&spec);
        fill(&mut train_net);
        train_net
            .blob_mut("label")
            .data_mut()
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = (i % 10) as f32);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        train_net.forward(&mut ctx);

        let mut infer_net = Net::from_spec(&spec.inference());
        fill(&mut infer_net);
        infer_net.forward_inference(&mut ctx);

        let scores = spec.inference();
        let out = scores.final_top().unwrap();
        let a = train_net.blob(out).data();
        let b = infer_net.blob(out).data();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn by_name_rejects_unknown_networks() {
        assert!(Net::by_name("CIFAR10", 4, 1).is_ok());
        let err = Net::by_name("ResNet", 4, 1).err().unwrap();
        assert!(err.to_string().contains("valid names"));
    }

    #[test]
    fn zero_param_diffs_clears_gradients() {
        let mut net = Net::from_spec(&tiny_spec());
        set_inputs(&mut net);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        net.forward(&mut ctx);
        net.backward(&mut ctx);
        net.zero_param_diffs();
        for p in net.params_mut() {
            assert!(p.diff().iter().all(|&v| v == 0.0));
        }
    }
}
