#![warn(missing_docs)]

//! A Caffe-like deep-learning framework with simulated-GPU kernel dispatch.
//!
//! This crate is the reproduction's stand-in for Caffe — the host framework
//! the paper integrates GLP4NN into ("GLP4NN-Caffe"). It provides:
//!
//! - [`layer`]: the `Layer` trait (forward/backward over bottom/top blobs,
//!   the structure of the paper's Algorithms 1-2) and [`layers`], the layer
//!   zoo used by the paper's four evaluation networks: convolution,
//!   pooling, ReLU, LRN, inner product, softmax loss, contrastive loss
//!   (Siamese), concat (GoogLeNet), dropout and accuracy.
//! - [`net`]: `NetSpec` (serde-serializable network description, Caffe's
//!   prototxt equivalent) and `Net`, a topologically-executed layer stack.
//! - [`solver`]: plain SGD with momentum, weight decay and the standard
//!   learning-rate policies.
//! - [`models`]: the four evaluation networks with the exact convolution
//!   configurations of the paper's Table 5 — CIFAR10-quick, Siamese,
//!   CaffeNet and a GoogLeNet subgraph.
//! - [`data`]: deterministic synthetic datasets shaped like MNIST,
//!   CIFAR-10 and ImageNet (the paper's Table 4) — see DESIGN.md for the
//!   substitution rationale.
//! - [`exec`]: the execution context tying a layer's *real CPU math* to
//!   its *simulated GPU kernels*. Convolution layers emit one dependent
//!   kernel group per batch sample (`im2col → sgemm → bias`, the paper's
//!   batch-level parallelism) and dispatch them naively, over a fixed
//!   number of streams, or through the GLP4NN runtime scheduler.
//!
//! The CPU math is **identical code in every dispatch mode**, so GLP4NN
//! runs produce bitwise-identical parameters to naive runs — the
//! convergence-invariance property of the paper's §3.3.1, verified by this
//! repository's integration tests.

pub mod data;
pub mod exec;
pub mod layer;
pub mod layers;
pub mod models;
pub mod net;
pub mod parallel_train;
pub mod solver;

pub use exec::{DispatchMode, ExecCtx, LayerTiming};
pub use layer::Layer;
pub use models::UnknownModelError;
pub use net::{Net, NetSpec};
pub use parallel_train::{DataParallelTrainer, StepReport};
pub use solver::{LrPolicy, MomentumKind, Solver, SolverConfig};
