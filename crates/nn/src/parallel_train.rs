//! Synchronous data-parallel training over a fabric of simulated GPUs —
//! the paper's §6 future work ("we will try to provide a distributed
//! implementation of the proposed framework") built on top of the
//! single-GPU GLP4NN optimization.
//!
//! Every replica holds an identical copy of the network on its own
//! simulated device (optionally accelerated by GLP4NN). The devices are
//! joined by a [`Fabric`] ring (PCIe- or NVLink-like links) and gradients
//! travel as real simulated traffic: per-layer buckets are ring
//! all-reduced ([`collective::RingComm`]) as chains of peer-to-peer copies
//! plus local fold kernels on per-device communication streams.
//!
//! Two scheduling modes:
//!
//! - **No overlap** (default): replicas run forward/backward eagerly,
//!   then all buckets are reduced — the classic BSP step. Simulated step
//!   time is `max(compute) + comm`.
//! - **Overlap** ([`with_overlap`](DataParallelTrainer::with_overlap)):
//!   the whole pass is issued in deferred mode (cached execution plans
//!   are *issued*, not run; inter-layer barriers become events), and
//!   layer `k`'s bucket all-reduce is enqueued — gated on a barrier event
//!   — right after layer `k`'s backward, so it overlaps layer `k-1`'s
//!   backward. One [`Fabric::run`] drives the whole iteration; the
//!   communication hides behind compute.
//!
//! Numerics are decoupled from the simulated schedule, deliberately: the
//! simulator moves no data, so gradient math happens host-side. The plain
//! [`step`](DataParallelTrainer::step) combines per-replica gradients in
//! a fixed tree (deterministic for a given replica count);
//! [`step_sharded`](DataParallelTrainer::step_sharded) goes further and
//! reproduces the paper's convergence-invariance contract for data
//! parallelism: the global batch is cut into a *fixed* number of shards,
//! each shard's gradient is computed separately, and shards are combined
//! by a fixed binary tree over shard indices
//! ([`collective::tree_sum_scaled`]) — so trained weights are **bitwise
//! identical for any replica count** that divides the shard count.

use crate::exec::{DispatchMode, ExecCtx};
use crate::net::{Net, NetSpec};
use crate::solver::SolverConfig;
use collective::{tree_sum_scaled, Bucket, CommReport, RingComm};
use gpu_sim::{Device, DeviceProps, DeviceStats, Fabric, LinkProps, SimTime, Timeline};
use sanitizer::{Diagnostic, SanitizeMode, Sanitizer};

/// Result of one data-parallel step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Mean loss over replicas (for [`DataParallelTrainer::step_sharded`],
    /// the fixed-tree mean over shards).
    pub loss: f32,
    /// Simulated compute time: the slowest replica's eager pass (ns). In
    /// overlap mode compute and communication are indistinguishable, and
    /// this equals [`wall_ns`](StepReport::wall_ns).
    pub compute_ns: u64,
    /// Simulated span of the gradient all-reduce traffic (ns). In overlap
    /// mode this runs concurrently with compute.
    pub comm_ns: u64,
    /// Simulated wall-clock of the whole step: the slowest device's
    /// elapsed simulated time, communication included.
    pub wall_ns: u64,
}

impl StepReport {
    /// Total simulated step time under sequential compute-then-communicate
    /// accounting. Prefer [`wall_ns`](StepReport::wall_ns), which is also
    /// correct for overlapped schedules.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.comm_ns
    }
}

/// A synchronous data-parallel trainer.
pub struct DataParallelTrainer {
    replicas: Vec<(Net, ExecCtx)>,
    cfg: SolverConfig,
    momentum: Vec<Vec<f32>>,
    iter: usize,
    fabric: Fabric,
    comm: RingComm,
    overlap: bool,
    shards: usize,
    /// Merged cross-device trace checking (per-device checking lives in
    /// each replica's context).
    sanitizer: Sanitizer,
    telemetry: telemetry::RecorderSlot,
}

impl DataParallelTrainer {
    /// Build `devices.len()` replicas of `spec`, one per device, joined in
    /// a PCIe-like ring. When `glp4nn` is true each replica's context runs
    /// the full framework (profile-then-parallelize per device, as the
    /// paper's multi-GPU architecture assigns a private analyzer/scheduler
    /// per GPU).
    pub fn new(spec: &NetSpec, devices: &[DeviceProps], glp4nn: bool, cfg: SolverConfig) -> Self {
        assert!(!devices.is_empty());
        let mut replicas: Vec<(Net, ExecCtx)> = devices
            .iter()
            .map(|d| {
                let ctx = if glp4nn {
                    ExecCtx::glp4nn(d.clone())
                } else {
                    ExecCtx::naive(d.clone())
                };
                (Net::from_spec(spec), ctx)
            })
            .collect();
        let fabric = Fabric::ring(devices.len(), LinkProps::pcie3());
        let comm = {
            let mut devs: Vec<&mut Device> =
                replicas.iter_mut().map(|(_, c)| &mut c.device).collect();
            RingComm::new(&mut devs)
        };
        let shards = devices.len();
        DataParallelTrainer {
            replicas,
            cfg,
            momentum: Vec::new(),
            iter: 0,
            fabric,
            comm,
            overlap: false,
            shards,
            sanitizer: Sanitizer::default(),
            telemetry: telemetry::RecorderSlot::empty(),
        }
    }

    /// Attach a shared telemetry recorder to the whole trainer: every
    /// replica's device (pid = replica index), the fabric (P2P copy spans
    /// and flow arrows), the ring communicator (traffic counters), and the
    /// trainer itself (per-iteration collective spans and step metrics).
    /// Observation only: timelines and trained weights are unchanged.
    pub fn set_telemetry(&mut self, rec: telemetry::SharedRecorder) {
        for (r, (_, ctx)) in self.replicas.iter_mut().enumerate() {
            ctx.set_telemetry(std::sync::Arc::clone(&rec), r as u32);
        }
        self.fabric.set_telemetry(std::sync::Arc::clone(&rec));
        self.comm.set_telemetry(std::sync::Arc::clone(&rec));
        self.telemetry.attach(rec);
    }

    /// Detach the shared telemetry recorder everywhere.
    pub fn clear_telemetry(&mut self) {
        for (_, ctx) in &mut self.replicas {
            ctx.clear_telemetry();
        }
        self.fabric.clear_telemetry();
        self.comm.clear_telemetry();
        self.telemetry.clear();
    }

    /// Name the processes/threads this trainer records under (call once
    /// before export).
    pub fn annotate_telemetry(&self, t: &mut telemetry::Telemetry) {
        for (_, ctx) in &self.replicas {
            ctx.device.annotate_telemetry(t);
        }
        t.set_process_name(telemetry::COLLECTIVE_PID, "collectives");
    }

    /// Rebuild the interconnect ring with `link` (e.g.
    /// [`LinkProps::nvlink`]). Call before the first step.
    pub fn with_link(mut self, link: LinkProps) -> Self {
        assert_eq!(self.iter, 0, "change links before training starts");
        self.fabric = Fabric::ring(self.replicas.len(), link);
        self
    }

    /// Enable or disable communication/compute overlap (see module docs).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Set every replica's dispatch mode (e.g.
    /// [`DispatchMode::FixedStreams`] for the multi-stream sweeps).
    pub fn with_dispatch(mut self, mode: DispatchMode) -> Self {
        for (_, ctx) in &mut self.replicas {
            ctx.mode = mode;
        }
        self
    }

    /// Set the fixed shard count for
    /// [`step_sharded`](DataParallelTrainer::step_sharded). Must be a
    /// multiple of the replica count. Defaults to the replica count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0 && shards.is_multiple_of(self.replicas.len()));
        self.shards = shards;
        self
    }

    /// Skip host-side math on every replica: kernels are still dispatched
    /// and timed on the simulated devices, but no CPU arithmetic runs.
    /// Losses and weights become meaningless — use for timing sweeps.
    pub fn timing_only(mut self) -> Self {
        for (_, ctx) in &mut self.replicas {
            ctx.compute = false;
        }
        self
    }

    /// Enable schedule sanitizing on every replica (plan validation +
    /// per-device happens-before replay) and on the merged cross-device
    /// fabric trace.
    pub fn sanitize(mut self, mode: SanitizeMode) -> Self {
        for (_, ctx) in &mut self.replicas {
            ctx.sanitizer = Sanitizer::new(mode);
        }
        self.sanitizer = Sanitizer::new(mode);
        self
    }

    /// All sanitizer diagnostics accumulated so far (per-replica checks
    /// first, then merged fabric checks).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (_, ctx) in &self.replicas {
            out.extend_from_slice(ctx.sanitizer.reports());
        }
        out.extend_from_slice(self.sanitizer.reports());
        out
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Current iteration.
    pub fn iteration(&self) -> usize {
        self.iter
    }

    /// Access replica `r`'s network (e.g. to fill its input sub-batch).
    pub fn replica_net(&mut self, r: usize) -> &mut Net {
        &mut self.replicas[r].0
    }

    /// The interconnect fabric (copy spans, link properties).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Per-device utilization statistics, in replica order.
    pub fn device_stats(&self) -> Vec<DeviceStats> {
        self.replicas
            .iter()
            .map(|(_, c)| c.device.stats())
            .collect()
    }

    /// One timeline over all replicas' devices (stream rows offset per
    /// device), communication traffic included.
    pub fn merged_timeline(&self) -> Timeline {
        let views: Vec<&Device> = self.replicas.iter().map(|(_, c)| &c.device).collect();
        self.fabric.merged_timeline(&views)
    }

    /// One synchronous step. Input sub-batches must already be loaded into
    /// every replica's input blobs. Gradients are combined in a fixed tree
    /// over replica indices (deterministic; for replica-count-*invariant*
    /// bits use [`step_sharded`](DataParallelTrainer::step_sharded)).
    pub fn step(&mut self) -> StepReport {
        let r_count = self.replicas.len();
        let t0 = self.begin_iteration();

        let mut losses = Vec::with_capacity(r_count);
        for (net, ctx) in &mut self.replicas {
            net.zero_param_diffs();
            ctx.take_timings();
            let loss = net.forward(ctx);
            net.seed_loss_grads();
            losses.push(loss);
        }
        let comm_reports = self.backward_with_allreduce();
        let (compute_ns, comm_ns, wall_ns) = self.finish_iteration(&t0, &comm_reports);

        // Fixed-tree gradient mean over replicas, into replica 0.
        if r_count > 1 {
            let inv = 1.0 / r_count as f32;
            let parts: Vec<Vec<Vec<f32>>> = self
                .replicas
                .iter_mut()
                .map(|(net, _)| net.params_mut().iter().map(|p| p.diff().to_vec()).collect())
                .collect();
            let mut master = self.replicas[0].0.params_mut();
            for (pi, p) in master.iter_mut().enumerate() {
                let views: Vec<&[f32]> = parts.iter().map(|r| r[pi].as_slice()).collect();
                let reduced = tree_sum_scaled(&views, inv);
                p.diff_mut().copy_from_slice(&reduced);
            }
        }

        // SGD update on replica 0 (same rule as `Solver::step`).
        let lr = self.cfg.base_lr; // fixed policy in the data-parallel path
        {
            let mut master = self.replicas[0].0.params_mut();
            if self.momentum.len() != master.len() {
                self.momentum = master.iter().map(|p| vec![0.0; p.count()]).collect();
            }
            for (p, h) in master.iter_mut().zip(&mut self.momentum) {
                let (data, diff) = p.data_and_diff_mut();
                for i in 0..data.len() {
                    let g = diff[i] + self.cfg.weight_decay * data[i];
                    h[i] = self.cfg.momentum * h[i] + lr * g;
                    data[i] -= h[i];
                }
            }
        }

        // Broadcast parameters to the other replicas (host-side; the
        // simulated broadcast cost is part of the reduced buckets already
        // circulated by the all-gather phase of the ring).
        let master_params: Vec<Vec<f32>> = self.replicas[0]
            .0
            .params_mut()
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        for (net, _) in self.replicas.iter_mut().skip(1) {
            for (p, src) in net.params_mut().iter_mut().zip(&master_params) {
                p.data_mut().copy_from_slice(src);
            }
        }

        self.iter += 1;
        StepReport {
            loss: losses.iter().sum::<f32>() / r_count as f32,
            compute_ns,
            comm_ns,
            wall_ns,
        }
    }

    /// One convergence-invariant step over `shards` fixed shards (see
    /// [`with_shards`](DataParallelTrainer::with_shards)). `fill` loads
    /// shard `q`'s samples into the given replica net before its pass;
    /// replica `r` processes the contiguous shard range
    /// `r*S/R .. (r+1)*S/R`, so the shard set — and therefore the fixed
    /// reduction tree and every intermediate rounding — is identical for
    /// every replica count dividing `S`. Trained weights are bitwise
    /// reproducible across replica counts and device models.
    pub fn step_sharded<F>(&mut self, mut fill: F) -> StepReport
    where
        F: FnMut(&mut Net, usize),
    {
        let r_count = self.replicas.len();
        let s_count = self.shards;
        assert!(
            s_count.is_multiple_of(r_count),
            "{s_count} shards do not divide over {r_count} replicas"
        );
        let per = s_count / r_count;
        let t0 = self.begin_iteration();

        let mut shard_losses = vec![0.0f32; s_count];
        let mut shard_grads: Vec<Vec<Vec<f32>>> = vec![Vec::new(); s_count];
        // All shards but each replica's last run as whole passes; the last
        // shard's backward is stepped per layer below so bucket
        // all-reduces can overlap it.
        for (r, (net, ctx)) in self.replicas.iter_mut().enumerate() {
            ctx.take_timings();
            for k in 0..per {
                let q = r * per + k;
                fill(net, q);
                net.zero_param_diffs();
                shard_losses[q] = net.forward(ctx);
                if k + 1 < per {
                    net.backward(ctx);
                    shard_grads[q] = net.params_mut().iter().map(|p| p.diff().to_vec()).collect();
                } else {
                    net.seed_loss_grads();
                }
            }
        }
        let comm_reports = self.backward_with_allreduce();
        for (r, (net, _)) in self.replicas.iter_mut().enumerate() {
            let q = r * per + per - 1;
            shard_grads[q] = net.params_mut().iter().map(|p| p.diff().to_vec()).collect();
        }
        let (compute_ns, comm_ns, wall_ns) = self.finish_iteration(&t0, &comm_reports);

        // Canonical math: fixed tree over the full shard set.
        let inv = 1.0 / s_count as f32;
        let num_params = shard_grads[0].len();
        let reduced: Vec<Vec<f32>> = (0..num_params)
            .map(|pi| {
                let views: Vec<&[f32]> = shard_grads.iter().map(|g| g[pi].as_slice()).collect();
                tree_sum_scaled(&views, inv)
            })
            .collect();
        let loss = {
            let parts: Vec<[f32; 1]> = shard_losses.iter().map(|&l| [l]).collect();
            let views: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
            tree_sum_scaled(&views, inv)[0]
        };

        // One momentum update, applied identically to every replica, so
        // replicas stay bitwise in lock-step.
        let lr = self.cfg.base_lr;
        if self.momentum.len() != num_params {
            self.momentum = reduced.iter().map(|g| vec![0.0; g.len()]).collect();
        }
        let data0: Vec<Vec<f32>> = self.replicas[0]
            .0
            .params_mut()
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        let mut delta: Vec<Vec<f32>> = Vec::with_capacity(num_params);
        for pi in 0..num_params {
            let h = &mut self.momentum[pi];
            let mut d = vec![0.0f32; h.len()];
            for i in 0..h.len() {
                let g = reduced[pi][i] + self.cfg.weight_decay * data0[pi][i];
                h[i] = self.cfg.momentum * h[i] + lr * g;
                d[i] = h[i];
            }
            delta.push(d);
        }
        for (net, _) in &mut self.replicas {
            for (p, d) in net.params_mut().iter_mut().zip(&delta) {
                for (v, dv) in p.data_mut().iter_mut().zip(d) {
                    *v -= *dv;
                }
            }
        }

        self.iter += 1;
        StepReport {
            loss,
            compute_ns,
            comm_ns,
            wall_ns,
        }
    }

    /// Start an iteration: snapshot device clocks and arm deferred mode
    /// when overlapping. A single replica has no communication to hide, so
    /// overlap degenerates to the plain eager schedule there (deferred
    /// issue alone would only add event-barrier overhead).
    fn begin_iteration(&mut self) -> Vec<SimTime> {
        let defer = self.overlap && self.replicas.len() > 1;
        self.replicas
            .iter_mut()
            .map(|(_, ctx)| {
                ctx.set_deferred(defer);
                ctx.device.now()
            })
            .collect()
    }

    /// The per-layer backward loop with bucket all-reduces. In overlap
    /// mode buckets are enqueued (event-gated) as soon as their layer's
    /// backward has issued; otherwise the eager backward completes first
    /// and buckets are enqueued afterwards, to be driven by the single
    /// `Fabric::run` in [`finish_iteration`].
    fn backward_with_allreduce(&mut self) -> Vec<(String, CommReport)> {
        let r_count = self.replicas.len();
        let num_layers = self.replicas[0].0.num_layers();
        let names = self.replicas[0].0.layer_names();
        let mut reports = Vec::new();
        let overlapped = self.overlap && self.replicas.iter().any(|(_, c)| c.is_deferred());
        for i in (0..num_layers).rev() {
            for (net, ctx) in &mut self.replicas {
                net.backward_layer(i, ctx);
            }
            if r_count > 1 && overlapped {
                if let Some(bucket) = self.layer_bucket(i, &names) {
                    let rep = all_reduce_bucket(
                        &mut self.replicas,
                        &mut self.fabric,
                        &mut self.comm,
                        &bucket,
                        true,
                    );
                    reports.push((bucket.label, rep));
                }
            }
        }
        if r_count > 1 && !overlapped {
            for i in (0..num_layers).rev() {
                if let Some(bucket) = self.layer_bucket(i, &names) {
                    let rep = all_reduce_bucket(
                        &mut self.replicas,
                        &mut self.fabric,
                        &mut self.comm,
                        &bucket,
                        false,
                    );
                    reports.push((bucket.label, rep));
                }
            }
        }
        reports
    }

    /// Layer `i`'s gradient bucket: its parameter bytes under the layer's
    /// weight-gradient buffer label (so the sanitizer sees the collective
    /// touch the same address ranges the backward kernels declare).
    fn layer_bucket(&mut self, i: usize, names: &[String]) -> Option<Bucket> {
        let bytes: u64 = self.replicas[0]
            .0
            .layer_params_mut(i)
            .iter()
            .map(|p| p.count() as u64 * 4)
            .sum();
        (bytes > 0).then(|| Bucket::new(format!("{}/dw", names[i]), bytes))
    }

    /// Drive everything still queued (deferred compute, collectives) to
    /// completion, close the iteration's trace segment, run sanitizer
    /// checks, and compute the step's timing triple.
    fn finish_iteration(
        &mut self,
        t0: &[SimTime],
        comm_reports: &[(String, CommReport)],
    ) -> (u64, u64, u64) {
        {
            let mut devs: Vec<&mut Device> = self
                .replicas
                .iter_mut()
                .map(|(_, c)| &mut c.device)
                .collect();
            self.fabric.run(&mut devs);
        }
        let mut compute_ns = 0u64;
        let mut wall_ns = 0u64;
        for ((_, ctx), &start) in self.replicas.iter_mut().zip(t0) {
            ctx.set_deferred(false);
            wall_ns = wall_ns.max(ctx.device.now() - start);
            let eager: u64 = ctx.take_timings().iter().map(|t| t.elapsed_ns).sum();
            compute_ns = compute_ns.max(eager);
        }
        if self.overlap {
            compute_ns = wall_ns;
        }
        let mut span: Option<(u64, u64)> = None;
        for (tid, (label, rep)) in comm_reports.iter().enumerate() {
            self.telemetry.with(|r| {
                rep.emit_span(&self.fabric, r, &format!("allreduce {label}"), tid as u64);
            });
            if let Some((s, e)) = rep.span(&self.fabric) {
                span = Some(match span {
                    None => (s, e),
                    Some((s0, e0)) => (s0.min(s), e0.max(e)),
                });
            }
        }
        let comm_ns = span.map_or(0, |(s, e)| e - s);
        if self.sanitizer.is_full() || self.replicas.iter().any(|(_, c)| c.sanitizer.is_full()) {
            for (_, ctx) in &mut self.replicas {
                ctx.sanitizer.check_device(&ctx.device);
            }
            let views: Vec<&Device> = self.replicas.iter().map(|(_, c)| &c.device).collect();
            self.sanitizer.check_fabric(&self.fabric, &views);
        }
        self.telemetry.with(|r| {
            r.counter_add("train.iterations", 1);
            r.observe("train.step_wall_ns", wall_ns);
            r.observe("train.step_compute_ns", compute_ns);
            r.observe("train.step_comm_ns", comm_ns);
        });
        (compute_ns, comm_ns, wall_ns)
    }
}

/// Ring all-reduce one bucket across every replica's device. With `gate`,
/// each device's communication stream first waits on a barrier event
/// covering all of that replica's deferred work, so the collective cannot
/// start before the gradient it ships exists.
fn all_reduce_bucket(
    replicas: &mut [(Net, ExecCtx)],
    fabric: &mut Fabric,
    comm: &mut RingComm,
    bucket: &Bucket,
    gate: bool,
) -> CommReport {
    if gate {
        for (r, (_, ctx)) in replicas.iter_mut().enumerate() {
            if let Some(ev) = ctx.barrier_event() {
                let stream = comm.stream(r);
                ctx.device.wait_event(stream, ev);
            }
        }
    }
    let mut devs: Vec<&mut Device> = replicas.iter_mut().map(|(_, c)| &mut c.device).collect();
    comm.all_reduce(fabric, &mut devs, bucket)
        .expect("ring all-reduce over the trainer's own fabric cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::models;
    use crate::solver::{MomentumKind, Solver};
    use tensor::Blob;

    fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
        let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
        let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
        ds.fill_batch(start, &mut data, &mut label);
        *net.blob_mut("data") = data;
        *net.blob_mut("label") = label;
    }

    fn cfg() -> SolverConfig {
        SolverConfig {
            base_lr: 0.01,
            momentum: 0.9,
            momentum_kind: MomentumKind::Classical,
            weight_decay: 0.0,
            policy: crate::solver::LrPolicy::Fixed,
        }
    }

    #[test]
    fn two_replicas_match_single_gpu_training() {
        let total_batch = 16;
        let ds = SyntheticDataset::cifar_like(11);

        // Single GPU, full batch.
        let mut single = Solver::new(
            Net::from_spec(&models::cifar10_quick(total_batch, 9)),
            cfg(),
        );
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let mut single_losses = Vec::new();
        for it in 0..3 {
            fill(&mut single.net, &ds, it * total_batch);
            single_losses.push(single.step(&mut ctx));
        }

        // Two replicas, half batch each, same sample order.
        let spec = models::cifar10_quick(total_batch / 2, 9);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::p100(), DeviceProps::p100()],
            false,
            cfg(),
        );
        let mut dp_losses = Vec::new();
        for it in 0..3 {
            fill(dp.replica_net(0), &ds, it * total_batch);
            fill(dp.replica_net(1), &ds, it * total_batch + total_batch / 2);
            dp_losses.push(dp.step().loss);
        }

        for (s, d) in single_losses.iter().zip(&dp_losses) {
            assert!(
                (s - d).abs() < 2e-3,
                "data-parallel loss must track single-GPU: {s} vs {d}"
            );
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let spec = models::cifar10_quick(8, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::k40c(), DeviceProps::p100()],
            false,
            cfg(),
        );
        for it in 0..2 {
            fill(dp.replica_net(0), &ds, it * 16);
            fill(dp.replica_net(1), &ds, it * 16 + 8);
            dp.step();
        }
        let w0: Vec<f32> = dp.replicas[0].0.params_mut()[0].data().to_vec();
        let w1: Vec<f32> = dp.replicas[1].0.params_mut()[0].data().to_vec();
        assert_eq!(w0, w1, "broadcast must keep replicas identical");
        assert_eq!(dp.iteration(), 2);
    }

    #[test]
    fn comm_cost_scales_with_replicas() {
        let spec = models::cifar10_quick(8, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let one = {
            let mut dp = DataParallelTrainer::new(&spec, &[DeviceProps::p100()], false, cfg());
            fill(dp.replica_net(0), &ds, 0);
            dp.step()
        };
        assert_eq!(one.comm_ns, 0, "single replica needs no all-reduce");
        let two = {
            let mut dp = DataParallelTrainer::new(
                &spec,
                &[DeviceProps::p100(), DeviceProps::p100()],
                false,
                cfg(),
            );
            fill(dp.replica_net(0), &ds, 0);
            fill(dp.replica_net(1), &ds, 8);
            dp.step()
        };
        assert!(two.comm_ns > 0);
        assert!(two.total_ns() > two.compute_ns);
        assert!(two.wall_ns >= two.compute_ns);
    }

    #[test]
    fn glp4nn_replicas_accelerate_after_profiling() {
        let spec = models::cifar10_quick(16, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::p100(), DeviceProps::p100()],
            true,
            cfg(),
        );
        fill(dp.replica_net(0), &ds, 0);
        fill(dp.replica_net(1), &ds, 16);
        let first = dp.step(); // profiling iteration on both replicas
        fill(dp.replica_net(0), &ds, 32);
        fill(dp.replica_net(1), &ds, 48);
        let second = dp.step(); // steady state
        assert!(
            second.compute_ns < first.compute_ns,
            "GLP4NN steady state must be faster: {} vs {}",
            second.compute_ns,
            first.compute_ns
        );
    }

    /// Run K iterations in each mode and compare simulated wall time.
    fn wall_after(overlap: bool, iters: usize) -> (u64, Vec<Diagnostic>) {
        let spec = models::cifar10_quick(8, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::p100(), DeviceProps::p100()],
            false,
            cfg(),
        )
        .with_dispatch(DispatchMode::FixedStreams(4))
        .with_overlap(overlap)
        .sanitize(SanitizeMode::Full);
        let mut wall = 0;
        for it in 0..iters {
            fill(dp.replica_net(0), &ds, it * 16);
            fill(dp.replica_net(1), &ds, it * 16 + 8);
            wall = dp.step().wall_ns; // steady-state (last) iteration
        }
        (wall, dp.diagnostics())
    }

    #[test]
    fn overlap_hides_communication_and_stays_race_free() {
        let (eager, eager_diag) = wall_after(false, 3);
        let (overlapped, overlap_diag) = wall_after(true, 3);
        assert_eq!(eager_diag, vec![], "no-overlap schedule must be clean");
        assert_eq!(overlap_diag, vec![], "overlap schedule must be clean");
        assert!(
            overlapped <= eager,
            "overlap must not be slower: {overlapped} vs {eager}"
        );
    }

    #[test]
    fn sharded_step_is_bitwise_invariant_to_replica_count() {
        let shard_batch = 4;
        let shards = 4;
        let ds = SyntheticDataset::cifar_like(5);
        let spec = models::cifar10_quick(shard_batch, 21);
        let train = |devices: &[DeviceProps], overlap: bool| {
            let mut dp = DataParallelTrainer::new(&spec, devices, false, cfg())
                .with_shards(shards)
                .with_overlap(overlap);
            for _ in 0..3 {
                dp.step_sharded(|net, q| fill(net, &ds, q * shard_batch));
            }
            dp.replicas[0].0.state_dict()
        };
        let one = train(&[DeviceProps::p100()], false);
        let two = train(&[DeviceProps::k40c(), DeviceProps::titan_xp()], true);
        let four = train(&vec![DeviceProps::p100(); 4], false);
        assert_eq!(one, two, "1 vs 2 replicas must be bitwise identical");
        assert_eq!(one, four, "1 vs 4 replicas must be bitwise identical");
    }
}
