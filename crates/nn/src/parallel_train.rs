//! Synchronous data-parallel training over several simulated GPUs — the
//! paper's §6 future work ("we will try to provide a distributed
//! implementation of the proposed framework") built on top of the
//! single-GPU GLP4NN optimization, in the BSP style of the parameter-server
//! literature the paper cites.
//!
//! Every replica holds an identical copy of the network on its own
//! simulated device (optionally accelerated by GLP4NN); each step:
//!
//! 1. the global batch is split evenly across replicas,
//! 2. replicas run forward/backward independently (their simulated times
//!    overlap, so the step's simulated time is the slowest replica's),
//! 3. gradients are averaged in fixed replica order (deterministic
//!    all-reduce; its simulated cost models a ring over PCIe),
//! 4. a single SGD update is applied and parameters broadcast back.
//!
//! Averaging sub-batch gradients reproduces full-batch gradients up to
//! floating-point associativity, so convergence behaviour matches
//! single-GPU training (verified in tests).

use crate::exec::ExecCtx;
use crate::net::{Net, NetSpec};
use crate::solver::SolverConfig;
use gpu_sim::DeviceProps;

/// PCIe-style interconnect bandwidth for the simulated ring all-reduce.
const LINK_BYTES_PER_SEC: f64 = 16.0e9;

/// Result of one data-parallel step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Mean loss over replicas.
    pub loss: f32,
    /// Simulated compute time: the slowest replica's iteration (ns).
    pub compute_ns: u64,
    /// Simulated ring all-reduce time (ns).
    pub comm_ns: u64,
}

impl StepReport {
    /// Total simulated step time.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.comm_ns
    }
}

/// A synchronous data-parallel trainer.
pub struct DataParallelTrainer {
    replicas: Vec<(Net, ExecCtx)>,
    cfg: SolverConfig,
    momentum: Vec<Vec<f32>>,
    iter: usize,
}

impl DataParallelTrainer {
    /// Build `devices.len()` replicas of `spec`, one per device. When
    /// `glp4nn` is true each replica's context runs the full framework
    /// (profile-then-parallelize per device, as the paper's multi-GPU
    /// architecture assigns a private analyzer/scheduler per GPU).
    pub fn new(spec: &NetSpec, devices: &[DeviceProps], glp4nn: bool, cfg: SolverConfig) -> Self {
        assert!(!devices.is_empty());
        let replicas = devices
            .iter()
            .map(|d| {
                let ctx = if glp4nn {
                    ExecCtx::glp4nn(d.clone())
                } else {
                    ExecCtx::naive(d.clone())
                };
                (Net::from_spec(spec), ctx)
            })
            .collect();
        DataParallelTrainer {
            replicas,
            cfg,
            momentum: Vec::new(),
            iter: 0,
        }
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Current iteration.
    pub fn iteration(&self) -> usize {
        self.iter
    }

    /// Access replica `r`'s network (e.g. to fill its input sub-batch).
    pub fn replica_net(&mut self, r: usize) -> &mut Net {
        &mut self.replicas[r].0
    }

    /// One synchronous step. Input sub-batches must already be loaded into
    /// every replica's input blobs.
    pub fn step(&mut self) -> StepReport {
        let r_count = self.replicas.len();
        let mut losses = Vec::with_capacity(r_count);
        let mut compute_ns = 0u64;
        for (net, ctx) in &mut self.replicas {
            net.zero_param_diffs();
            ctx.take_timings();
            let loss = net.forward(ctx);
            net.backward(ctx);
            let t: u64 = ctx.take_timings().iter().map(|t| t.elapsed_ns).sum();
            compute_ns = compute_ns.max(t);
            losses.push(loss);
        }

        // Deterministic gradient average into replica 0 (fixed order).
        let param_bytes: usize;
        {
            let inv = 1.0 / r_count as f32;
            // Collect gradients from replicas 1.. first to appease the
            // borrow checker, then fold into replica 0.
            let mut others: Vec<Vec<Vec<f32>>> = Vec::with_capacity(r_count - 1);
            for (net, _) in self.replicas.iter_mut().skip(1) {
                others.push(net.params_mut().iter().map(|p| p.diff().to_vec()).collect());
            }
            let mut master = self.replicas[0].0.params_mut();
            param_bytes = master.iter().map(|p| p.count() * 4).sum();
            for (pi, p) in master.iter_mut().enumerate() {
                let d = p.diff_mut();
                for other in &others {
                    for (dst, src) in d.iter_mut().zip(&other[pi]) {
                        *dst += *src;
                    }
                }
                for v in d.iter_mut() {
                    *v *= inv;
                }
            }
        }

        // SGD update on replica 0 (same rule as `Solver::step`).
        let lr = self.cfg.base_lr; // fixed policy in the data-parallel path
        {
            let mut master = self.replicas[0].0.params_mut();
            if self.momentum.len() != master.len() {
                self.momentum = master.iter().map(|p| vec![0.0; p.count()]).collect();
            }
            for (p, h) in master.iter_mut().zip(&mut self.momentum) {
                let (data, diff) = p.data_and_diff_mut();
                for i in 0..data.len() {
                    let g = diff[i] + self.cfg.weight_decay * data[i];
                    h[i] = self.cfg.momentum * h[i] + lr * g;
                    data[i] -= h[i];
                }
            }
        }

        // Broadcast parameters to the other replicas.
        let master_params: Vec<Vec<f32>> = self.replicas[0]
            .0
            .params_mut()
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        for (net, _) in self.replicas.iter_mut().skip(1) {
            for (p, src) in net.params_mut().iter_mut().zip(&master_params) {
                p.data_mut().copy_from_slice(src);
            }
        }

        // Ring all-reduce cost: 2(R-1)/R × bytes over the link.
        let comm_ns = if r_count > 1 {
            let factor = 2.0 * (r_count as f64 - 1.0) / r_count as f64;
            (factor * param_bytes as f64 / LINK_BYTES_PER_SEC * 1e9) as u64
        } else {
            0
        };

        self.iter += 1;
        StepReport {
            loss: losses.iter().sum::<f32>() / r_count as f32,
            compute_ns,
            comm_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::models;
    use crate::solver::{MomentumKind, Solver};
    use tensor::Blob;

    fn fill(net: &mut Net, ds: &SyntheticDataset, start: usize) {
        let mut data = std::mem::replace(net.blob_mut("data"), Blob::empty());
        let mut label = std::mem::replace(net.blob_mut("label"), Blob::empty());
        ds.fill_batch(start, &mut data, &mut label);
        *net.blob_mut("data") = data;
        *net.blob_mut("label") = label;
    }

    fn cfg() -> SolverConfig {
        SolverConfig {
            base_lr: 0.01,
            momentum: 0.9,
            momentum_kind: MomentumKind::Classical,
            weight_decay: 0.0,
            policy: crate::solver::LrPolicy::Fixed,
        }
    }

    #[test]
    fn two_replicas_match_single_gpu_training() {
        let total_batch = 16;
        let ds = SyntheticDataset::cifar_like(11);

        // Single GPU, full batch.
        let mut single = Solver::new(
            Net::from_spec(&models::cifar10_quick(total_batch, 9)),
            cfg(),
        );
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        let mut single_losses = Vec::new();
        for it in 0..3 {
            fill(&mut single.net, &ds, it * total_batch);
            single_losses.push(single.step(&mut ctx));
        }

        // Two replicas, half batch each, same sample order.
        let spec = models::cifar10_quick(total_batch / 2, 9);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::p100(), DeviceProps::p100()],
            false,
            cfg(),
        );
        let mut dp_losses = Vec::new();
        for it in 0..3 {
            fill(dp.replica_net(0), &ds, it * total_batch);
            fill(dp.replica_net(1), &ds, it * total_batch + total_batch / 2);
            dp_losses.push(dp.step().loss);
        }

        for (s, d) in single_losses.iter().zip(&dp_losses) {
            assert!(
                (s - d).abs() < 2e-3,
                "data-parallel loss must track single-GPU: {s} vs {d}"
            );
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let spec = models::cifar10_quick(8, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::k40c(), DeviceProps::p100()],
            false,
            cfg(),
        );
        for it in 0..2 {
            fill(dp.replica_net(0), &ds, it * 16);
            fill(dp.replica_net(1), &ds, it * 16 + 8);
            dp.step();
        }
        let w0: Vec<f32> = dp.replicas[0].0.params_mut()[0].data().to_vec();
        let w1: Vec<f32> = dp.replicas[1].0.params_mut()[0].data().to_vec();
        assert_eq!(w0, w1, "broadcast must keep replicas identical");
        assert_eq!(dp.iteration(), 2);
    }

    #[test]
    fn comm_cost_scales_with_replicas() {
        let spec = models::cifar10_quick(8, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let one = {
            let mut dp = DataParallelTrainer::new(&spec, &[DeviceProps::p100()], false, cfg());
            fill(dp.replica_net(0), &ds, 0);
            dp.step()
        };
        assert_eq!(one.comm_ns, 0, "single replica needs no all-reduce");
        let two = {
            let mut dp = DataParallelTrainer::new(
                &spec,
                &[DeviceProps::p100(), DeviceProps::p100()],
                false,
                cfg(),
            );
            fill(dp.replica_net(0), &ds, 0);
            fill(dp.replica_net(1), &ds, 8);
            dp.step()
        };
        assert!(two.comm_ns > 0);
        assert!(two.total_ns() > two.compute_ns);
    }

    #[test]
    fn glp4nn_replicas_accelerate_after_profiling() {
        let spec = models::cifar10_quick(16, 3);
        let ds = SyntheticDataset::cifar_like(3);
        let mut dp = DataParallelTrainer::new(
            &spec,
            &[DeviceProps::p100(), DeviceProps::p100()],
            true,
            cfg(),
        );
        fill(dp.replica_net(0), &ds, 0);
        fill(dp.replica_net(1), &ds, 16);
        let first = dp.step(); // profiling iteration on both replicas
        fill(dp.replica_net(0), &ds, 32);
        fill(dp.replica_net(1), &ds, 48);
        let second = dp.step(); // steady state
        assert!(
            second.compute_ns < first.compute_ns,
            "GLP4NN steady state must be faster: {} vs {}",
            second.compute_ns,
            first.compute_ns
        );
    }
}
