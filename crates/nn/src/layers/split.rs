//! Split layer (Caffe's `Split`): duplicates a blob so several consumers
//! can each receive — and back-propagate through — their own copy. The
//! backward pass *accumulates* the top gradients, which is what makes
//! fan-out inside a network well-defined.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::Blob;

/// Copy one bottom into N tops; sum N top-gradients into the bottom.
pub struct SplitLayer {
    name: String,
}

impl SplitLayer {
    /// New split layer (top count is taken from the wiring).
    pub fn new(name: &str) -> Self {
        SplitLayer {
            name: name.to_string(),
        }
    }
}

impl Layer for SplitLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Split"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        assert_eq!(bottom.len(), 1);
        assert!(!top.is_empty(), "split needs at least one top");
        for t in top.iter_mut() {
            t.resize(bottom[0].shape());
        }
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let n = bottom[0].count();
        let writes: Vec<(String, usize)> = (0..top.len()).map(|i| (format!("out{i}"), n)).collect();
        let write_refs: Vec<(&str, usize)> = writes.iter().map(|(s, c)| (s.as_str(), *c)).collect();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("split", n * top.len(), 0.0),
                &self.name,
                &[("in", n)],
                &write_refs,
            ),
        );
        if !ctx.compute {
            return;
        }
        for t in top.iter_mut() {
            t.data_mut().copy_from_slice(bottom[0].data());
        }
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let n = bottom[0].count();
        let reads: Vec<(String, usize)> = (0..top.len()).map(|i| (format!("dout{i}"), n)).collect();
        let read_refs: Vec<(&str, usize)> = reads.iter().map(|(s, c)| (s.as_str(), *c)).collect();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("split_bwd", n * top.len(), 1.0),
                &self.name,
                &read_refs,
                &[("din", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let d = bottom[0].diff_mut();
        d.copy_from_slice(top[0].diff());
        for t in &top[1..] {
            for (dst, src) in d.iter_mut().zip(t.diff()) {
                *dst += *src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    #[test]
    fn forward_copies_to_all_tops() {
        let mut l = SplitLayer::new("split");
        let bottom = Blob::from_data(&[3], vec![1.0, 2.0, 3.0]);
        let mut tops = vec![Blob::empty(), Blob::empty(), Blob::empty()];
        l.reshape(&[&bottom], &mut tops);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut tops);
        for t in &tops {
            assert_eq!(t.data(), bottom.data());
        }
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut l = SplitLayer::new("split");
        let bottom = Blob::from_data(&[2], vec![0.0, 0.0]);
        let mut tops = vec![Blob::empty(), Blob::empty()];
        l.reshape(&[&bottom], &mut tops);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut tops);
        tops[0].diff_mut().copy_from_slice(&[1.0, 2.0]);
        tops[1].diff_mut().copy_from_slice(&[10.0, 20.0]);
        let top_refs: Vec<&Blob> = tops.iter().collect();
        let mut bottoms = vec![bottom];
        l.backward(&mut ctx, &top_refs, &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[11.0, 22.0]);
    }

    #[test]
    fn single_top_passthrough() {
        let mut l = SplitLayer::new("split");
        let bottom = Blob::from_data(&[2], vec![5.0, 6.0]);
        let mut tops = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut tops);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut tops);
        tops[0].diff_mut().copy_from_slice(&[1.0, 1.0]);
        let top_refs: Vec<&Blob> = tops.iter().collect();
        let mut bottoms = vec![bottom];
        l.backward(&mut ctx, &top_refs, &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[1.0, 1.0]);
    }
}
