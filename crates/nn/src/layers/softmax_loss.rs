//! Softmax + multinomial-logistic-loss layer (Caffe's `SoftmaxWithLoss`).
//!
//! Bottom 0 is the score matrix `[n × classes]`, bottom 1 the integer
//! labels `[n]` (stored as f32). Top is a single scalar loss.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::math::{cross_entropy, softmax_rows};
use tensor::Blob;

/// Softmax followed by cross-entropy against integer labels.
pub struct SoftmaxLossLayer {
    name: String,
    /// Cached probabilities from the forward pass.
    probs: Vec<f32>,
    classes: usize,
}

impl SoftmaxLossLayer {
    /// New loss layer.
    pub fn new(name: &str) -> Self {
        SoftmaxLossLayer {
            name: name.to_string(),
            probs: Vec::new(),
            classes: 0,
        }
    }

    /// Probabilities computed by the last forward (tests/diagnostics).
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }
}

impl Layer for SoftmaxLossLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "SoftmaxWithLoss"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        assert_eq!(bottom.len(), 2, "needs scores and labels");
        self.classes = bottom[0].count() / bottom[0].num();
        top[0].resize(&[1]);
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let scores = bottom[0];
        let n = scores.num();
        let sc = scores.count();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("softmax_loss", sc, 4.0),
                &self.name,
                &[("scores", sc), ("labels", n)],
                &[("probs", sc), ("loss", 1)],
            ),
        );
        if !ctx.compute {
            return;
        }
        self.probs.clear();
        self.probs.extend_from_slice(scores.data());
        softmax_rows(&mut self.probs, n, self.classes);
        let labels: Vec<usize> = bottom[1].data().iter().map(|&v| v as usize).collect();
        top[0].data_mut()[0] = cross_entropy(&self.probs, &labels, n, self.classes);
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let sc = bottom[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("softmax_loss_bwd", sc, 1.0),
                &self.name,
                &[("probs", sc), ("labels", bottom[0].num()), ("dloss", 1)],
                &[("dscores", sc)],
            ),
        );
        if !ctx.compute {
            return;
        }
        // dL/dscore = (prob - onehot(label)) / n, scaled by top diff.
        let scale = top[0].diff()[0].max(f32::MIN_POSITIVE); // loss weight (1.0 by default)
        let n = bottom[0].num();
        let labels: Vec<usize> = bottom[1].data().iter().map(|&v| v as usize).collect();
        let d = bottom[0].diff_mut();
        d.copy_from_slice(&self.probs);
        for (r, &label) in labels.iter().enumerate() {
            d[r * self.classes + label] -= 1.0;
        }
        let inv = scale / n as f32;
        d.iter_mut().for_each(|v| *v *= inv);
    }

    fn loss_weight(&self) -> f32 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    fn setup(
        scores: Vec<f32>,
        labels: Vec<f32>,
        n: usize,
        c: usize,
    ) -> (SoftmaxLossLayer, Blob, Blob, Vec<Blob>) {
        let l = SoftmaxLossLayer::new("loss");
        let s = Blob::from_data(&[n, c], scores);
        let lb = Blob::from_data(&[n], labels);
        (l, s, lb, vec![Blob::empty()])
    }

    #[test]
    fn uniform_scores_give_log_c_loss() {
        let (mut l, s, lb, mut top) = setup(vec![0.0; 8], vec![1.0, 0.0], 2, 4);
        l.reshape(&[&s, &lb], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&s, &lb], &mut top);
        assert!((top[0].data()[0] - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_scores_give_small_loss() {
        let (mut l, s, lb, mut top) = setup(vec![10.0, -10.0, -10.0, 10.0], vec![0.0, 1.0], 2, 2);
        l.reshape(&[&s, &lb], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&s, &lb], &mut top);
        assert!(top[0].data()[0] < 1e-4);
    }

    #[test]
    fn gradient_is_prob_minus_onehot_over_n() {
        let (mut l, s, lb, mut top) = setup(vec![0.0, 0.0], vec![1.0], 1, 2);
        l.reshape(&[&s, &lb], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&s, &lb], &mut top);
        top[0].diff_mut()[0] = 1.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![s, lb];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        let d = bottoms[0].diff();
        assert!((d[0] - 0.5).abs() < 1e-5);
        assert!((d[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_numeric() {
        let (mut l, mut s, lb, mut top) =
            setup(vec![0.3, -0.2, 0.7, 0.1, 0.5, -0.4], vec![2.0, 0.0], 2, 3);
        l.reshape(&[&s, &lb], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&s, &lb], &mut top);
        top[0].diff_mut()[0] = 1.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![std::mem::replace(&mut s, Blob::empty()), lb];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        let analytic = bottoms[0].diff().to_vec();

        let eps = 1e-3f32;
        // Perturbs element `i` in place, then compares against `analytic[i]`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..6 {
            let orig = bottoms[0].data()[i];
            let eval = |l: &mut SoftmaxLossLayer, c: &mut ExecCtx, s: &Blob, lb: &Blob| -> f32 {
                let mut t = vec![Blob::empty()];
                l.reshape(&[s, lb], &mut t);
                l.forward(c, &[s, lb], &mut t);
                t[0].data()[0]
            };
            bottoms[0].data_mut()[i] = orig + eps;
            let (b0, b1) = (bottoms[0].clone(), bottoms[1].clone());
            let p = eval(&mut l, &mut c, &b0, &b1);
            bottoms[0].data_mut()[i] = orig - eps;
            let (b0, b1) = (bottoms[0].clone(), bottoms[1].clone());
            let m = eval(&mut l, &mut c, &b0, &b1);
            bottoms[0].data_mut()[i] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-2,
                "d[{i}]: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn is_a_loss_layer() {
        assert_eq!(SoftmaxLossLayer::new("l").loss_weight(), 1.0);
    }
}
