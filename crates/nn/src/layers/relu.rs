//! ReLU activation.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::math::{relu, relu_backward};
use tensor::Blob;

/// Rectified linear unit, `top = max(bottom, 0)`.
pub struct ReluLayer {
    name: String,
    negative_slope: f32,
}

impl ReluLayer {
    /// Standard ReLU.
    pub fn new(name: &str) -> Self {
        ReluLayer {
            name: name.to_string(),
            negative_slope: 0.0,
        }
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky(name: &str, negative_slope: f32) -> Self {
        ReluLayer {
            name: name.to_string(),
            negative_slope,
        }
    }
}

impl Layer for ReluLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "ReLU"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        top[0].resize(bottom[0].shape());
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let n = bottom[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("relu", n, 1.0),
                &self.name,
                &[("in", n)],
                &[("out", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        top[0].data_mut().copy_from_slice(bottom[0].data());
        relu(top[0].data_mut(), self.negative_slope);
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let n = top[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("relu_bwd", n, 1.0),
                &self.name,
                &[("in", n), ("dout", n)],
                &[("din", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let b = &mut bottom[0];
        let data: Vec<f32> = b.data().to_vec();
        relu_backward(&data, top[0].diff(), self.negative_slope, b.diff_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    #[test]
    fn forward_clamps_negatives() {
        let mut l = ReluLayer::new("relu1");
        let bottom = Blob::from_data(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut top);
        assert_eq!(top[0].data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_by_forward_input() {
        let mut l = ReluLayer::new("relu1");
        let bottom = Blob::from_data(&[3], vec![-1.0, 2.0, 3.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut top);
        top[0].diff_mut().copy_from_slice(&[10.0, 10.0, 10.0]);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut ctx, &[&tops[0]], &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn leaky_variant() {
        let mut l = ReluLayer::leaky("lrelu", 0.5);
        let bottom = Blob::from_data(&[2], vec![-2.0, 2.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut ctx = ExecCtx::naive(DeviceProps::p100());
        l.forward(&mut ctx, &[&bottom], &mut top);
        assert_eq!(top[0].data(), &[-1.0, 2.0]);
    }
}
