//! Local response normalization (across channels) — used by CaffeNet and
//! GoogLeNet.
//!
//! `top = bottom / (k + α/size · Σ_{c' in window} bottom_{c'}²)^β`.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::Blob;

/// Across-channel LRN with Krizhevsky's defaults.
pub struct LrnLayer {
    name: String,
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    /// `scale = k + α/size · window-sum of squares`, cached for backward.
    scale: Vec<f32>,
}

impl LrnLayer {
    /// LRN with AlexNet defaults (`size=5, α=1e-4, β=0.75, k=1`).
    pub fn new(name: &str) -> Self {
        Self::with_params(name, 5, 1e-4, 0.75, 1.0)
    }

    /// Fully parameterized LRN.
    pub fn with_params(name: &str, size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        assert!(size % 2 == 1, "LRN size must be odd");
        LrnLayer {
            name: name.to_string(),
            size,
            alpha,
            beta,
            k,
            scale: Vec::new(),
        }
    }
}

impl Layer for LrnLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "LRN"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        top[0].resize(bottom[0].shape());
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        let n = b.count();
        ctx.dispatch_batch(
            &self.name,
            Phase::Forward,
            vec![
                kernels::declare_io(
                    kernels::elemwise_kernel("lrn_fill_scale", n, self.size as f64),
                    &self.name,
                    &[("in", n)],
                    &[("scale", n)],
                ),
                kernels::declare_io(
                    kernels::elemwise_kernel("lrn_output", n, 2.0),
                    &self.name,
                    &[("in", n), ("scale", n)],
                    &[("out", n)],
                ),
            ],
        );
        if !ctx.compute {
            return;
        }
        let (n, c, h, w) = (b.num(), b.channels(), b.height(), b.width());
        let half = self.size / 2;
        let data = b.data();
        self.scale.resize(data.len(), 0.0);
        let spatial = h * w;
        for nn in 0..n {
            for cc in 0..c {
                let lo = cc.saturating_sub(half);
                let hi = (cc + half + 1).min(c);
                for s in 0..spatial {
                    let mut acc = 0.0f32;
                    for c2 in lo..hi {
                        let v = data[(nn * c + c2) * spatial + s];
                        acc += v * v;
                    }
                    let idx = (nn * c + cc) * spatial + s;
                    self.scale[idx] = self.k + self.alpha / self.size as f32 * acc;
                }
            }
        }
        let t = top[0].data_mut();
        for i in 0..data.len() {
            t[i] = data[i] * self.scale[i].powf(-self.beta);
        }
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let t = top[0];
        let n = t.count();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("lrn_bwd", n, self.size as f64 * 2.0),
                &self.name,
                &[("in", n), ("out", n), ("scale", n), ("dout", n)],
                &[("din", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        // dBottom_i = dTop_i · scale_i^{-β}
        //           - 2αβ/size · bottom_i · Σ_{j: i in window(j)} dTop_j · top_j / scale_j
        let b = &mut bottom[0];
        let (n, c, h, w) = (b.num(), b.channels(), b.height(), b.width());
        let spatial = h * w;
        let half = self.size / 2;
        let data: Vec<f32> = b.data().to_vec();
        let bd = b.diff_mut();
        let factor = 2.0 * self.alpha * self.beta / self.size as f32;
        for nn in 0..n {
            for cc in 0..c {
                for s in 0..spatial {
                    let idx = (nn * c + cc) * spatial + s;
                    let mut grad = t.diff()[idx] * self.scale[idx].powf(-self.beta);
                    // Windows centered at c2 that contain cc.
                    let lo = cc.saturating_sub(half);
                    let hi = (cc + half + 1).min(c);
                    let mut cross = 0.0f32;
                    for c2 in lo..hi {
                        let j = (nn * c + c2) * spatial + s;
                        cross += t.diff()[j] * t.data()[j] / self.scale[j];
                    }
                    grad -= factor * data[idx] * cross;
                    bd[idx] = grad;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn normalizes_by_window_energy() {
        let mut l = LrnLayer::with_params("lrn", 3, 1.0, 1.0, 1.0);
        // 3 channels, single pixel: [1, 2, 2].
        let bottom = Blob::from_data(&[1, 3, 1, 1], vec![1.0, 2.0, 2.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        // Channel 0 window {0,1}: scale = 1 + (1/3)(1+4) = 8/3; out = 1/(8/3) = 0.375.
        assert!((top[0].data()[0] - 0.375).abs() < 1e-5);
        // Channel 1 window {0,1,2}: scale = 1 + (1/3)(1+4+4) = 4; out = 0.5.
        assert!((top[0].data()[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn identity_when_alpha_zero() {
        let mut l = LrnLayer::with_params("lrn", 5, 0.0, 0.75, 1.0);
        let bottom = Blob::from_data(&[1, 2, 1, 2], vec![1.0, -2.0, 3.0, 0.5]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(top[0].data(), bottom.data());
    }

    #[test]
    fn gradient_check_numeric() {
        let mut l = LrnLayer::with_params("lrn", 3, 0.5, 0.75, 2.0);
        let mut bottom = Blob::from_data(
            &[1, 4, 1, 2],
            vec![0.5, -0.3, 0.8, 0.2, -0.6, 0.4, 0.1, 0.9],
        );
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        top[0].diff_mut().iter_mut().for_each(|v| *v = 1.0);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![std::mem::replace(&mut bottom, Blob::empty())];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        let analytic = bottoms[0].diff().to_vec();

        let eps = 1e-3f32;
        // Perturbs element `i` in place, then compares against `analytic[i]`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..8 {
            let orig = bottoms[0].data()[i];
            let eval = |l: &mut LrnLayer, c: &mut ExecCtx, b: &Blob| -> f32 {
                let mut t = vec![Blob::empty()];
                l.reshape(&[b], &mut t);
                l.forward(c, &[b], &mut t);
                t[0].data().iter().sum()
            };
            bottoms[0].data_mut()[i] = orig + eps;
            let b = bottoms[0].clone();
            let p = eval(&mut l, &mut c, &b);
            bottoms[0].data_mut()[i] = orig - eps;
            let b = bottoms[0].clone();
            let m = eval(&mut l, &mut c, &b);
            bottoms[0].data_mut()[i] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "d[{i}]: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        LrnLayer::with_params("lrn", 4, 1.0, 1.0, 1.0);
    }
}
