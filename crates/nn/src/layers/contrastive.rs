//! Contrastive loss (Hadsell-Chopra-LeCun) — the Siamese network's loss.
//!
//! Bottoms: two feature blobs `[n × d]` and a similarity label `[n]`
//! (1 = similar pair, 0 = dissimilar). Loss per pair:
//! `y · d² + (1-y) · max(margin − d, 0)²`, averaged over the batch and
//! halved (Caffe convention).

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::Blob;

/// Contrastive loss over paired embeddings.
pub struct ContrastiveLossLayer {
    name: String,
    margin: f32,
    /// Cached pairwise difference vectors (`a − b`), `[n × d]`.
    diff: Vec<f32>,
    /// Cached pairwise Euclidean distances, `[n]`.
    dist: Vec<f32>,
}

impl ContrastiveLossLayer {
    /// New contrastive loss with the given margin (Caffe default 1.0).
    pub fn new(name: &str, margin: f32) -> Self {
        ContrastiveLossLayer {
            name: name.to_string(),
            margin,
            diff: Vec::new(),
            dist: Vec::new(),
        }
    }
}

impl Layer for ContrastiveLossLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "ContrastiveLoss"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        assert_eq!(bottom.len(), 3, "needs feat_a, feat_b, similarity");
        assert_eq!(bottom[0].count(), bottom[1].count());
        top[0].resize(&[1]);
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let fc = bottom[0].count();
        let nb = bottom[0].num();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("contrastive", fc, 3.0),
                &self.name,
                &[("feat_a", fc), ("feat_b", fc), ("sim", nb)],
                &[("diff", fc), ("dist", nb), ("loss", 1)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let (a, b, y) = (bottom[0], bottom[1], bottom[2]);
        let n = a.num();
        let d = a.count() / n;
        self.diff.clear();
        self.diff
            .extend(a.data().iter().zip(b.data()).map(|(x, y)| x - y));
        self.dist.clear();
        let mut loss = 0.0f32;
        for i in 0..n {
            let row = &self.diff[i * d..(i + 1) * d];
            let dist2: f32 = row.iter().map(|v| v * v).sum();
            let dist = dist2.sqrt();
            self.dist.push(dist);
            let sim = y.data()[i];
            if sim > 0.5 {
                loss += dist2;
            } else {
                let m = (self.margin - dist).max(0.0);
                loss += m * m;
            }
        }
        top[0].data_mut()[0] = loss / (2.0 * n as f32);
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let fc = bottom[0].count();
        let nb = bottom[0].num();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("contrastive_bwd", fc, 2.0),
                &self.name,
                &[("diff", fc), ("dist", nb), ("sim", nb), ("dloss", 1)],
                &[("dfeat_a", fc), ("dfeat_b", fc)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let scale = top[0].diff()[0].max(f32::MIN_POSITIVE);
        let n = bottom[0].num();
        let d = bottom[0].count() / n;
        let labels: Vec<f32> = bottom[2].data().to_vec();
        let alpha = scale / n as f32;
        for (i, &sim) in labels.iter().enumerate().take(n) {
            let row = &self.diff[i * d..(i + 1) * d];
            let dist = self.dist[i];
            // d(loss_i)/d(a) rows.
            let mut grad_row = vec![0.0f32; d];
            if sim > 0.5 {
                for (g, &df) in grad_row.iter_mut().zip(row) {
                    *g = alpha * df;
                }
            } else if dist > 0.0 && self.margin > dist {
                let coeff = -alpha * (self.margin - dist) / dist.max(1e-9);
                for (g, &df) in grad_row.iter_mut().zip(row) {
                    *g = coeff * df;
                }
            }
            bottom[0].diff_mut()[i * d..(i + 1) * d].copy_from_slice(&grad_row);
            for (g, slot) in grad_row
                .iter()
                .zip(&mut bottom[1].diff_mut()[i * d..(i + 1) * d])
            {
                *slot = -g;
            }
        }
    }

    fn loss_weight(&self) -> f32 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn similar_pairs_penalize_distance() {
        let mut l = ContrastiveLossLayer::new("loss", 1.0);
        let a = Blob::from_data(&[1, 2], vec![1.0, 0.0]);
        let b = Blob::from_data(&[1, 2], vec![0.0, 0.0]);
        let y = Blob::from_data(&[1], vec![1.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b, &y], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b, &y], &mut top);
        // dist² = 1, loss = 1/2.
        assert!((top[0].data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dissimilar_far_pairs_cost_nothing() {
        let mut l = ContrastiveLossLayer::new("loss", 1.0);
        let a = Blob::from_data(&[1, 2], vec![5.0, 0.0]);
        let b = Blob::from_data(&[1, 2], vec![0.0, 0.0]);
        let y = Blob::from_data(&[1], vec![0.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b, &y], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b, &y], &mut top);
        assert_eq!(top[0].data()[0], 0.0);
    }

    #[test]
    fn dissimilar_close_pairs_are_pushed_apart() {
        let mut l = ContrastiveLossLayer::new("loss", 1.0);
        let a = Blob::from_data(&[1, 1], vec![0.2]);
        let b = Blob::from_data(&[1, 1], vec![0.0]);
        let y = Blob::from_data(&[1], vec![0.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b, &y], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b, &y], &mut top);
        // dist = 0.2, margin term = 0.8² / 2 = 0.32.
        assert!((top[0].data()[0] - 0.32).abs() < 1e-5);
        top[0].diff_mut()[0] = 1.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![a, b, y];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        // Gradient pushes a away from b (negative direction since a > b).
        assert!(bottoms[0].diff()[0] < 0.0);
        assert!(bottoms[1].diff()[0] > 0.0);
    }

    #[test]
    fn gradient_check_numeric() {
        let mut l = ContrastiveLossLayer::new("loss", 1.5);
        let mut a = Blob::from_data(&[2, 3], vec![0.5, -0.2, 0.1, 0.9, 0.3, -0.4]);
        let b = Blob::from_data(&[2, 3], vec![0.1, 0.2, -0.3, 0.8, 0.2, -0.1]);
        let y = Blob::from_data(&[2], vec![1.0, 0.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b, &y], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b, &y], &mut top);
        top[0].diff_mut()[0] = 1.0;
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![std::mem::replace(&mut a, Blob::empty()), b, y];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        let analytic = bottoms[0].diff().to_vec();

        let eps = 1e-3f32;
        // Perturbs element `i` in place, then compares against `analytic[i]`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..6 {
            let eval = |l: &mut ContrastiveLossLayer,
                        c: &mut ExecCtx,
                        a: &Blob,
                        b: &Blob,
                        y: &Blob|
             -> f32 {
                let mut t = vec![Blob::empty()];
                l.reshape(&[a, b, y], &mut t);
                l.forward(c, &[a, b, y], &mut t);
                t[0].data()[0]
            };
            let orig = bottoms[0].data()[i];
            bottoms[0].data_mut()[i] = orig + eps;
            let (ba, bb, by) = (bottoms[0].clone(), bottoms[1].clone(), bottoms[2].clone());
            let p = eval(&mut l, &mut c, &ba, &bb, &by);
            bottoms[0].data_mut()[i] = orig - eps;
            let (ba, bb, by) = (bottoms[0].clone(), bottoms[1].clone(), bottoms[2].clone());
            let m = eval(&mut l, &mut c, &ba, &bb, &by);
            bottoms[0].data_mut()[i] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-2,
                "d[{i}]: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }
}
