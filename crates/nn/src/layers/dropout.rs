//! Dropout (used by CaffeNet's fc6/fc7 and GoogLeNet).
//!
//! The mask is derived deterministically from `(seed, iteration)`, so the
//! naive and GLP4NN training runs see identical masks — a requirement for
//! the bitwise convergence-invariance demonstration.

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Blob;

/// Inverted dropout: surviving activations are scaled by `1/(1-ratio)` at
/// train time so inference needs no rescaling.
pub struct DropoutLayer {
    name: String,
    ratio: f32,
    seed: u64,
    iteration: u64,
    mask: Vec<bool>,
    /// When false (inference), dropout is the identity.
    pub train: bool,
}

impl DropoutLayer {
    /// New dropout layer dropping `ratio` of activations.
    pub fn new(name: &str, ratio: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&ratio), "ratio must be in [0, 1)");
        DropoutLayer {
            name: name.to_string(),
            ratio,
            seed,
            iteration: 0,
            mask: Vec::new(),
            train: true,
        }
    }
}

impl Layer for DropoutLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Dropout"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        top[0].resize(bottom[0].shape());
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let n = bottom[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("dropout", n, 2.0),
                &self.name,
                &[("in", n)],
                &[("out", n), ("mask", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let b = bottom[0];
        if !self.train || self.ratio == 0.0 {
            top[0].data_mut().copy_from_slice(b.data());
            self.mask.clear();
            self.iteration += 1;
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.iteration.wrapping_mul(0x9E3779B9));
        self.iteration += 1;
        let scale = 1.0 / (1.0 - self.ratio);
        self.mask.clear();
        self.mask
            .extend((0..b.count()).map(|_| rng.gen::<f32>() >= self.ratio));
        let t = top[0].data_mut();
        for (i, v) in t.iter_mut().enumerate().take(b.count()) {
            *v = if self.mask[i] {
                b.data()[i] * scale
            } else {
                0.0
            };
        }
    }

    fn set_train(&mut self, train: bool) {
        self.train = train;
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let n = top[0].count();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("dropout_bwd", n, 1.0),
                &self.name,
                &[("dout", n), ("mask", n)],
                &[("din", n)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let d = bottom[0].diff_mut();
        if self.mask.is_empty() {
            d.copy_from_slice(top[0].diff());
            return;
        }
        let scale = 1.0 / (1.0 - self.ratio);
        for (i, v) in d.iter_mut().enumerate() {
            *v = if self.mask[i] {
                top[0].diff()[i] * scale
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn drops_roughly_ratio_fraction() {
        let mut l = DropoutLayer::new("drop", 0.5, 7);
        let bottom = Blob::from_data(&[10_000], vec![1.0; 10_000]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        let zeros = top[0].data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
        // Survivors scaled by 2.
        assert!(top[0]
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn identity_in_inference_mode() {
        let mut l = DropoutLayer::new("drop", 0.5, 7);
        l.train = false;
        let bottom = Blob::from_data(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        assert_eq!(top[0].data(), bottom.data());
    }

    #[test]
    fn mask_is_deterministic_per_iteration() {
        let run = |iters: usize| -> Vec<f32> {
            let mut l = DropoutLayer::new("drop", 0.3, 42);
            let bottom = Blob::from_data(&[64], vec![1.0; 64]);
            let mut top = vec![Blob::empty()];
            l.reshape(&[&bottom], &mut top);
            let mut c = ctx();
            for _ in 0..iters {
                l.forward(&mut c, &[&bottom], &mut top);
            }
            top[0].data().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(1), run(2), "mask changes across iterations");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut l = DropoutLayer::new("drop", 0.5, 3);
        let bottom = Blob::from_data(&[128], vec![1.0; 128]);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&bottom], &mut top);
        top[0].diff_mut().iter_mut().for_each(|v| *v = 1.0);
        let fwd = top[0].data().to_vec();
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        for (i, f) in fwd.iter().enumerate().take(128) {
            assert_eq!(
                *f == 0.0,
                bottoms[0].diff()[i] == 0.0,
                "mask mismatch at {i}"
            );
        }
    }
}
