//! The convolution layer — the layer GLP4NN optimizes in the paper.
//!
//! Forward (Algorithm 1) and backward (Algorithm 2) both consist of a loop
//! over the batch samples (line 2), each iteration launching the dependent
//! kernel chain `im2col → sgemm → gemmk` (forward) or
//! `im2col → sgemm(dW) → sgemm(dX) → col2im` (backward). These per-sample
//! chains are mutually independent — the *batch-level parallelism* the
//! framework exploits — so they are handed to [`ExecCtx::dispatch_groups`]
//! as one group per sample.
//!
//! The CPU math is the same code in every dispatch mode, and its reduction
//! orders are fixed, so naive and GLP4NN runs produce bitwise-identical
//! outputs and gradients (convergence invariance, paper §3.3.1).

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use crate::layers::kernels::{full_range, sample_range, sym_full, sym_sample};
use glp4nn::Phase;
use gpu_sim::BufferId;
use sanitizer::{SymGroupSpec, SymKernel};
use tensor::gemm::{sgemm, Transpose};
use tensor::im2col::{col2im, im2col, ConvGeometry};
use tensor::pool::num_workers;
use tensor::{Blob, Filler};

/// Configuration of a convolution layer (one row of the paper's Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvConfig {
    /// Output feature maps (`C_o`).
    pub num_output: usize,
    /// Square filter edge (`F_h = F_w`).
    pub kernel: usize,
    /// Stride (`S`).
    pub stride: usize,
    /// Padding (`P`).
    pub pad: usize,
}

/// 2-D convolution over NCHW blobs via im2col + GEMM.
pub struct ConvLayer {
    name: String,
    cfg: ConvConfig,
    geom: ConvGeometry,
    weight: Blob,
    bias: Blob,
    // Cached input geometry (set by reshape).
    ci: usize,
    ih: usize,
    iw: usize,
    oh: usize,
    ow: usize,
    initialized: bool,
    seed: u64,
}

impl ConvLayer {
    /// New convolution layer; weights are Xavier-filled deterministically
    /// from `seed` on first reshape.
    pub fn new(name: &str, cfg: ConvConfig, seed: u64) -> Self {
        ConvLayer {
            name: name.to_string(),
            geom: ConvGeometry::square(cfg.kernel, cfg.stride, cfg.pad),
            cfg,
            weight: Blob::empty(),
            bias: Blob::empty(),
            ci: 0,
            ih: 0,
            iw: 0,
            oh: 0,
            ow: 0,
            initialized: false,
            seed,
        }
    }

    /// The layer's configuration.
    pub fn config(&self) -> ConvConfig {
        self.cfg
    }

    /// `K = C_i · F · F`, the GEMM reduction depth.
    fn k_dim(&self) -> usize {
        self.ci * self.cfg.kernel * self.cfg.kernel
    }

    /// Spatial output size `OH · OW`.
    fn ohw(&self) -> usize {
        self.oh * self.ow
    }

    /// Direct access to the weight blob (tests).
    pub fn weight(&self) -> &Blob {
        &self.weight
    }

    /// Whether this is a 1×1/stride-1/no-pad convolution, for which
    /// `im2col` is the identity and is skipped entirely (Caffe's own fast
    /// path; GoogLeNet's inception modules are full of these).
    fn is_1x1(&self) -> bool {
        self.cfg.kernel == 1 && self.cfg.stride == 1 && self.cfg.pad == 0
    }

    /// Buffer id for one of this layer's named buffers.
    fn buf(&self, which: &str) -> BufferId {
        BufferId::from_label(&format!("{}/{which}", self.name))
    }

    /// Per-sample forward kernel group. Each kernel declares the byte
    /// ranges it touches, so the schedule sanitizer can prove chunks of
    /// distinct samples write disjoint regions.
    fn forward_group(&self, tag: u64) -> Vec<gpu_sim::KernelDesc> {
        let i = tag;
        let in_r = sample_range(i, self.ci * self.ih * self.iw);
        let col_r = sample_range(i, self.k_dim() * self.ohw());
        let out_r = sample_range(i, self.cfg.num_output * self.ohw());
        let mut g = Vec::with_capacity(3);
        if !self.is_1x1() {
            g.push(
                kernels::im2col_kernel(self.ci, self.oh, self.ow, self.cfg.kernel, tag)
                    .reads(self.buf("in"), in_r)
                    .writes(self.buf("col"), col_r),
            );
        }
        // For 1×1/s1/p0 the GEMM reads the input image directly.
        let (gemm_src, gemm_src_r) = if self.is_1x1() {
            (self.buf("in"), in_r)
        } else {
            (self.buf("col"), col_r)
        };
        g.push(
            kernels::conv_gemm_kernel(self.cfg.num_output, self.k_dim(), self.ohw(), tag)
                .reads(
                    self.buf("w"),
                    full_range(self.cfg.num_output * self.k_dim()),
                )
                .reads(gemm_src, gemm_src_r)
                .writes(self.buf("out"), out_r),
        );
        g.push(
            kernels::bias_kernel(self.cfg.num_output, self.ohw(), tag)
                .reads(self.buf("bias"), full_range(self.cfg.num_output))
                .reads(self.buf("out"), out_r)
                .writes(self.buf("out"), out_r),
        );
        g
    }

    /// Per-sample backward kernel group, with declared accesses. The
    /// weight gradient is accumulated into per-chunk partial buffers
    /// (`dw.part`, one slot per sample chunk) and reduced on the host in
    /// fixed order, so concurrent chunks never write the same region.
    fn backward_group(&self, tag: u64) -> Vec<gpu_sim::KernelDesc> {
        let i = tag;
        let co = self.cfg.num_output;
        let k = self.k_dim();
        let in_r = sample_range(i, self.ci * self.ih * self.iw);
        let col_r = sample_range(i, k * self.ohw());
        let dout_r = sample_range(i, co * self.ohw());
        let dw_part_r = sample_range(i, co * k);
        let mut g = Vec::with_capacity(4);
        if !self.is_1x1() {
            g.push(
                kernels::im2col_kernel(self.ci, self.oh, self.ow, self.cfg.kernel, tag)
                    .reads(self.buf("in"), in_r)
                    .writes(self.buf("col"), col_r),
            );
        }
        let (col_src, col_src_r) = if self.is_1x1() {
            (self.buf("in"), in_r)
        } else {
            (self.buf("col"), col_r)
        };
        // dW_partial = dTop · col^T
        g.push(
            kernels::conv_gemm_kernel(co, self.ohw(), k, tag)
                .reads(self.buf("dout"), dout_r)
                .reads(col_src, col_src_r)
                .writes(self.buf("dw.part"), dw_part_r),
        );
        // dcol = W^T · dTop; for 1×1 the column gradient *is* dIn.
        let (dcol_dst, dcol_dst_r) = if self.is_1x1() {
            (self.buf("din"), in_r)
        } else {
            (self.buf("dcol"), col_r)
        };
        g.push(
            kernels::conv_gemm_kernel(k, co, self.ohw(), tag)
                .reads(self.buf("w"), full_range(co * k))
                .reads(self.buf("dout"), dout_r)
                .writes(dcol_dst, dcol_dst_r),
        );
        if !self.is_1x1() {
            g.push(
                kernels::col2im_kernel(self.ci, self.ih, self.iw, self.cfg.kernel, tag)
                    .reads(self.buf("dcol"), col_r)
                    .writes(self.buf("din"), in_r),
            );
        }
        g
    }

    /// Symbolic (chunk-parametric) form of [`Self::forward_group`]: the
    /// same kernel chain with every per-sample range written as an affine
    /// function of the chunk index. The sanitizer proves disjointness of
    /// this spec once per dispatch site and only conformance-checks each
    /// captured instance against it.
    fn symbolic_forward(&self) -> SymGroupSpec {
        let in_r = sym_sample(self.ci * self.ih * self.iw);
        let col_r = sym_sample(self.k_dim() * self.ohw());
        let out_r = sym_sample(self.cfg.num_output * self.ohw());
        let mut spec = SymGroupSpec::new();
        if !self.is_1x1() {
            spec = spec.kernel(
                SymKernel::new("im2col")
                    .reads(self.buf("in"), in_r)
                    .writes(self.buf("col"), col_r),
            );
        }
        let (gemm_src, gemm_src_r) = if self.is_1x1() {
            (self.buf("in"), in_r)
        } else {
            (self.buf("col"), col_r)
        };
        spec.kernel(
            SymKernel::new("sgemm")
                .reads(self.buf("w"), sym_full(self.cfg.num_output * self.k_dim()))
                .reads(gemm_src, gemm_src_r)
                .writes(self.buf("out"), out_r),
        )
        .kernel(
            SymKernel::new("gemmk")
                .reads(self.buf("bias"), sym_full(self.cfg.num_output))
                .reads(self.buf("out"), out_r)
                .writes(self.buf("out"), out_r),
        )
    }

    /// Symbolic form of [`Self::backward_group`].
    fn symbolic_backward(&self) -> SymGroupSpec {
        let co = self.cfg.num_output;
        let k = self.k_dim();
        let in_r = sym_sample(self.ci * self.ih * self.iw);
        let col_r = sym_sample(k * self.ohw());
        let dout_r = sym_sample(co * self.ohw());
        let mut spec = SymGroupSpec::new();
        if !self.is_1x1() {
            spec = spec.kernel(
                SymKernel::new("im2col")
                    .reads(self.buf("in"), in_r)
                    .writes(self.buf("col"), col_r),
            );
        }
        let (col_src, col_src_r) = if self.is_1x1() {
            (self.buf("in"), in_r)
        } else {
            (self.buf("col"), col_r)
        };
        spec = spec.kernel(
            SymKernel::new("sgemm")
                .reads(self.buf("dout"), dout_r)
                .reads(col_src, col_src_r)
                .writes(self.buf("dw.part"), sym_sample(co * k)),
        );
        let (dcol_dst, dcol_dst_r) = if self.is_1x1() {
            (self.buf("din"), in_r)
        } else {
            (self.buf("dcol"), col_r)
        };
        spec = spec.kernel(
            SymKernel::new("sgemm")
                .reads(self.buf("w"), sym_full(co * k))
                .reads(self.buf("dout"), dout_r)
                .writes(dcol_dst, dcol_dst_r),
        );
        if !self.is_1x1() {
            spec = spec.kernel(
                SymKernel::new("col2im")
                    .reads(self.buf("dcol"), col_r)
                    .writes(self.buf("din"), in_r),
            );
        }
        spec
    }
}

impl Layer for ConvLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Convolution"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        self.ci = b.channels();
        self.ih = b.height();
        self.iw = b.width();
        self.oh = self.geom.out_h(self.ih);
        self.ow = self.geom.out_w(self.iw);
        top[0].resize(&[b.num(), self.cfg.num_output, self.oh, self.ow]);
        if !self.initialized {
            let k = self.k_dim();
            self.weight.resize(&[self.cfg.num_output, k]);
            self.bias.resize(&[self.cfg.num_output]);
            Filler::Xavier.fill(self.weight.data_mut(), k, self.seed);
            Filler::Constant(0.0).fill(self.bias.data_mut(), 1, self.seed + 1);
            self.initialized = true;
        }
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let b = bottom[0];
        let n = b.num();

        // Simulated-GPU dispatch: one dependent chain per sample. Lazy:
        // once the site's execution plan is cached, the groups are never
        // rebuilt — the frozen plan replays directly.
        ctx.dispatch_groups_sym(
            &self.name,
            Phase::Forward,
            n,
            || Some(self.symbolic_forward()),
            || (0..n as u64).map(|i| self.forward_group(i)).collect(),
        );

        if !ctx.compute {
            return;
        }
        // Real math, parallel over samples (disjoint output rows).
        let co = self.cfg.num_output;
        let k = self.k_dim();
        let ohw = self.ohw();
        let (ci, ih, iw) = (self.ci, self.ih, self.iw);
        let geom = self.geom;
        let in_stride = ci * ih * iw;
        let out_stride = co * ohw;
        let weight = self.weight.data();
        let bias = self.bias.data();
        let bdata = b.data();
        let one_by_one = self.is_1x1();
        tensor::pool::parallel_for_rows(top[0].data_mut(), out_stride, |n0, chunk| {
            let mut col = vec![0.0f32; if one_by_one { 0 } else { k * ohw }];
            for (s, out) in chunk.chunks_mut(out_stride).enumerate() {
                let sample = n0 + s;
                let im = &bdata[sample * in_stride..(sample + 1) * in_stride];
                // For 1×1/s1/p0, im2col is the identity: GEMM directly on
                // the input (bitwise identical to the im2col path).
                let cols: &[f32] = if one_by_one {
                    im
                } else {
                    im2col(im, ci, ih, iw, &geom, &mut col);
                    &col
                };
                sgemm(
                    Transpose::No,
                    Transpose::No,
                    co,
                    ohw,
                    k,
                    1.0,
                    weight,
                    cols,
                    0.0,
                    out,
                );
                for c in 0..co {
                    let bv = bias[c];
                    for v in &mut out[c * ohw..(c + 1) * ohw] {
                        *v += bv;
                    }
                }
            }
        });
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let t = top[0];
        let n = t.num();

        ctx.dispatch_groups_sym(
            &self.name,
            Phase::Backward,
            n,
            || Some(self.symbolic_backward()),
            || (0..n as u64).map(|i| self.backward_group(i)).collect(),
        );

        if !ctx.compute {
            return;
        }
        let co = self.cfg.num_output;
        let k = self.k_dim();
        let ohw = self.ohw();
        let (ci, ih, iw) = (self.ci, self.ih, self.iw);
        let geom = self.geom;
        let in_stride = ci * ih * iw;
        let out_stride = co * ohw;
        let tdiff = t.diff();
        let bdata_owned: Vec<f32> = bottom[0].data().to_vec();

        // Bias gradient: fixed sample order (deterministic).
        {
            let db = self.bias.diff_mut();
            for s in 0..n {
                let td = &tdiff[s * out_stride..(s + 1) * out_stride];
                for c in 0..co {
                    let sum: f32 = td[c * ohw..(c + 1) * ohw].iter().sum();
                    db[c] += sum;
                }
            }
        }

        // Weight gradient: per-chunk partials reduced in fixed chunk order.
        let one_by_one = self.is_1x1();
        {
            let wsize = co * k;
            let chunks = num_workers().min(n).max(1);
            let per = n.div_ceil(chunks);
            let mut partials = vec![0.0f32; chunks * wsize];
            crossbeam_scope(|scope| {
                for (c, part) in partials.chunks_mut(wsize).enumerate() {
                    let bdata = &bdata_owned;
                    let tdiff = &tdiff;
                    scope.spawn(move |_| {
                        let mut col = vec![0.0f32; if one_by_one { 0 } else { k * ohw }];
                        let lo = c * per;
                        let hi = ((c + 1) * per).min(n);
                        for s in lo..hi {
                            let im = &bdata[s * in_stride..(s + 1) * in_stride];
                            let cols: &[f32] = if one_by_one {
                                im
                            } else {
                                im2col(im, ci, ih, iw, &geom, &mut col);
                                &col
                            };
                            let td = &tdiff[s * out_stride..(s + 1) * out_stride];
                            // dW += td[co×ohw] · col^T[ohw×k]
                            sgemm(
                                Transpose::No,
                                Transpose::Yes,
                                co,
                                k,
                                ohw,
                                1.0,
                                td,
                                cols,
                                1.0,
                                part,
                            );
                        }
                    });
                }
            });
            let dw = self.weight.diff_mut();
            for part in partials.chunks(wsize) {
                for (d, p) in dw.iter_mut().zip(part) {
                    *d += p;
                }
            }
        }

        // Bottom gradient: disjoint per-sample writes, parallel.
        let weight = self.weight.data();
        tensor::pool::parallel_for_rows(bottom[0].diff_mut(), in_stride, |n0, chunk| {
            let mut col_diff = vec![0.0f32; k * ohw];
            let mut im_diff = vec![0.0f32; if one_by_one { 0 } else { in_stride }];
            for (s, out) in chunk.chunks_mut(in_stride).enumerate() {
                let sample = n0 + s;
                let td = &tdiff[sample * out_stride..(sample + 1) * out_stride];
                // dcol = W^T[k×co] · td[co×ohw]; for 1×1 the column matrix
                // *is* the image gradient.
                sgemm(
                    Transpose::Yes,
                    Transpose::No,
                    k,
                    ohw,
                    co,
                    1.0,
                    weight,
                    td,
                    0.0,
                    &mut col_diff,
                );
                if one_by_one {
                    out.copy_from_slice(&col_diff);
                } else {
                    col2im(&col_diff, ci, ih, iw, &geom, &mut im_diff);
                    out.copy_from_slice(&im_diff);
                }
            }
        });
    }

    fn params_mut(&mut self) -> Vec<&mut Blob> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Thin wrapper so the layer body reads cleanly.
fn crossbeam_scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&crossbeam::thread::Scope<'env>) -> R,
{
    crossbeam::scope(f).expect("conv backward worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    fn forward_once(layer: &mut ConvLayer, ctx: &mut ExecCtx, bottom: &Blob) -> Blob {
        let mut top = vec![Blob::empty()];
        layer.reshape(&[bottom], &mut top);
        layer.forward(ctx, &[bottom], &mut top);
        top.pop().unwrap()
    }

    #[test]
    fn output_shape_follows_table5_formulas() {
        // CIFAR10 conv1: 3→32, k5 s1 p2 on 32x32 -> 32x32x32.
        let mut l = ConvLayer::new(
            "conv1",
            ConvConfig {
                num_output: 32,
                kernel: 5,
                stride: 1,
                pad: 2,
            },
            1,
        );
        let bottom = Blob::nchw(2, 3, 32, 32);
        let mut ctx = ctx();
        let top = forward_once(&mut l, &mut ctx, &bottom);
        assert_eq!(top.shape(), &[2, 32, 32, 32]);
    }

    #[test]
    fn known_convolution_value() {
        // 1 sample, 1 channel 3x3 input, 1 output, 3x3 kernel of ones,
        // no pad: output = sum of input.
        let mut l = ConvLayer::new(
            "c",
            ConvConfig {
                num_output: 1,
                kernel: 3,
                stride: 1,
                pad: 0,
            },
            1,
        );
        let bottom = Blob::from_data(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let mut ctx = ctx();
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        l.weight.data_mut().iter_mut().for_each(|v| *v = 1.0);
        l.bias.data_mut()[0] = 0.5;
        l.forward(&mut ctx, &[&bottom], &mut top);
        assert_eq!(top[0].count(), 1);
        assert!((top[0].data()[0] - 45.5).abs() < 1e-4);
    }

    #[test]
    fn emits_one_group_per_sample() {
        let mut l = ConvLayer::new(
            "conv1",
            ConvConfig {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            1,
        );
        let bottom = Blob::nchw(5, 2, 8, 8);
        let mut ctx = ctx();
        forward_once(&mut l, &mut ctx, &bottom);
        // 5 samples × (im2col, sgemm, gemmk).
        assert_eq!(ctx.device.trace().len(), 15);
        let names: Vec<_> = ctx.device.trace().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"im2col"));
        assert!(names.contains(&"sgemm"));
        assert!(names.contains(&"gemmk"));
    }

    /// Finite-difference gradient check on a tiny conv layer.
    #[test]
    fn gradient_check() {
        let cfg = ConvConfig {
            num_output: 2,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let mut l = ConvLayer::new("c", cfg, 3);
        let mut bottom = Blob::from_data(
            &[2, 2, 4, 4],
            (0..64).map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1).collect(),
        );
        let mut ctx = ctx();
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        l.forward(&mut ctx, &[&bottom], &mut top);

        // Loss = sum(top); dL/dtop = 1.
        top[0].diff_mut().iter_mut().for_each(|v| *v = 1.0);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![std::mem::replace(&mut bottom, Blob::empty())];
        l.backward(&mut ctx, &[&tops[0]], &mut bottoms);
        let analytic_w = l.weight.diff().to_vec();
        let analytic_x = bottoms[0].diff().to_vec();

        let eps = 1e-2f32;
        let fwd_sum = |l: &mut ConvLayer, ctx: &mut ExecCtx, b: &Blob| -> f32 {
            let mut t = vec![Blob::empty()];
            l.reshape(&[b], &mut t);
            l.forward(ctx, &[b], &mut t);
            t[0].data().iter().sum()
        };
        // Check a few weight entries.
        for &wi in &[0usize, 5, 17, 35] {
            let orig = l.weight.data()[wi];
            l.weight.data_mut()[wi] = orig + eps;
            let plus = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            l.weight.data_mut()[wi] = orig - eps;
            let minus = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            l.weight.data_mut()[wi] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_w[wi]).abs() < 0.05 * analytic_w[wi].abs().max(1.0),
                "dW[{wi}]: numeric {numeric} vs analytic {}",
                analytic_w[wi]
            );
        }
        // Check a few input entries.
        for &xi in &[0usize, 13, 40, 63] {
            let orig = bottoms[0].data()[xi];
            bottoms[0].data_mut()[xi] = orig + eps;
            let plus = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig - eps;
            let minus = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_x[xi]).abs() < 0.05 * analytic_x[xi].abs().max(1.0),
                "dX[{xi}]: numeric {numeric} vs analytic {}",
                analytic_x[xi]
            );
        }
    }

    #[test]
    fn one_by_one_fast_path_skips_im2col_and_matches_gradient() {
        // Kernel groups contain no im2col for 1x1/s1/p0 ...
        let cfg = ConvConfig {
            num_output: 3,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let mut l = ConvLayer::new("c1x1", cfg, 5);
        let bottom = Blob::from_data(
            &[2, 4, 3, 3],
            (0..72).map(|i| ((i * 5 % 13) as f32 - 6.0) * 0.1).collect(),
        );
        let mut ctx = ctx();
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);
        l.forward(&mut ctx, &[&bottom], &mut top);
        assert!(
            ctx.device.trace().iter().all(|t| t.name != "im2col"),
            "1x1 conv must not launch im2col"
        );

        // ... and the gradients still pass a finite-difference check.
        top[0].diff_mut().iter_mut().for_each(|v| *v = 1.0);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![bottom];
        l.backward(&mut ctx, &[&tops[0]], &mut bottoms);
        assert!(
            ctx.device.trace().iter().all(|t| t.name != "col2im"),
            "1x1 conv must not launch col2im"
        );
        let analytic = bottoms[0].diff().to_vec();
        let eps = 1e-2f32;
        let fwd_sum = |l: &mut ConvLayer, ctx: &mut ExecCtx, b: &Blob| -> f32 {
            let mut t = vec![Blob::empty()];
            l.reshape(&[b], &mut t);
            l.forward(ctx, &[b], &mut t);
            t[0].data().iter().sum()
        };
        for &xi in &[0usize, 20, 71] {
            let orig = bottoms[0].data()[xi];
            bottoms[0].data_mut()[xi] = orig + eps;
            let p = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig - eps;
            let m = fwd_sum(&mut l, &mut ctx, &bottoms[0]);
            bottoms[0].data_mut()[xi] = orig;
            let numeric = (p - m) / (2.0 * eps);
            assert!(
                (numeric - analytic[xi]).abs() < 0.05 * analytic[xi].abs().max(1.0),
                "dX[{xi}]: numeric {numeric} vs analytic {}",
                analytic[xi]
            );
        }
    }

    #[test]
    fn per_sample_groups_declare_disjoint_writes() {
        let l = ConvLayer::new(
            "conv1",
            ConvConfig {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            1,
        );
        // Fake a reshape so geometry fields are populated.
        let mut l = l;
        let bottom = Blob::nchw(3, 2, 8, 8);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&bottom], &mut top);

        for mk in [ConvLayer::forward_group, ConvLayer::backward_group] {
            let a = mk(&l, 0);
            let b = mk(&l, 1);
            let mut union_a = gpu_sim::AccessSet::default();
            let mut union_b = gpu_sim::AccessSet::default();
            for kd in &a {
                assert!(!kd.accesses.is_empty(), "{} declares accesses", kd.name);
                union_a = gpu_sim::AccessSet::union(&union_a, &kd.accesses);
            }
            for kd in &b {
                union_b = gpu_sim::AccessSet::union(&union_b, &kd.accesses);
            }
            assert!(
                union_a.conflict_with(&union_b).is_none(),
                "sample chains 0 and 1 must touch disjoint regions"
            );
        }
    }

    #[test]
    fn symbolic_specs_are_proven_and_match_built_groups() {
        for cfg in [
            // Full im2col path and the 1×1 fast path.
            ConvConfig {
                num_output: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            ConvConfig {
                num_output: 3,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
        ] {
            let mut l = ConvLayer::new("conv1", cfg, 1);
            let bottom = Blob::nchw(3, 2, 8, 8);
            let mut top = vec![Blob::empty()];
            l.reshape(&[&bottom], &mut top);

            for (spec, mk) in [
                (
                    l.symbolic_forward(),
                    ConvLayer::forward_group as fn(&_, u64) -> _,
                ),
                (l.symbolic_backward(), ConvLayer::backward_group),
            ] {
                assert!(
                    matches!(spec.prove(), sanitizer::SymVerdict::Proven { .. }),
                    "conv spec must be affine-provable (k{})",
                    cfg.kernel
                );
                for i in 0..3u64 {
                    spec.conforms(&mk(&l, i), i)
                        .expect("built group must match its symbolic spec");
                }
            }
        }
    }

    #[test]
    fn forward_is_bitwise_deterministic() {
        let run = || {
            let mut l = ConvLayer::new(
                "c",
                ConvConfig {
                    num_output: 8,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                9,
            );
            let bottom = Blob::from_data(
                &[4, 3, 16, 16],
                (0..3072).map(|i| ((i % 23) as f32 - 11.0) * 0.05).collect(),
            );
            let mut ctx = ctx();
            forward_once(&mut l, &mut ctx, &bottom).data().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stride_and_pad_respected() {
        // CaffeNet conv1: k11 s4 p0 on 227 -> 55.
        let mut l = ConvLayer::new(
            "conv1",
            ConvConfig {
                num_output: 4,
                kernel: 11,
                stride: 4,
                pad: 0,
            },
            1,
        );
        let bottom = Blob::nchw(1, 3, 227, 227);
        let mut ctx = ExecCtx::naive(DeviceProps::p100()).timing_only();
        let top = forward_once(&mut l, &mut ctx, &bottom);
        assert_eq!(top.shape(), &[1, 4, 55, 55]);
    }
}
