//! Channel-wise concatenation (GoogLeNet's inception-output join).

use crate::exec::ExecCtx;
use crate::layer::Layer;
use crate::layers::kernels;
use glp4nn::Phase;
use tensor::Blob;

/// Concatenate any number of NCHW bottoms along the channel axis.
pub struct ConcatLayer {
    name: String,
    channel_offsets: Vec<usize>,
}

impl ConcatLayer {
    /// New concat layer.
    pub fn new(name: &str) -> Self {
        ConcatLayer {
            name: name.to_string(),
            channel_offsets: Vec::new(),
        }
    }
}

impl Layer for ConcatLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "Concat"
    }

    fn reshape(&mut self, bottom: &[&Blob], top: &mut [Blob]) {
        assert!(!bottom.is_empty());
        let (n, h, w) = (bottom[0].num(), bottom[0].height(), bottom[0].width());
        self.channel_offsets.clear();
        let mut total_c = 0;
        for b in bottom {
            assert_eq!(b.num(), n, "batch mismatch in concat");
            assert_eq!(b.height(), h, "height mismatch in concat");
            assert_eq!(b.width(), w, "width mismatch in concat");
            self.channel_offsets.push(total_c);
            total_c += b.channels();
        }
        top[0].resize(&[n, total_c, h, w]);
    }

    fn forward(&mut self, ctx: &mut ExecCtx, bottom: &[&Blob], top: &mut [Blob]) {
        let total = top[0].count();
        let reads: Vec<(String, usize)> = bottom
            .iter()
            .enumerate()
            .map(|(i, b)| (format!("in{i}"), b.count()))
            .collect();
        let read_refs: Vec<(&str, usize)> = reads.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        ctx.dispatch_single(
            &self.name,
            Phase::Forward,
            kernels::declare_io(
                kernels::elemwise_kernel("concat", total, 0.0),
                &self.name,
                &read_refs,
                &[("out", total)],
            ),
        );
        if !ctx.compute {
            return;
        }
        let n = top[0].num();
        let total_c = top[0].channels();
        let spatial = top[0].height() * top[0].width();
        let t = top[0].data_mut();
        for (bi, b) in bottom.iter().enumerate() {
            let c = b.channels();
            let off = self.channel_offsets[bi];
            for nn in 0..n {
                let src = &b.data()[nn * c * spatial..(nn + 1) * c * spatial];
                let dst =
                    &mut t[(nn * total_c + off) * spatial..(nn * total_c + off + c) * spatial];
                dst.copy_from_slice(src);
            }
        }
    }

    fn backward(&mut self, ctx: &mut ExecCtx, top: &[&Blob], bottom: &mut [Blob]) {
        let total = top[0].count();
        let writes: Vec<(String, usize)> = bottom
            .iter()
            .enumerate()
            .map(|(i, b)| (format!("din{i}"), b.count()))
            .collect();
        let write_refs: Vec<(&str, usize)> = writes.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        ctx.dispatch_single(
            &self.name,
            Phase::Backward,
            kernels::declare_io(
                kernels::elemwise_kernel("concat_bwd", total, 0.0),
                &self.name,
                &[("dout", total)],
                &write_refs,
            ),
        );
        if !ctx.compute {
            return;
        }
        let t = top[0];
        let n = t.num();
        let total_c = t.channels();
        let spatial = t.height() * t.width();
        for (bi, b) in bottom.iter_mut().enumerate() {
            let c = b.channels();
            let off = self.channel_offsets[bi];
            let bd = b.diff_mut();
            for nn in 0..n {
                let src =
                    &t.diff()[(nn * total_c + off) * spatial..(nn * total_c + off + c) * spatial];
                bd[nn * c * spatial..(nn + 1) * c * spatial].copy_from_slice(src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn ctx() -> ExecCtx {
        ExecCtx::naive(DeviceProps::p100())
    }

    #[test]
    fn concatenates_channels() {
        let mut l = ConcatLayer::new("cat");
        let a = Blob::from_data(&[2, 1, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Blob::from_data(
            &[2, 2, 1, 2],
            vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
        );
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b], &mut top);
        assert_eq!(top[0].shape(), &[2, 3, 1, 2]);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b], &mut top);
        assert_eq!(
            top[0].data(),
            &[1.0, 2.0, 5.0, 6.0, 7.0, 8.0, 3.0, 4.0, 9.0, 10.0, 11.0, 12.0]
        );
    }

    #[test]
    fn backward_splits_gradient() {
        let mut l = ConcatLayer::new("cat");
        let a = Blob::nchw(1, 1, 1, 1);
        let b = Blob::nchw(1, 1, 1, 1);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b], &mut top);
        let mut c = ctx();
        l.forward(&mut c, &[&a, &b], &mut top);
        top[0].diff_mut().copy_from_slice(&[3.0, 7.0]);
        let tops = [top.pop().unwrap()];
        let mut bottoms = vec![a, b];
        l.backward(&mut c, &[&tops[0]], &mut bottoms);
        assert_eq!(bottoms[0].diff(), &[3.0]);
        assert_eq!(bottoms[1].diff(), &[7.0]);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn rejects_mismatched_batches() {
        let mut l = ConcatLayer::new("cat");
        let a = Blob::nchw(1, 1, 2, 2);
        let b = Blob::nchw(2, 1, 2, 2);
        let mut top = vec![Blob::empty()];
        l.reshape(&[&a, &b], &mut top);
    }
}
